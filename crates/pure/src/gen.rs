//! Value generators for falsification and property testing.
//!
//! Resource-specification validity is a ∀-statement; when the symbolic
//! prover cannot establish it, the checker *hunts for counterexamples* by
//! enumerating small values exhaustively and sampling larger ones randomly.
//! This module supplies both generators, driven by a [`Sort`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sort::Sort;
use crate::value::Value;

/// Configuration for random value generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Inclusive magnitude bound for generated integers.
    pub int_bound: i64,
    /// Maximum container length.
    pub max_len: usize,
    /// Maximum nesting depth (guards against unbounded recursion for
    /// `Unknown`-sorted positions).
    pub max_depth: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            int_bound: 8,
            max_len: 4,
            max_depth: 3,
        }
    }
}

/// A seeded random generator of [`Value`]s of given [`Sort`]s.
///
/// # Example
///
/// ```
/// use commcsl_pure::gen::{GenConfig, ValueGen};
/// use commcsl_pure::Sort;
///
/// let mut g = ValueGen::new(42, GenConfig::default());
/// let v = g.value(&Sort::seq(Sort::Int));
/// assert!(v.as_seq().is_ok());
/// ```
#[derive(Debug)]
pub struct ValueGen {
    rng: StdRng,
    config: GenConfig,
}

impl ValueGen {
    /// Creates a generator with the given seed (deterministic across runs).
    pub fn new(seed: u64, config: GenConfig) -> Self {
        ValueGen {
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// Generates a random value of sort `sort`.
    pub fn value(&mut self, sort: &Sort) -> Value {
        self.value_at(sort, 0)
    }

    fn value_at(&mut self, sort: &Sort, depth: usize) -> Value {
        let cfg = self.config.clone();
        match sort {
            Sort::Unknown => {
                if depth >= cfg.max_depth {
                    Value::Int(self.small_int())
                } else {
                    // Unknown positions default to small integers; richer
                    // shapes come from explicit sorts.
                    Value::Int(self.small_int())
                }
            }
            Sort::Unit => Value::Unit,
            Sort::Int => Value::Int(self.small_int()),
            Sort::Bool => Value::Bool(self.rng.gen()),
            Sort::Str => {
                let n: u8 = self.rng.gen_range(0..4);
                Value::str(format!("s{n}"))
            }
            Sort::Pair(a, b) => Value::pair(
                self.value_at(a, depth + 1),
                self.value_at(b, depth + 1),
            ),
            Sort::Either(a, b) => {
                if self.rng.gen() {
                    Value::left(self.value_at(a, depth + 1))
                } else {
                    Value::right(self.value_at(b, depth + 1))
                }
            }
            Sort::Seq(e) => {
                let len = self.rng.gen_range(0..=cfg.max_len);
                Value::seq((0..len).map(|_| self.value_at(e, depth + 1)))
            }
            Sort::Set(e) => {
                let len = self.rng.gen_range(0..=cfg.max_len);
                Value::set((0..len).map(|_| self.value_at(e, depth + 1)))
            }
            Sort::Multiset(e) => {
                let len = self.rng.gen_range(0..=cfg.max_len);
                Value::multiset((0..len).map(|_| self.value_at(e, depth + 1)))
            }
            Sort::Map(k, v) => {
                let len = self.rng.gen_range(0..=cfg.max_len);
                Value::map(
                    (0..len)
                        .map(|_| (self.value_at(k, depth + 1), self.value_at(v, depth + 1))),
                )
            }
        }
    }

    fn small_int(&mut self) -> i64 {
        self.rng.gen_range(-self.config.int_bound..=self.config.int_bound)
    }
}

/// Enumerates all values of `sort` up to the given size bounds.
///
/// The enumeration is *complete for the bounds*: every value whose integers
/// lie in `[-int_bound, int_bound]` and whose containers have at most
/// `max_len` elements (drawn from the bounded element enumeration) appears.
/// Intended for tiny bounds — the count grows combinatorially.
pub fn enumerate(sort: &Sort, int_bound: i64, max_len: usize) -> Vec<Value> {
    enumerate_at(sort, int_bound, max_len, 0)
}

fn enumerate_at(sort: &Sort, int_bound: i64, max_len: usize, depth: usize) -> Vec<Value> {
    if depth > 4 {
        return vec![Value::Int(0)];
    }
    match sort {
        Sort::Unknown => (-int_bound..=int_bound).map(Value::Int).collect(),
        Sort::Unit => vec![Value::Unit],
        Sort::Int => (-int_bound..=int_bound).map(Value::Int).collect(),
        Sort::Bool => vec![Value::Bool(false), Value::Bool(true)],
        Sort::Str => (0..=max_len.min(2))
            .map(|n| Value::str(format!("s{n}")))
            .collect(),
        Sort::Pair(a, b) => {
            let xs = enumerate_at(a, int_bound, max_len, depth + 1);
            let ys = enumerate_at(b, int_bound, max_len, depth + 1);
            xs.iter()
                .flat_map(|x| ys.iter().map(move |y| Value::pair(x.clone(), y.clone())))
                .collect()
        }
        Sort::Either(a, b) => {
            let mut out: Vec<Value> = enumerate_at(a, int_bound, max_len, depth + 1)
                .into_iter()
                .map(Value::left)
                .collect();
            out.extend(
                enumerate_at(b, int_bound, max_len, depth + 1)
                    .into_iter()
                    .map(Value::right),
            );
            out
        }
        Sort::Seq(e) => {
            let elems = enumerate_at(e, int_bound, max_len, depth + 1);
            let mut out = vec![Vec::new()];
            for _ in 0..max_len {
                let mut next = Vec::new();
                for prefix in &out {
                    for e in &elems {
                        let mut xs = prefix.clone();
                        xs.push(e.clone());
                        next.push(xs);
                    }
                }
                out.extend(next);
            }
            out.into_iter().map(Value::Seq).dedup_sorted()
        }
        Sort::Set(e) => {
            let elems = enumerate_at(e, int_bound, max_len, depth + 1);
            subsets(&elems, max_len)
                .into_iter()
                .map(Value::set)
                .dedup_sorted()
        }
        Sort::Multiset(e) => {
            let elems = enumerate_at(e, int_bound, max_len, depth + 1);
            let mut out = vec![Vec::new()];
            for _ in 0..max_len {
                let mut next = Vec::new();
                for prefix in &out {
                    for e in &elems {
                        let mut xs = prefix.clone();
                        xs.push(e.clone());
                        next.push(xs);
                    }
                }
                out.extend(next);
            }
            out.into_iter().map(Value::multiset).dedup_sorted()
        }
        Sort::Map(k, v) => {
            let keys = enumerate_at(k, int_bound, max_len, depth + 1);
            let vals = enumerate_at(v, int_bound, max_len, depth + 1);
            let mut out: Vec<Value> = vec![Value::map_empty()];
            for key in keys.iter().take(max_len) {
                let mut next = Vec::new();
                for m in &out {
                    for val in &vals {
                        next.push(m.map_put(key.clone(), val.clone()).expect("map value"));
                    }
                }
                out.extend(next);
            }
            out.dedup_sorted()
        }
    }
}

/// All subsets of `elems` of cardinality at most `max_len`.
fn subsets(elems: &[Value], max_len: usize) -> Vec<Vec<Value>> {
    let mut out = vec![Vec::new()];
    for e in elems {
        let mut next = Vec::new();
        for s in &out {
            if s.len() < max_len {
                let mut s2 = s.clone();
                s2.push(e.clone());
                next.push(s2);
            }
        }
        out.extend(next);
    }
    out
}

trait DedupSorted {
    fn dedup_sorted(self) -> Vec<Value>;
}

impl<I: IntoIterator<Item = Value>> DedupSorted for I {
    fn dedup_sorted(self) -> Vec<Value> {
        let mut v: Vec<Value> = self.into_iter().collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_values_have_requested_sort() {
        let mut g = ValueGen::new(7, GenConfig::default());
        for sort in [
            Sort::Int,
            Sort::Bool,
            Sort::pair(Sort::Int, Sort::Bool),
            Sort::seq(Sort::Int),
            Sort::set(Sort::Int),
            Sort::multiset(Sort::Int),
            Sort::map(Sort::Int, Sort::Int),
            Sort::either(Sort::Int, Sort::seq(Sort::Int)),
        ] {
            for _ in 0..20 {
                let v = g.value(&sort);
                assert!(
                    v.sort().compatible(&sort),
                    "generated {v:?} incompatible with {sort}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = ValueGen::new(3, GenConfig::default());
        let mut b = ValueGen::new(3, GenConfig::default());
        for _ in 0..10 {
            assert_eq!(a.value(&Sort::seq(Sort::Int)), b.value(&Sort::seq(Sort::Int)));
        }
    }

    #[test]
    fn enumeration_is_complete_for_bools() {
        let vs = enumerate(&Sort::Bool, 0, 0);
        assert_eq!(vs, vec![Value::Bool(false), Value::Bool(true)]);
    }

    #[test]
    fn enumeration_covers_small_sets() {
        let vs = enumerate(&Sort::set(Sort::Int), 1, 2);
        // Subsets of {-1, 0, 1} of size ≤ 2: 1 + 3 + 3 = 7.
        assert_eq!(vs.len(), 7);
    }

    #[test]
    fn enumeration_deduplicates() {
        let vs = enumerate(&Sort::multiset(Sort::Bool), 0, 2);
        let mut sorted = vs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(vs.len(), sorted.len());
    }

    #[test]
    fn enumerated_maps_are_maps() {
        for v in enumerate(&Sort::map(Sort::Bool, Sort::Bool), 0, 2) {
            assert!(v.as_map().is_ok());
        }
    }
}
