//! The pure value universe.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::multiset::Multiset;
use crate::ops::{sort_mismatch, PureError, PureResult};
use crate::sort::Sort;
use crate::symbol::Symbol;

/// A pure mathematical value.
///
/// This is the universe over which resource specifications are stated:
/// action functions map values to values, abstraction functions map values to
/// values, and guard states record multisets/sequences of argument values
/// (paper, Secs. 2.4, 3.2, 3.3).
///
/// All containers are ordered (`BTreeMap`/`BTreeSet`-backed) so that `Value`
/// itself is `Ord` and can appear inside sets, multisets, and map keys.
///
/// # Example
///
/// ```
/// use commcsl_pure::Value;
///
/// let xs = Value::seq([Value::from(3), Value::from(1)]);
/// assert_eq!(xs.seq_len().unwrap(), 2);
/// assert_eq!(xs.seq_sum().unwrap(), Value::from(4));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The unit value (used as the argument of argument-less actions).
    Unit,
    /// A 64-bit integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An immutable string (used for record-ish keys such as `"nAdults"`).
    Str(Symbol),
    /// An ordered pair.
    Pair(Box<Value>, Box<Value>),
    /// Left injection of a sum (`Either`); used e.g. by the producer-consumer
    /// ghost encoding (paper, Fig. 12).
    Left(Box<Value>),
    /// Right injection of a sum.
    Right(Box<Value>),
    /// A finite sequence.
    Seq(Vec<Value>),
    /// A finite set.
    Set(BTreeSet<Value>),
    /// A finite multiset.
    Multiset(Multiset<Value>),
    /// A finite partial map.
    Map(BTreeMap<Value, Value>),
}

impl Value {
    // ---------------------------------------------------------------- ctors

    /// Creates an integer value.
    pub fn int(n: i64) -> Self {
        Value::Int(n)
    }

    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Symbol::new(s))
    }

    /// Creates a pair.
    pub fn pair(fst: Value, snd: Value) -> Self {
        Value::Pair(Box::new(fst), Box::new(snd))
    }

    /// Creates a left injection.
    pub fn left(v: Value) -> Self {
        Value::Left(Box::new(v))
    }

    /// Creates a right injection.
    pub fn right(v: Value) -> Self {
        Value::Right(Box::new(v))
    }

    /// Creates a sequence from an iterator.
    pub fn seq(elems: impl IntoIterator<Item = Value>) -> Self {
        Value::Seq(elems.into_iter().collect())
    }

    /// The empty sequence.
    pub fn seq_empty() -> Self {
        Value::Seq(Vec::new())
    }

    /// Creates a set from an iterator (duplicates collapse).
    pub fn set(elems: impl IntoIterator<Item = Value>) -> Self {
        Value::Set(elems.into_iter().collect())
    }

    /// The empty set.
    pub fn set_empty() -> Self {
        Value::Set(BTreeSet::new())
    }

    /// Creates a multiset from an iterator.
    pub fn multiset(elems: impl IntoIterator<Item = Value>) -> Self {
        Value::Multiset(elems.into_iter().collect())
    }

    /// The empty multiset.
    pub fn multiset_empty() -> Self {
        Value::Multiset(Multiset::new())
    }

    /// Creates a map from `(key, value)` pairs (later pairs win).
    pub fn map(entries: impl IntoIterator<Item = (Value, Value)>) -> Self {
        Value::Map(entries.into_iter().collect())
    }

    /// The empty map.
    pub fn map_empty() -> Self {
        Value::Map(BTreeMap::new())
    }

    // ------------------------------------------------------------ accessors

    /// Returns the integer payload.
    ///
    /// # Errors
    ///
    /// Returns [`PureError::SortMismatch`] when the value is not an integer.
    pub fn as_int(&self) -> PureResult<i64> {
        match self {
            Value::Int(n) => Ok(*n),
            other => sort_mismatch("as_int", other),
        }
    }

    /// Returns the boolean payload.
    ///
    /// # Errors
    ///
    /// Returns [`PureError::SortMismatch`] when the value is not a boolean.
    pub fn as_bool(&self) -> PureResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => sort_mismatch("as_bool", other),
        }
    }

    /// Returns the sequence payload.
    ///
    /// # Errors
    ///
    /// Returns [`PureError::SortMismatch`] when the value is not a sequence.
    pub fn as_seq(&self) -> PureResult<&[Value]> {
        match self {
            Value::Seq(xs) => Ok(xs),
            other => sort_mismatch("as_seq", other),
        }
    }

    /// Returns the set payload.
    ///
    /// # Errors
    ///
    /// Returns [`PureError::SortMismatch`] when the value is not a set.
    pub fn as_set(&self) -> PureResult<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Ok(s),
            other => sort_mismatch("as_set", other),
        }
    }

    /// Returns the multiset payload.
    ///
    /// # Errors
    ///
    /// Returns [`PureError::SortMismatch`] when the value is not a multiset.
    pub fn as_multiset(&self) -> PureResult<&Multiset<Value>> {
        match self {
            Value::Multiset(m) => Ok(m),
            other => sort_mismatch("as_multiset", other),
        }
    }

    /// Returns the map payload.
    ///
    /// # Errors
    ///
    /// Returns [`PureError::SortMismatch`] when the value is not a map.
    pub fn as_map(&self) -> PureResult<&BTreeMap<Value, Value>> {
        match self {
            Value::Map(m) => Ok(m),
            other => sort_mismatch("as_map", other),
        }
    }

    /// Returns the components of a pair.
    ///
    /// # Errors
    ///
    /// Returns [`PureError::SortMismatch`] when the value is not a pair.
    pub fn as_pair(&self) -> PureResult<(&Value, &Value)> {
        match self {
            Value::Pair(a, b) => Ok((a, b)),
            other => sort_mismatch("as_pair", other),
        }
    }

    /// Returns the [`Sort`] of this value.
    ///
    /// Empty containers get element sort [`Sort::Unknown`], which is
    /// compatible with every sort.
    pub fn sort(&self) -> Sort {
        Sort::of_value(self)
    }

    // ----------------------------------------------------------- arithmetic

    /// Checked integer addition.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-integers; [`PureError::Overflow`] on overflow.
    pub fn int_add(&self, other: &Value) -> PureResult<Value> {
        let (a, b) = (self.as_int()?, other.as_int()?);
        a.checked_add(b)
            .map(Value::Int)
            .ok_or(PureError::Overflow("add"))
    }

    /// Checked integer subtraction.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-integers; [`PureError::Overflow`] on overflow.
    pub fn int_sub(&self, other: &Value) -> PureResult<Value> {
        let (a, b) = (self.as_int()?, other.as_int()?);
        a.checked_sub(b)
            .map(Value::Int)
            .ok_or(PureError::Overflow("sub"))
    }

    /// Checked integer multiplication.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-integers; [`PureError::Overflow`] on overflow.
    pub fn int_mul(&self, other: &Value) -> PureResult<Value> {
        let (a, b) = (self.as_int()?, other.as_int()?);
        a.checked_mul(b)
            .map(Value::Int)
            .ok_or(PureError::Overflow("mul"))
    }

    /// Euclidean integer division.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-integers; [`PureError::DivisionByZero`] when
    /// `other` is zero.
    pub fn int_div(&self, other: &Value) -> PureResult<Value> {
        let (a, b) = (self.as_int()?, other.as_int()?);
        if b == 0 {
            return Err(PureError::DivisionByZero);
        }
        Ok(Value::Int(a.div_euclid(b)))
    }

    /// Euclidean integer remainder.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-integers; [`PureError::DivisionByZero`] when
    /// `other` is zero.
    pub fn int_mod(&self, other: &Value) -> PureResult<Value> {
        let (a, b) = (self.as_int()?, other.as_int()?);
        if b == 0 {
            return Err(PureError::DivisionByZero);
        }
        Ok(Value::Int(a.rem_euclid(b)))
    }

    /// Integer maximum.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-integers.
    pub fn int_max(&self, other: &Value) -> PureResult<Value> {
        Ok(Value::Int(self.as_int()?.max(other.as_int()?)))
    }

    /// Integer minimum.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-integers.
    pub fn int_min(&self, other: &Value) -> PureResult<Value> {
        Ok(Value::Int(self.as_int()?.min(other.as_int()?)))
    }

    // ------------------------------------------------------------ sequences

    /// Sequence length.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sequences.
    pub fn seq_len(&self) -> PureResult<usize> {
        Ok(self.as_seq()?.len())
    }

    /// Appends an element, returning a new sequence.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sequences.
    pub fn seq_append(&self, elem: Value) -> PureResult<Value> {
        let mut xs = self.as_seq()?.to_vec();
        xs.push(elem);
        Ok(Value::Seq(xs))
    }

    /// Concatenates two sequences.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sequences.
    pub fn seq_concat(&self, other: &Value) -> PureResult<Value> {
        let mut xs = self.as_seq()?.to_vec();
        xs.extend_from_slice(other.as_seq()?);
        Ok(Value::Seq(xs))
    }

    /// Indexes a sequence.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sequences; [`PureError::IndexOutOfRange`] for a
    /// bad index.
    pub fn seq_index(&self, index: i64) -> PureResult<Value> {
        let xs = self.as_seq()?;
        usize::try_from(index)
            .ok()
            .and_then(|i| xs.get(i))
            .cloned()
            .ok_or(PureError::IndexOutOfRange {
                index,
                len: xs.len(),
            })
    }

    /// Tail of a sequence (total: the tail of the empty sequence is empty).
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sequences.
    pub fn seq_tail(&self) -> PureResult<Value> {
        let xs = self.as_seq()?;
        Ok(Value::Seq(xs.iter().skip(1).cloned().collect()))
    }

    /// Head of a sequence with a default for the empty sequence (total).
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sequences.
    pub fn seq_head_or(&self, default: Value) -> PureResult<Value> {
        Ok(self.as_seq()?.first().cloned().unwrap_or(default))
    }

    /// Sum of an integer sequence (empty sum is zero).
    ///
    /// # Errors
    ///
    /// Sort mismatch when any element is not an integer; overflow.
    pub fn seq_sum(&self) -> PureResult<Value> {
        let mut acc = 0i64;
        for v in self.as_seq()? {
            acc = acc
                .checked_add(v.as_int()?)
                .ok_or(PureError::Overflow("seq_sum"))?;
        }
        Ok(Value::Int(acc))
    }

    /// Arithmetic mean of an integer sequence, rounded toward negative
    /// infinity; the mean of the empty sequence is defined as zero (a total
    /// stand-in, as required of abstraction functions).
    ///
    /// # Errors
    ///
    /// Sort mismatch when any element is not an integer; overflow.
    pub fn seq_mean(&self) -> PureResult<Value> {
        let xs = self.as_seq()?;
        if xs.is_empty() {
            return Ok(Value::Int(0));
        }
        let sum = self.seq_sum()?.as_int()?;
        Ok(Value::Int(sum.div_euclid(xs.len() as i64)))
    }

    /// Sorted copy of the sequence.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sequences.
    pub fn seq_sorted(&self) -> PureResult<Value> {
        let mut xs = self.as_seq()?.to_vec();
        xs.sort();
        Ok(Value::Seq(xs))
    }

    /// The multiset view of a sequence (forgets order).
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sequences.
    pub fn seq_to_multiset(&self) -> PureResult<Value> {
        Ok(Value::Multiset(self.as_seq()?.iter().cloned().collect()))
    }

    /// The set view of a sequence (forgets order and multiplicity).
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sequences.
    pub fn seq_to_set(&self) -> PureResult<Value> {
        Ok(Value::Set(self.as_seq()?.iter().cloned().collect()))
    }

    // ----------------------------------------------------------------- sets

    /// Set cardinality.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sets.
    pub fn set_card(&self) -> PureResult<usize> {
        Ok(self.as_set()?.len())
    }

    /// Inserts an element, returning a new set.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sets.
    pub fn set_add(&self, elem: Value) -> PureResult<Value> {
        let mut s = self.as_set()?.clone();
        s.insert(elem);
        Ok(Value::Set(s))
    }

    /// Set union.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sets.
    pub fn set_union(&self, other: &Value) -> PureResult<Value> {
        let mut s = self.as_set()?.clone();
        s.extend(other.as_set()?.iter().cloned());
        Ok(Value::Set(s))
    }

    /// Set membership.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sets.
    pub fn set_contains(&self, elem: &Value) -> PureResult<bool> {
        Ok(self.as_set()?.contains(elem))
    }

    /// Sorted sequence of the set's elements.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-sets.
    pub fn set_to_seq(&self) -> PureResult<Value> {
        Ok(Value::Seq(self.as_set()?.iter().cloned().collect()))
    }

    // ------------------------------------------------------------ multisets

    /// Multiset cardinality (counting multiplicity).
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-multisets.
    pub fn multiset_card(&self) -> PureResult<usize> {
        Ok(self.as_multiset()?.len())
    }

    /// Inserts one occurrence, returning a new multiset.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-multisets.
    pub fn multiset_add(&self, elem: Value) -> PureResult<Value> {
        let mut m = self.as_multiset()?.clone();
        m.insert(elem);
        Ok(Value::Multiset(m))
    }

    /// Sorted sequence of a multiset's elements (with multiplicity).
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-multisets.
    pub fn multiset_to_sorted_seq(&self) -> PureResult<Value> {
        Ok(Value::Seq(self.as_multiset()?.to_sorted_vec()))
    }

    /// Multiset union `∪#`.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-multisets.
    pub fn multiset_union(&self, other: &Value) -> PureResult<Value> {
        Ok(Value::Multiset(
            self.as_multiset()?.union(other.as_multiset()?),
        ))
    }

    // ----------------------------------------------------------------- maps

    /// Map update `m[k ↦ v]`, returning a new map.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-maps.
    pub fn map_put(&self, key: Value, val: Value) -> PureResult<Value> {
        let mut m = self.as_map()?.clone();
        m.insert(key, val);
        Ok(Value::Map(m))
    }

    /// Map lookup.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-maps; [`PureError::MissingKey`] when absent.
    pub fn map_get(&self, key: &Value) -> PureResult<Value> {
        self.as_map()?
            .get(key)
            .cloned()
            .ok_or_else(|| PureError::MissingKey(format!("{key:?}")))
    }

    /// Map lookup with a default for absent keys (total variant).
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-maps.
    pub fn map_get_or(&self, key: &Value, default: Value) -> PureResult<Value> {
        Ok(self.as_map()?.get(key).cloned().unwrap_or(default))
    }

    /// Domain of a map as a set.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-maps.
    pub fn map_dom(&self) -> PureResult<Value> {
        Ok(Value::Set(self.as_map()?.keys().cloned().collect()))
    }

    /// Returns `true` when the map contains `key`.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-maps.
    pub fn map_contains(&self, key: &Value) -> PureResult<bool> {
        Ok(self.as_map()?.contains_key(key))
    }

    /// Number of entries in a map.
    ///
    /// # Errors
    ///
    /// Sort mismatch for non-maps.
    pub fn map_len(&self) -> PureResult<usize> {
        Ok(self.as_map()?.len())
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Pair(a, b) => write!(f, "({a:?}, {b:?})"),
            Value::Left(v) => write!(f, "Left({v:?})"),
            Value::Right(v) => write!(f, "Right({v:?})"),
            Value::Seq(xs) => {
                f.write_str("[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{x:?}")?;
                }
                f.write_str("]")
            }
            Value::Set(s) => {
                f.write_str("{")?;
                for (i, x) in s.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{x:?}")?;
                }
                f.write_str("}")
            }
            Value::Multiset(m) => write!(f, "{m:?}"),
            Value::Map(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k:?} ↦ {v:?}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_checked() {
        assert_eq!(
            Value::from(2).int_add(&Value::from(3)).unwrap(),
            Value::from(5)
        );
        assert_eq!(
            Value::from(i64::MAX).int_add(&Value::from(1)),
            Err(PureError::Overflow("add"))
        );
        assert_eq!(
            Value::from(1).int_div(&Value::from(0)),
            Err(PureError::DivisionByZero)
        );
    }

    #[test]
    fn division_is_euclidean() {
        assert_eq!(
            Value::from(-7).int_div(&Value::from(2)).unwrap(),
            Value::from(-4)
        );
        assert_eq!(
            Value::from(-7).int_mod(&Value::from(2)).unwrap(),
            Value::from(1)
        );
    }

    #[test]
    fn seq_ops_roundtrip() {
        let s = Value::seq_empty()
            .seq_append(Value::from(2))
            .unwrap()
            .seq_append(Value::from(1))
            .unwrap();
        assert_eq!(s.seq_len().unwrap(), 2);
        assert_eq!(s.seq_index(1).unwrap(), Value::from(1));
        assert_eq!(
            s.seq_sorted().unwrap(),
            Value::seq([Value::from(1), Value::from(2)])
        );
        assert!(s.seq_index(5).is_err());
    }

    #[test]
    fn seq_mean_total_on_empty() {
        assert_eq!(Value::seq_empty().seq_mean().unwrap(), Value::from(0));
        let s = Value::seq([Value::from(1), Value::from(2), Value::from(4)]);
        assert_eq!(s.seq_mean().unwrap(), Value::from(2));
    }

    #[test]
    fn multiset_view_forgets_order() {
        let a = Value::seq([Value::from(1), Value::from(2)]);
        let b = Value::seq([Value::from(2), Value::from(1)]);
        assert_ne!(a, b);
        assert_eq!(a.seq_to_multiset().unwrap(), b.seq_to_multiset().unwrap());
    }

    #[test]
    fn map_put_overwrites_and_dom_ignores_values() {
        let m = Value::map_empty()
            .map_put(Value::from(1), Value::from(10))
            .unwrap();
        let m2 = m.map_put(Value::from(1), Value::from(20)).unwrap();
        assert_eq!(m2.map_get(&Value::from(1)).unwrap(), Value::from(20));
        assert_eq!(m.map_dom().unwrap(), m2.map_dom().unwrap());
    }

    #[test]
    fn map_get_or_is_total() {
        let m = Value::map_empty();
        assert!(m.map_get(&Value::from(9)).is_err());
        assert_eq!(
            m.map_get_or(&Value::from(9), Value::from(0)).unwrap(),
            Value::from(0)
        );
    }

    #[test]
    fn sort_mismatch_reported() {
        assert!(matches!(
            Value::Bool(true).int_add(&Value::from(1)),
            Err(PureError::SortMismatch { .. })
        ));
    }

    #[test]
    fn ordering_allows_nesting_in_sets() {
        let s = Value::set([
            Value::pair(Value::from(1), Value::from(2)),
            Value::pair(Value::from(1), Value::from(2)),
            Value::pair(Value::from(2), Value::from(1)),
        ]);
        assert_eq!(s.set_card().unwrap(), 2);
    }
}
