//! Simple sorts (types) classifying pure values.

use std::fmt;

use crate::value::Value;

/// The sort (type) of a [`Value`] or [`Term`](crate::Term).
///
/// Sorts are structural and include a bottom-ish [`Sort::Unknown`] used for
/// the element sort of empty containers; `Unknown` is *compatible* with every
/// sort (see [`Sort::compatible`]), which keeps empty-literal typing simple
/// without a full inference pass.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Sort {
    /// Placeholder compatible with every sort.
    Unknown,
    /// The unit sort.
    Unit,
    /// 64-bit integers.
    Int,
    /// Booleans.
    Bool,
    /// Strings.
    Str,
    /// Pairs.
    Pair(Box<Sort>, Box<Sort>),
    /// Sums (`Either`).
    Either(Box<Sort>, Box<Sort>),
    /// Sequences.
    Seq(Box<Sort>),
    /// Sets.
    Set(Box<Sort>),
    /// Multisets.
    Multiset(Box<Sort>),
    /// Partial maps.
    Map(Box<Sort>, Box<Sort>),
}

impl Sort {
    /// Pair sort constructor.
    pub fn pair(a: Sort, b: Sort) -> Sort {
        Sort::Pair(Box::new(a), Box::new(b))
    }

    /// Sum sort constructor.
    pub fn either(a: Sort, b: Sort) -> Sort {
        Sort::Either(Box::new(a), Box::new(b))
    }

    /// Sequence sort constructor.
    pub fn seq(elem: Sort) -> Sort {
        Sort::Seq(Box::new(elem))
    }

    /// Set sort constructor.
    pub fn set(elem: Sort) -> Sort {
        Sort::Set(Box::new(elem))
    }

    /// Multiset sort constructor.
    pub fn multiset(elem: Sort) -> Sort {
        Sort::Multiset(Box::new(elem))
    }

    /// Map sort constructor.
    pub fn map(key: Sort, val: Sort) -> Sort {
        Sort::Map(Box::new(key), Box::new(val))
    }

    /// Computes the sort of a value.
    ///
    /// Container element sorts are taken from the first element; empty
    /// containers yield [`Sort::Unknown`] element sorts.
    pub fn of_value(v: &Value) -> Sort {
        match v {
            Value::Unit => Sort::Unit,
            Value::Int(_) => Sort::Int,
            Value::Bool(_) => Sort::Bool,
            Value::Str(_) => Sort::Str,
            Value::Pair(a, b) => Sort::pair(Sort::of_value(a), Sort::of_value(b)),
            Value::Left(a) => Sort::either(Sort::of_value(a), Sort::Unknown),
            Value::Right(b) => Sort::either(Sort::Unknown, Sort::of_value(b)),
            Value::Seq(xs) => Sort::seq(xs.first().map_or(Sort::Unknown, Sort::of_value)),
            Value::Set(s) => Sort::set(s.iter().next().map_or(Sort::Unknown, Sort::of_value)),
            Value::Multiset(m) => Sort::multiset(
                m.distinct()
                    .next()
                    .map_or(Sort::Unknown, Sort::of_value),
            ),
            Value::Map(m) => match m.iter().next() {
                Some((k, v)) => Sort::map(Sort::of_value(k), Sort::of_value(v)),
                None => Sort::map(Sort::Unknown, Sort::Unknown),
            },
        }
    }

    /// Structural compatibility, treating [`Sort::Unknown`] as a wildcard.
    pub fn compatible(&self, other: &Sort) -> bool {
        match (self, other) {
            (Sort::Unknown, _) | (_, Sort::Unknown) => true,
            (Sort::Pair(a1, b1), Sort::Pair(a2, b2))
            | (Sort::Either(a1, b1), Sort::Either(a2, b2))
            | (Sort::Map(a1, b1), Sort::Map(a2, b2)) => {
                a1.compatible(a2) && b1.compatible(b2)
            }
            (Sort::Seq(a), Sort::Seq(b))
            | (Sort::Set(a), Sort::Set(b))
            | (Sort::Multiset(a), Sort::Multiset(b)) => a.compatible(b),
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Unknown => f.write_str("?"),
            Sort::Unit => f.write_str("Unit"),
            Sort::Int => f.write_str("Int"),
            Sort::Bool => f.write_str("Bool"),
            Sort::Str => f.write_str("Str"),
            Sort::Pair(a, b) => write!(f, "Pair[{a}, {b}]"),
            Sort::Either(a, b) => write!(f, "Either[{a}, {b}]"),
            Sort::Seq(a) => write!(f, "Seq[{a}]"),
            Sort::Set(a) => write!(f, "Set[{a}]"),
            Sort::Multiset(a) => write!(f, "Multiset[{a}]"),
            Sort::Map(k, v) => write!(f, "Map[{k}, {v}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_of_literals() {
        assert_eq!(Value::from(3).sort(), Sort::Int);
        assert_eq!(Value::from(true).sort(), Sort::Bool);
        assert_eq!(
            Value::pair(Value::from(1), Value::from(false)).sort(),
            Sort::pair(Sort::Int, Sort::Bool)
        );
    }

    #[test]
    fn empty_containers_have_unknown_elements() {
        assert_eq!(Value::seq_empty().sort(), Sort::seq(Sort::Unknown));
        assert!(Value::seq_empty()
            .sort()
            .compatible(&Sort::seq(Sort::Int)));
    }

    #[test]
    fn compatibility_is_structural() {
        let a = Sort::map(Sort::Int, Sort::Unknown);
        let b = Sort::map(Sort::Int, Sort::Bool);
        assert!(a.compatible(&b));
        assert!(!a.compatible(&Sort::set(Sort::Int)));
        assert!(!Sort::Int.compatible(&Sort::Bool));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Sort::map(Sort::Int, Sort::Str).to_string(), "Map[Int, Str]");
    }
}
