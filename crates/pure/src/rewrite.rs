//! Normalizing rewriter for symbolic terms.
//!
//! Resource-specification validity (paper, Def. 3.1) requires proving
//! equalities like
//! `α(f_a'(f_a(v, x), y)) = α(f_a(f_a'(v', y), x))` under the hypothesis
//! `α(v) = α(v')`, for *all* values — a ∀-statement over unbounded domains.
//! The original artifact discharges these with Z3; here a normalizing
//! rewriter reduces both sides to canonical forms so that the subsequent
//! congruence-closure step (in `commcsl-smt`) can close the gap using the
//! hypothesis.
//!
//! The rule set is abstraction-aware: observers are pushed through mutators
//! (`dom(put(m,k,v)) → add(dom(m),k)`, `sum(append(s,e)) → sum(s)+e`, …),
//! commutative chains are sorted into canonical order, linear integer
//! arithmetic is normalized, and if-then-else is distributed and collapsed.
//! Rewriting is *equality-preserving*: every rule is a theorem of the ground
//! semantics in [`Term::eval`], which the test-suite checks by evaluation on
//! random inputs.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use crate::term::{Func, Term};
use crate::value::Value;

/// Oracle answering equality questions about (normalized) terms.
///
/// The rewriter consults the oracle where reordering is only sound under a
/// disequality (e.g. swapping adjacent `MapPut`s needs distinct keys).
/// `None` means "unknown", in which case the rewriter leaves the term alone.
pub trait EqOracle {
    /// Decides whether `a = b` holds (`Some(true)`), definitely does not
    /// hold (`Some(false)`), or is unknown (`None`).
    fn decide_eq(&self, a: &Term, b: &Term) -> Option<bool>;
}

/// The trivial oracle: only syntactically equal terms and unequal literals
/// are decided.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyntacticOracle;

impl EqOracle for SyntacticOracle {
    fn decide_eq(&self, a: &Term, b: &Term) -> Option<bool> {
        decide_eq_syntactic(a, b)
    }
}

/// Syntactic equality decision shared by all oracles: equal terms are equal;
/// distinct literals (and distinct constructor applications with decidably
/// distinct fields) are unequal.
pub fn decide_eq_syntactic(a: &Term, b: &Term) -> Option<bool> {
    if a == b {
        return Some(true);
    }
    match (a, b) {
        (Term::Lit(x), Term::Lit(y)) => Some(x == y),
        (Term::App(Func::MkPair, xs), Term::App(Func::MkPair, ys)) => {
            let fst = decide_eq_syntactic(&xs[0], &ys[0]);
            let snd = decide_eq_syntactic(&xs[1], &ys[1]);
            match (fst, snd) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }
        }
        (Term::App(Func::MkLeft, _), Term::App(Func::MkRight, _))
        | (Term::App(Func::MkRight, _), Term::App(Func::MkLeft, _)) => Some(false),
        (Term::App(Func::MkLeft, xs), Term::App(Func::MkLeft, ys))
        | (Term::App(Func::MkRight, xs), Term::App(Func::MkRight, ys)) => {
            decide_eq_syntactic(&xs[0], &ys[0])
        }
        _ => None,
    }
}

/// Maximum number of full normalization passes before giving up.
///
/// Every rule either strictly shrinks the term or strictly decreases a
/// well-founded sort key, so a fixpoint is reached quickly in practice; the
/// cap is a defensive bound.
const MAX_PASSES: usize = 64;

/// Normalizes a term to a canonical form under the given oracle.
///
/// # Example
///
/// ```
/// use commcsl_pure::rewrite::{normalize, SyntacticOracle};
/// use commcsl_pure::{Func, Term};
///
/// // dom(put(put(m, k2, v2), k1, v1)) and dom(put(put(m, k1, v1), k2, v2))
/// // normalize to the same canonical key-set chain.
/// let m = Term::var("m");
/// let put = |m, k: &str, v: i64| Term::app(Func::MapPut, [m, Term::var(k), Term::int(v)]);
/// let lhs = Term::app(Func::MapDom, [put(put(m.clone(), "k2", 2), "k1", 1)]);
/// let rhs = Term::app(Func::MapDom, [put(put(m, "k1", 1), "k2", 2)]);
/// assert_eq!(normalize(&lhs, &SyntacticOracle), normalize(&rhs, &SyntacticOracle));
/// ```
pub fn normalize(t: &Term, oracle: &dyn EqOracle) -> Term {
    let mut cur = t.clone();
    for _ in 0..MAX_PASSES {
        let next = rewrite_bottom_up(&cur, oracle);
        if next == cur {
            return cur;
        }
        cur = next;
    }
    cur
}

fn rewrite_bottom_up(t: &Term, oracle: &dyn EqOracle) -> Term {
    match t {
        Term::Var(_) | Term::Lit(_) => t.clone(),
        Term::App(f, args) => {
            let args: Vec<Term> = args
                .iter()
                .map(|a| rewrite_bottom_up(a, oracle))
                .collect();
            rewrite_node(f.clone(), args, oracle)
        }
    }
}

/// Applies root rules to an application whose arguments are already
/// normalized.
fn rewrite_node(f: Func, args: Vec<Term>, oracle: &dyn EqOracle) -> Term {
    // 1. Constant folding whenever all arguments are literals and the symbol
    //    is interpreted and total on them.
    if !matches!(f, Func::Uninterpreted(_)) && args.iter().all(|a| matches!(a, Term::Lit(_))) {
        let probe = Term::App(f.clone(), args.clone());
        if let Ok(v) = probe.eval(&BTreeMap::new()) {
            return Term::Lit(v);
        }
    }

    // 2. Distribute strict unary observers over if-then-else so that
    //    case-analysis on action bodies (Either-encoded queues etc.) exposes
    //    per-branch redexes. Collapse trivially equal branches afterwards.
    if args.len() == 1 && distributes_over_ite(&f) {
        if let Term::App(Func::Ite, ite_args) = &args[0] {
            let c = ite_args[0].clone();
            let t1 = rewrite_node(f.clone(), vec![ite_args[1].clone()], oracle);
            let t2 = rewrite_node(f, vec![ite_args[2].clone()], oracle);
            return rewrite_node(Func::Ite, vec![c, t1, t2], oracle);
        }
    }

    match f {
        Func::Ite => rewrite_ite(args, oracle),
        Func::Not => rewrite_not(args),
        Func::And | Func::Or => rewrite_ac_bool(f, args),
        Func::Implies => {
            let [p, q] = two(args);
            match (&p, &q) {
                (Term::Lit(Value::Bool(true)), _) => q,
                (Term::Lit(Value::Bool(false)), _) => Term::tt(),
                (_, Term::Lit(Value::Bool(true))) => Term::tt(),
                (_, Term::Lit(Value::Bool(false))) => rewrite_not(vec![p]),
                _ if p == q => Term::tt(),
                _ => Term::app(Func::Implies, [p, q]),
            }
        }
        Func::Iff => {
            let [p, q] = two(args);
            if p == q {
                Term::tt()
            } else {
                Term::app(Func::Iff, [p, q])
            }
        }
        Func::Eq => rewrite_eq(args, oracle),
        Func::Add | Func::Sub | Func::Neg => linear::normalize_linear(f, args),
        Func::Mul => rewrite_mul(args),
        Func::Lt | Func::Le => rewrite_cmp(f, args),
        Func::Mod => rewrite_mod(args),
        Func::Max | Func::Min => rewrite_ac_minmax(f, args),
        Func::Fst | Func::Snd => rewrite_proj(f, args),
        Func::IsLeft => match &args[0] {
            Term::App(Func::MkLeft, _) => Term::tt(),
            Term::App(Func::MkRight, _) => Term::ff(),
            _ => Term::App(Func::IsLeft, args),
        },
        Func::FromLeft => match &args[0] {
            Term::App(Func::MkLeft, inner) => inner[0].clone(),
            _ => Term::App(Func::FromLeft, args),
        },
        Func::FromRight => match &args[0] {
            Term::App(Func::MkRight, inner) => inner[0].clone(),
            _ => Term::App(Func::FromRight, args),
        },
        Func::SeqLen => rewrite_seq_observer(Func::SeqLen, args, oracle),
        Func::SeqSum => rewrite_seq_observer(Func::SeqSum, args, oracle),
        Func::SeqToMultiset => rewrite_seq_observer(Func::SeqToMultiset, args, oracle),
        Func::SeqToSet => rewrite_seq_observer(Func::SeqToSet, args, oracle),
        Func::SeqMean => {
            // mean(s) ≡ if len(s) = 0 then 0 else sum(s) div len(s); the
            // expansion makes mean a function of the commuting observers.
            let s = args[0].clone();
            let len = rewrite_node(Func::SeqLen, vec![s.clone()], oracle);
            let sum = rewrite_node(Func::SeqSum, vec![s], oracle);
            let cond = rewrite_node(
                Func::Eq,
                vec![len.clone(), Term::int(0)],
                oracle,
            );
            let div = rewrite_node(Func::Div, vec![sum, len], oracle);
            rewrite_node(Func::Ite, vec![cond, Term::int(0), div], oracle)
        }
        Func::SeqSorted => {
            // sorted(s) is a function of the multiset view: expanding it to
            // MsToSortedSeq(to_ms(s)) lets congruence conclude equality of
            // sorted lists from equality of multisets (the Email-Metadata
            // idiom: sorting launders the secret-dependent order away).
            let ms = rewrite_node(Func::SeqToMultiset, args, oracle);
            rewrite_node(Func::MsToSortedSeq, vec![ms], oracle)
        }
        Func::MsToSortedSeq => Term::App(Func::MsToSortedSeq, args),
        Func::SetAdd => rewrite_chain_add(Func::SetAdd, args, /* idempotent */ true),
        Func::MsAdd => rewrite_chain_add(Func::MsAdd, args, false),
        Func::SetUnion | Func::MsUnion => rewrite_ac_union(f, args),
        Func::SetCard => match &args[0] {
            Term::App(Func::SeqToSet, _) => Term::App(Func::SetCard, args),
            _ => Term::App(Func::SetCard, args),
        },
        Func::MsCard => match &args[0] {
            Term::App(Func::MsAdd, inner) => {
                let base = Term::App(Func::MsCard, vec![inner[0].clone()]);
                linear::normalize_linear(Func::Add, vec![base, Term::int(1)])
            }
            Term::App(Func::MsUnion, inner) => {
                let a = Term::App(Func::MsCard, vec![inner[0].clone()]);
                let b = Term::App(Func::MsCard, vec![inner[1].clone()]);
                linear::normalize_linear(Func::Add, vec![a, b])
            }
            _ => Term::App(Func::MsCard, args),
        },
        Func::SetContains => rewrite_member(Func::SetContains, Func::SetAdd, args, oracle),
        Func::MsContains => rewrite_member(Func::MsContains, Func::MsAdd, args, oracle),
        Func::MapPut => rewrite_map_put(args, oracle),
        Func::MapGetOr => rewrite_map_get_or(args, oracle),
        Func::MapDom => match &args[0] {
            Term::App(Func::MapPut, inner) => {
                let dom = rewrite_node(Func::MapDom, vec![inner[0].clone()], oracle);
                rewrite_node(Func::SetAdd, vec![dom, inner[1].clone()], oracle)
            }
            _ => Term::App(Func::MapDom, args),
        },
        Func::MapContains => {
            let [m, k] = two(args);
            match &m {
                Term::App(Func::MapPut, inner) => {
                    let hit = rewrite_node(Func::Eq, vec![k.clone(), inner[1].clone()], oracle);
                    let rest =
                        rewrite_node(Func::MapContains, vec![inner[0].clone(), k], oracle);
                    rewrite_ac_bool(Func::Or, vec![hit, rest])
                }
                _ => Term::App(Func::MapContains, vec![m, k]),
            }
        }
        Func::MapLen => Term::App(Func::MapLen, args),
        _ => Term::App(f, args),
    }
}

fn distributes_over_ite(f: &Func) -> bool {
    use Func::*;
    matches!(
        f,
        Fst | Snd
            | IsLeft
            | FromLeft
            | FromRight
            | SeqTail
            | SeqLen
            | SeqSum
            | SeqMean
            | SeqSorted
            | SeqToMultiset
            | SeqToSet
            | SetCard
            | SetToSeq
            | MsCard
            | MapDom
            | MapLen
            | Not
            | Neg
    )
}

fn two(args: Vec<Term>) -> [Term; 2] {
    let mut it = args.into_iter();
    let a = it.next().expect("binary symbol");
    let b = it.next().expect("binary symbol");
    [a, b]
}

fn rewrite_ite(args: Vec<Term>, oracle: &dyn EqOracle) -> Term {
    let mut it = args.into_iter();
    let c = it.next().expect("ite");
    let t = it.next().expect("ite");
    let e = it.next().expect("ite");
    match &c {
        Term::Lit(Value::Bool(true)) => return t,
        Term::Lit(Value::Bool(false)) => return e,
        _ => {}
    }
    if t == e {
        return t;
    }
    // ite(c, true, false) → c on booleans.
    if t == Term::tt() && e == Term::ff() {
        return c;
    }
    if let Some(known) = oracle_truth(&c, oracle) {
        return if known { t } else { e };
    }
    Term::app(Func::Ite, [c, t, e])
}

/// Asks the oracle about a boolean condition of the shape `a = b` / `¬(a=b)`.
fn oracle_truth(cond: &Term, oracle: &dyn EqOracle) -> Option<bool> {
    match cond {
        Term::App(Func::Eq, xs) => oracle.decide_eq(&xs[0], &xs[1]),
        Term::App(Func::Not, xs) => oracle_truth(&xs[0], oracle).map(|b| !b),
        _ => None,
    }
}

fn rewrite_not(args: Vec<Term>) -> Term {
    match args.into_iter().next().expect("not") {
        Term::Lit(Value::Bool(b)) => Term::bool(!b),
        Term::App(Func::Not, inner) => inner.into_iter().next().expect("not not"),
        other => Term::app(Func::Not, [other]),
    }
}

/// Flattens, sorts, deduplicates, and unit-reduces `And`/`Or`.
fn rewrite_ac_bool(f: Func, args: Vec<Term>) -> Term {
    let (unit, zero) = match f {
        Func::And => (true, false),
        Func::Or => (false, true),
        _ => unreachable!("rewrite_ac_bool on non-boolean AC symbol"),
    };
    let mut flat = Vec::new();
    let mut stack: Vec<Term> = args;
    stack.reverse();
    while let Some(a) = stack.pop() {
        match a {
            Term::App(ref g, ref inner) if *g == f => {
                for x in inner.iter().rev() {
                    stack.push(x.clone());
                }
            }
            Term::Lit(Value::Bool(b)) => {
                if b == zero {
                    return Term::bool(zero);
                }
                // `unit` literals vanish.
            }
            other => flat.push(other),
        }
    }
    flat.sort();
    flat.dedup();
    // `p ∧ ¬p → false`, `p ∨ ¬p → true`.
    for x in &flat {
        if flat.contains(&Term::not(x.clone())) {
            return Term::bool(zero);
        }
    }
    match flat.len() {
        0 => Term::bool(unit),
        1 => flat.into_iter().next().expect("len checked"),
        _ => Term::App(f, flat),
    }
}

fn rewrite_eq(args: Vec<Term>, oracle: &dyn EqOracle) -> Term {
    let [a, b] = two(args);
    if let Some(ans) = oracle.decide_eq(&a, &b) {
        return Term::bool(ans);
    }
    if let Some(ans) = decide_eq_syntactic(&a, &b) {
        return Term::bool(ans);
    }
    // Componentwise equality on pair constructors.
    if let (Term::App(Func::MkPair, xs), Term::App(Func::MkPair, ys)) = (&a, &b) {
        let e1 = rewrite_eq(vec![xs[0].clone(), ys[0].clone()], oracle);
        let e2 = rewrite_eq(vec![xs[1].clone(), ys[1].clone()], oracle);
        return rewrite_ac_bool(Func::And, vec![e1, e2]);
    }
    // Integer equalities: move everything to one side and normalize, so
    // `x + 1 = 1 + x` becomes `0 = 0`.
    if is_int_term(&a) || is_int_term(&b) {
        let diff = linear::normalize_linear(Func::Sub, vec![a.clone(), b.clone()]);
        if let Term::Lit(Value::Int(n)) = diff {
            return Term::bool(n == 0);
        }
        // Canonical orientation: `lin = 0` with the linear part first.
        let (lo, hi) = order_pair(a, b);
        return Term::app(Func::Eq, [lo, hi]);
    }
    let (lo, hi) = order_pair(a, b);
    Term::app(Func::Eq, [lo, hi])
}

fn order_pair(a: Term, b: Term) -> (Term, Term) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn is_int_term(t: &Term) -> bool {
    match t {
        Term::Lit(Value::Int(_)) => true,
        Term::App(f, _) => matches!(
            f,
            Func::Add
                | Func::Sub
                | Func::Mul
                | Func::Div
                | Func::Mod
                | Func::Neg
                | Func::Max
                | Func::Min
                | Func::SeqLen
                | Func::SeqSum
                | Func::SeqMean
                | Func::SetCard
                | Func::MsCard
                | Func::MapLen
                | Func::SeqIndex
                | Func::MapGetOr
        ),
        _ => false,
    }
}

fn rewrite_mul(args: Vec<Term>) -> Term {
    let [a, b] = two(args);
    match (&a, &b) {
        (Term::Lit(Value::Int(0)), _) | (_, Term::Lit(Value::Int(0))) => Term::int(0),
        (Term::Lit(Value::Int(1)), _) => b,
        (_, Term::Lit(Value::Int(1))) => a,
        _ => linear::normalize_linear(Func::Mul, vec![a, b]),
    }
}

fn rewrite_cmp(f: Func, args: Vec<Term>) -> Term {
    let [a, b] = two(args);
    // Normalize to `0 cmp (b - a)` form via linear normalization of b - a.
    let diff = linear::normalize_linear(Func::Sub, vec![b.clone(), a.clone()]);
    if let Term::Lit(Value::Int(n)) = diff {
        return Term::bool(match f {
            Func::Lt => n > 0,
            Func::Le => n >= 0,
            _ => unreachable!("rewrite_cmp"),
        });
    }
    Term::App(f, vec![a, b])
}

/// `Mod(t, k)` for a literal positive modulus: summands of the linear form
/// of `t` whose coefficient is divisible by `k` vanish, and the constant is
/// reduced mod `k`. Proves facts like `(2·j + 1) mod 2 = 1` symbolically —
/// the disjoint-key-range idiom of the Sales-By-Region example.
fn rewrite_mod(args: Vec<Term>) -> Term {
    let [t, modulus] = two(args);
    let Term::Lit(Value::Int(k)) = modulus else {
        return Term::app(Func::Mod, [t, modulus]);
    };
    if k <= 0 {
        return Term::app(Func::Mod, [t, modulus]);
    }
    // Canonicalize, then drop k-divisible summands.
    let lin = linear::normalize_linear(Func::Add, vec![t]);
    let mut kept: Vec<Term> = Vec::new();
    let mut constant: i64 = 0;
    let mut stack = vec![lin];
    while let Some(part) = stack.pop() {
        match part {
            Term::App(Func::Add, parts) => stack.extend(parts),
            Term::Lit(Value::Int(n)) => constant = (constant + n.rem_euclid(k)).rem_euclid(k),
            Term::App(Func::Mul, ref m) => match (&m[0], &m[1]) {
                (Term::Lit(Value::Int(c)), _) | (_, Term::Lit(Value::Int(c)))
                    if c.rem_euclid(k) == 0 => {}
                _ => kept.push(part),
            },
            other => kept.push(other),
        }
    }
    if kept.is_empty() {
        return Term::int(constant);
    }
    let mut sum = {
        let mut it = kept.into_iter();
        let first = it.next().expect("nonempty");
        it.fold(first, |acc, x| Term::App(Func::Add, vec![acc, x]))
    };
    if constant != 0 {
        sum = Term::App(Func::Add, vec![sum, Term::int(constant)]);
    }
    Term::app(Func::Mod, [sum, Term::int(k)])
}

fn rewrite_ac_minmax(f: Func, args: Vec<Term>) -> Term {
    let mut flat = Vec::new();
    let mut stack: Vec<Term> = args;
    while let Some(a) = stack.pop() {
        match a {
            Term::App(ref g, ref inner) if *g == f => stack.extend(inner.iter().cloned()),
            other => flat.push(other),
        }
    }
    // Fold literal operands.
    let mut lit: Option<i64> = None;
    let mut rest = Vec::new();
    for t in flat {
        if let Term::Lit(Value::Int(n)) = t {
            lit = Some(match (lit, &f) {
                (None, _) => n,
                (Some(m), Func::Max) => m.max(n),
                (Some(m), Func::Min) => m.min(n),
                _ => unreachable!("minmax literal folding"),
            });
        } else {
            rest.push(t);
        }
    }
    rest.sort();
    rest.dedup();
    if let Some(n) = lit {
        rest.push(Term::int(n));
    }
    match rest.len() {
        0 => unreachable!("minmax of zero operands"),
        1 => rest.into_iter().next().expect("len checked"),
        _ => {
            // Rebuild a left-nested canonical chain.
            let mut it = rest.into_iter();
            let first = it.next().expect("nonempty");
            it.fold(first, |acc, x| Term::App(f.clone(), vec![acc, x]))
        }
    }
}

fn rewrite_proj(f: Func, args: Vec<Term>) -> Term {
    match &args[0] {
        Term::App(Func::MkPair, inner) => match f {
            Func::Fst => inner[0].clone(),
            Func::Snd => inner[1].clone(),
            _ => unreachable!("rewrite_proj"),
        },
        _ => Term::App(f, args),
    }
}

/// Pushes sequence observers through `SeqAppend`/`SeqConcat`/`SeqSorted` and
/// literal sequences.
fn rewrite_seq_observer(obs: Func, args: Vec<Term>, oracle: &dyn EqOracle) -> Term {
    let s = args.into_iter().next().expect("unary observer");
    match (&obs, &s) {
        (Func::SeqLen, Term::App(Func::SeqAppend, inner)) => {
            let base = rewrite_seq_observer(Func::SeqLen, vec![inner[0].clone()], oracle);
            linear::normalize_linear(Func::Add, vec![base, Term::int(1)])
        }
        (Func::SeqLen, Term::App(Func::SeqConcat, inner)) => {
            let a = rewrite_seq_observer(Func::SeqLen, vec![inner[0].clone()], oracle);
            let b = rewrite_seq_observer(Func::SeqLen, vec![inner[1].clone()], oracle);
            linear::normalize_linear(Func::Add, vec![a, b])
        }
        (Func::SeqLen, Term::App(Func::SeqSorted, inner)) => {
            rewrite_seq_observer(Func::SeqLen, vec![inner[0].clone()], oracle)
        }
        (Func::SeqSum, Term::App(Func::SeqAppend, inner)) => {
            let base = rewrite_seq_observer(Func::SeqSum, vec![inner[0].clone()], oracle);
            linear::normalize_linear(Func::Add, vec![base, inner[1].clone()])
        }
        (Func::SeqSum, Term::App(Func::SeqConcat, inner)) => {
            let a = rewrite_seq_observer(Func::SeqSum, vec![inner[0].clone()], oracle);
            let b = rewrite_seq_observer(Func::SeqSum, vec![inner[1].clone()], oracle);
            linear::normalize_linear(Func::Add, vec![a, b])
        }
        (Func::SeqSum, Term::App(Func::SeqSorted, inner)) => {
            rewrite_seq_observer(Func::SeqSum, vec![inner[0].clone()], oracle)
        }
        (Func::SeqToMultiset, Term::App(Func::SeqAppend, inner)) => {
            let base =
                rewrite_seq_observer(Func::SeqToMultiset, vec![inner[0].clone()], oracle);
            rewrite_chain_add(Func::MsAdd, vec![base, inner[1].clone()], false)
        }
        (Func::SeqToMultiset, Term::App(Func::SeqConcat, inner)) => {
            let a = rewrite_seq_observer(Func::SeqToMultiset, vec![inner[0].clone()], oracle);
            let b = rewrite_seq_observer(Func::SeqToMultiset, vec![inner[1].clone()], oracle);
            rewrite_ac_union(Func::MsUnion, vec![a, b])
        }
        (Func::SeqToMultiset, Term::App(Func::SeqSorted, inner)) => {
            rewrite_seq_observer(Func::SeqToMultiset, vec![inner[0].clone()], oracle)
        }
        // to_ms(ms_to_sorted_seq(m)) = m — sorting a multiset's list view
        // round-trips.
        (Func::SeqToMultiset, Term::App(Func::MsToSortedSeq, inner)) => inner[0].clone(),
        (Func::SeqLen, Term::App(Func::MsToSortedSeq, inner)) => {
            rewrite_node(Func::MsCard, vec![inner[0].clone()], oracle)
        }
        (Func::SeqToSet, Term::App(Func::SeqAppend, inner)) => {
            let base = rewrite_seq_observer(Func::SeqToSet, vec![inner[0].clone()], oracle);
            rewrite_chain_add(Func::SetAdd, vec![base, inner[1].clone()], true)
        }
        (Func::SeqToSet, Term::App(Func::SeqConcat, inner)) => {
            let a = rewrite_seq_observer(Func::SeqToSet, vec![inner[0].clone()], oracle);
            let b = rewrite_seq_observer(Func::SeqToSet, vec![inner[1].clone()], oracle);
            rewrite_ac_union(Func::SetUnion, vec![a, b])
        }
        (Func::SeqToSet, Term::App(Func::SeqSorted, inner)) => {
            rewrite_seq_observer(Func::SeqToSet, vec![inner[0].clone()], oracle)
        }
        _ => Term::App(obs, vec![s]),
    }
}

/// Canonicalizes `add`-chains (`SetAdd`/`MsAdd`): the chain of inserted
/// elements over a common base is sorted, because insertion order is
/// irrelevant for sets and multisets. For sets, syntactic duplicates also
/// collapse.
fn rewrite_chain_add(f: Func, args: Vec<Term>, idempotent: bool) -> Term {
    let [base_arg, elem] = two(args);
    // Collect the full chain below.
    let mut elems = vec![elem];
    let mut base = base_arg;
    while let Term::App(ref g, ref inner) = base {
        if *g == f {
            elems.push(inner[1].clone());
            base = inner[0].clone();
        } else {
            break;
        }
    }
    elems.sort();
    if idempotent {
        elems.dedup();
        // Inserting into a literal set: fold fully when elements are literal.
        if let Term::Lit(Value::Set(s)) = &base {
            let mut s = s.clone();
            let mut remaining = Vec::new();
            for e in elems {
                if let Term::Lit(v) = e {
                    s.insert(v);
                } else {
                    remaining.push(e);
                }
            }
            base = Term::Lit(Value::Set(s));
            elems = remaining;
            // Literal elements may now duplicate set contents; harmless.
        }
    } else if let Term::Lit(Value::Multiset(m)) = &base {
        let mut m = m.clone();
        let mut remaining = Vec::new();
        for e in elems {
            if let Term::Lit(v) = e {
                m.insert(v);
            } else {
                remaining.push(e);
            }
        }
        base = Term::Lit(Value::Multiset(m));
        elems = remaining;
    }
    // Rebuild in sorted order (largest applied last).
    elems
        .into_iter()
        .rev()
        .fold(base, |acc, e| Term::App(f.clone(), vec![acc, e]))
}

/// Flattens and sorts AC unions; folds literal neighbours.
fn rewrite_ac_union(f: Func, args: Vec<Term>) -> Term {
    let empty = match f {
        Func::SetUnion => Value::set_empty(),
        Func::MsUnion => Value::multiset_empty(),
        _ => unreachable!("rewrite_ac_union"),
    };
    let mut flat = Vec::new();
    let mut stack: Vec<Term> = args;
    while let Some(a) = stack.pop() {
        match a {
            Term::App(ref g, ref inner) if *g == f => stack.extend(inner.iter().cloned()),
            Term::Lit(ref v) if *v == empty => {}
            other => flat.push(other),
        }
    }
    flat.sort();
    match flat.len() {
        0 => Term::Lit(empty),
        1 => flat.into_iter().next().expect("len checked"),
        _ => {
            let mut it = flat.into_iter();
            let first = it.next().expect("nonempty");
            it.fold(first, |acc, x| Term::App(f.clone(), vec![acc, x]))
        }
    }
}

/// Membership through add-chains:
/// `contains(add(s, e), x) → x = e ∨ contains(s, x)`.
fn rewrite_member(member: Func, adder: Func, args: Vec<Term>, oracle: &dyn EqOracle) -> Term {
    let [s, x] = two(args);
    match &s {
        Term::App(g, inner) if *g == adder => {
            let hit = rewrite_eq(vec![x.clone(), inner[1].clone()], oracle);
            let rest = rewrite_member(member, adder, vec![inner[0].clone(), x], oracle);
            rewrite_ac_bool(Func::Or, vec![hit, rest])
        }
        Term::Lit(v) => {
            if let Term::Lit(xl) = &x {
                let contained = match v {
                    Value::Set(set) => Some(set.contains(xl)),
                    Value::Multiset(ms) => Some(ms.contains(xl)),
                    _ => None,
                };
                if let Some(b) = contained {
                    return Term::bool(b);
                }
            }
            Term::App(member, vec![s, x])
        }
        _ => Term::App(member, vec![s, x]),
    }
}

/// Canonicalizes `MapPut` chains.
///
/// * Same key (decided by the oracle or syntactically): the inner put is
///   dead — `put(put(m, k, v1), k, v2) → put(m, k, v2)`.
/// * Provably distinct keys: adjacent puts are sorted by key term order
///   (sound because distinct-key puts commute).
fn rewrite_map_put(args: Vec<Term>, oracle: &dyn EqOracle) -> Term {
    let mut it = args.into_iter();
    let m = it.next().expect("map_put");
    let k = it.next().expect("map_put");
    let v = it.next().expect("map_put");
    if let Term::App(Func::MapPut, inner) = &m {
        let (m0, k0, v0) = (inner[0].clone(), inner[1].clone(), inner[2].clone());
        match decide_keys(&k0, &k, oracle) {
            Some(true) => {
                // Inner put is overwritten.
                return rewrite_map_put(vec![m0, k, v], oracle);
            }
            Some(false) if key_order(&k, &k0) == Ordering::Less => {
                let inner_new = rewrite_map_put(vec![m0, k, v], oracle);
                return Term::app(Func::MapPut, [inner_new, k0, v0]);
            }
            _ => {}
        }
    }
    // Literal folding: put into a literal map with literal key/value.
    if let (Term::Lit(Value::Map(map)), Term::Lit(kl), Term::Lit(vl)) = (&m, &k, &v) {
        let mut map = map.clone();
        map.insert(kl.clone(), vl.clone());
        return Term::Lit(Value::Map(map));
    }
    Term::app(Func::MapPut, [m, k, v])
}

fn decide_keys(a: &Term, b: &Term, oracle: &dyn EqOracle) -> Option<bool> {
    oracle.decide_eq(a, b).or_else(|| decide_eq_syntactic(a, b))
}

fn key_order(a: &Term, b: &Term) -> Ordering {
    a.cmp(b)
}

/// `get_or(put(m, k, v), k', d)` case-splits on the key equality; the
/// syntactic/oracle fast path avoids introducing an `Ite` when decidable.
fn rewrite_map_get_or(args: Vec<Term>, oracle: &dyn EqOracle) -> Term {
    let mut it = args.into_iter();
    let m = it.next().expect("map_get_or");
    let k = it.next().expect("map_get_or");
    let d = it.next().expect("map_get_or");
    if let Term::App(Func::MapPut, inner) = &m {
        let (m0, k0, v0) = (inner[0].clone(), inner[1].clone(), inner[2].clone());
        match decide_keys(&k, &k0, oracle) {
            Some(true) => return v0,
            Some(false) => return rewrite_map_get_or(vec![m0, k, d], oracle),
            None => {
                let cond = rewrite_eq(vec![k.clone(), k0], oracle);
                let rest = rewrite_map_get_or(vec![m0, k, d], oracle);
                return rewrite_ite(vec![cond, v0, rest], oracle);
            }
        }
    }
    if let (Term::Lit(Value::Map(map)), Term::Lit(kl)) = (&m, &k) {
        return match map.get(kl) {
            Some(v) => Term::Lit(v.clone()),
            None => d,
        };
    }
    Term::app(Func::MapGetOr, [m, k, d])
}

/// Linear integer arithmetic normalization.
mod linear {
    use super::*;

    /// A linear form: `constant + Σ coeff·atom` with canonically ordered
    /// atoms (atoms are arbitrary non-linear integer terms).
    #[derive(Debug, Default)]
    struct Linear {
        constant: i64,
        coeffs: BTreeMap<Term, i64>,
    }

    impl Linear {
        fn add_term(&mut self, t: &Term, scale: i64) {
            if scale == 0 {
                return;
            }
            match t {
                Term::Lit(Value::Int(n)) => {
                    self.constant = self.constant.saturating_add(n.saturating_mul(scale));
                }
                Term::App(Func::Add, args) => {
                    for a in args {
                        self.add_term(a, scale);
                    }
                }
                Term::App(Func::Sub, args) => {
                    self.add_term(&args[0], scale);
                    self.add_term(&args[1], -scale);
                }
                Term::App(Func::Neg, args) => self.add_term(&args[0], -scale),
                Term::App(Func::Mul, args) => {
                    match (&args[0], &args[1]) {
                        (Term::Lit(Value::Int(n)), other)
                        | (other, Term::Lit(Value::Int(n))) => {
                            self.add_term(other, scale.saturating_mul(*n));
                        }
                        _ => {
                            *self.coeffs.entry(t.clone()).or_insert(0) += scale;
                        }
                    }
                }
                atom => {
                    *self.coeffs.entry(atom.clone()).or_insert(0) += scale;
                }
            }
        }

        fn to_term(&self) -> Term {
            let mut parts: Vec<Term> = Vec::new();
            for (atom, coeff) in &self.coeffs {
                match *coeff {
                    0 => {}
                    1 => parts.push(atom.clone()),
                    c => parts.push(Term::App(
                        Func::Mul,
                        vec![Term::int(c), atom.clone()],
                    )),
                }
            }
            if parts.is_empty() {
                return Term::int(self.constant);
            }
            let mut acc = {
                let mut it = parts.into_iter();
                let first = it.next().expect("nonempty");
                it.fold(first, |acc, x| Term::App(Func::Add, vec![acc, x]))
            };
            if self.constant != 0 {
                acc = Term::App(Func::Add, vec![acc, Term::int(self.constant)]);
            }
            acc
        }
    }

    /// Normalizes an `Add`/`Sub`/`Neg`/`Mul` application into canonical
    /// linear form.
    pub(super) fn normalize_linear(f: Func, args: Vec<Term>) -> Term {
        let mut lin = Linear::default();
        lin.add_term(&Term::App(f, args), 1);
        lin.to_term()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Env;

    fn norm(t: &Term) -> Term {
        normalize(t, &SyntacticOracle)
    }

    #[test]
    fn linear_commutes() {
        let lhs = Term::add(Term::add(Term::var("v"), Term::var("a")), Term::var("b"));
        let rhs = Term::add(Term::add(Term::var("v"), Term::var("b")), Term::var("a"));
        assert_eq!(norm(&lhs), norm(&rhs));
    }

    #[test]
    fn linear_cancels() {
        let t = Term::sub(
            Term::add(Term::var("x"), Term::int(3)),
            Term::add(Term::var("x"), Term::int(1)),
        );
        assert_eq!(norm(&t), Term::int(2));
    }

    #[test]
    fn eq_of_equal_linear_forms_is_true() {
        let lhs = Term::add(Term::var("x"), Term::int(1));
        let rhs = Term::add(Term::int(1), Term::var("x"));
        assert_eq!(norm(&Term::eq(lhs, rhs)), Term::tt());
    }

    #[test]
    fn dom_of_put_chain_is_canonical() {
        let m = Term::var("m");
        let put = |m, k: &str| Term::app(Func::MapPut, [m, Term::var(k), Term::var("val")]);
        let lhs = Term::app(Func::MapDom, [put(put(m.clone(), "k1"), "k2")]);
        let rhs = Term::app(Func::MapDom, [put(put(m, "k2"), "k1")]);
        assert_eq!(norm(&lhs), norm(&rhs));
    }

    #[test]
    fn multiset_view_of_append_chain_commutes() {
        let s = Term::var("s");
        let app = |s, x: &str| Term::app(Func::SeqAppend, [s, Term::var(x)]);
        let lhs = Term::app(Func::SeqToMultiset, [app(app(s.clone(), "a"), "b")]);
        let rhs = Term::app(Func::SeqToMultiset, [app(app(s, "b"), "a")]);
        assert_eq!(norm(&lhs), norm(&rhs));
    }

    #[test]
    fn sum_and_len_of_append_chain_commute() {
        let s = Term::var("s");
        let app = |s, x: &str| Term::app(Func::SeqAppend, [s, Term::var(x)]);
        for obs in [Func::SeqSum, Func::SeqLen] {
            let lhs = Term::app(obs.clone(), [app(app(s.clone(), "a"), "b")]);
            let rhs = Term::app(obs, [app(app(s.clone(), "b"), "a")]);
            assert_eq!(norm(&lhs), norm(&rhs));
        }
    }

    #[test]
    fn seq_itself_does_not_commute() {
        let s = Term::var("s");
        let app = |s, x: &str| Term::app(Func::SeqAppend, [s, Term::var(x)]);
        let lhs = app(app(s.clone(), "a"), "b");
        let rhs = app(app(s, "b"), "a");
        assert_ne!(norm(&lhs), norm(&rhs));
    }

    #[test]
    fn sorted_is_invariant_under_multiset_observers() {
        let s = Term::var("s");
        let sorted = Term::app(Func::SeqSorted, [s.clone()]);
        let lhs = Term::app(Func::SeqToMultiset, [sorted]);
        let rhs = Term::app(Func::SeqToMultiset, [s]);
        assert_eq!(norm(&lhs), norm(&rhs));
    }

    #[test]
    fn get_or_over_put_same_key_projects() {
        let t = Term::app(
            Func::MapGetOr,
            [
                Term::app(
                    Func::MapPut,
                    [Term::var("m"), Term::var("k"), Term::var("v")],
                ),
                Term::var("k"),
                Term::int(0),
            ],
        );
        assert_eq!(norm(&t), Term::var("v"));
    }

    #[test]
    fn get_or_over_put_unknown_key_splits() {
        let t = Term::app(
            Func::MapGetOr,
            [
                Term::app(
                    Func::MapPut,
                    [Term::var("m"), Term::var("k1"), Term::var("v")],
                ),
                Term::var("k2"),
                Term::int(0),
            ],
        );
        assert!(matches!(norm(&t), Term::App(Func::Ite, _)));
    }

    #[test]
    fn histogram_update_commutes_on_same_key() {
        // increment(increment(m, k), k) built both ways is syntactically the
        // same here; the interesting check is that the nested get_or chain
        // resolves.
        let m = Term::var("m");
        let inc = |m: Term, k: &Term| {
            Term::app(
                Func::MapPut,
                [
                    m.clone(),
                    k.clone(),
                    Term::add(
                        Term::app(Func::MapGetOr, [m, k.clone(), Term::int(0)]),
                        Term::int(1),
                    ),
                ],
            )
        };
        let k = Term::var("k");
        let t = inc(inc(m.clone(), &k), &k);
        let expect = Term::app(
            Func::MapPut,
            [
                m.clone(),
                k.clone(),
                Term::add(
                    Term::app(Func::MapGetOr, [m, k, Term::int(0)]),
                    Term::int(2),
                ),
            ],
        );
        assert_eq!(norm(&t), norm(&expect));
    }

    #[test]
    fn ite_same_branches_collapses() {
        let t = Term::ite(Term::var("c"), Term::var("x"), Term::var("x"));
        assert_eq!(norm(&t), Term::var("x"));
    }

    #[test]
    fn observers_distribute_over_ite() {
        // snd(ite(c, pair(a, s), pair(b, s))) → s
        let t = Term::snd(Term::ite(
            Term::var("c"),
            Term::pair(Term::var("a"), Term::var("s")),
            Term::pair(Term::var("b"), Term::var("s")),
        ));
        assert_eq!(norm(&t), Term::var("s"));
    }

    #[test]
    fn mean_expands_to_sum_and_len() {
        let s = Term::var("s");
        let app = |s, x: &str| Term::app(Func::SeqAppend, [s, Term::var(x)]);
        let lhs = Term::app(Func::SeqMean, [app(app(s.clone(), "a"), "b")]);
        let rhs = Term::app(Func::SeqMean, [app(app(s, "b"), "a")]);
        assert_eq!(norm(&lhs), norm(&rhs));
    }

    #[test]
    fn and_dedups_and_units() {
        let t = Term::and([Term::var("p"), Term::tt(), Term::var("p")]);
        assert_eq!(norm(&t), Term::var("p"));
        let t = Term::and([Term::var("p"), Term::ff()]);
        assert_eq!(norm(&t), Term::ff());
    }

    #[test]
    fn contradictory_conjunction_collapses() {
        let t = Term::and([Term::var("p"), Term::not(Term::var("p"))]);
        assert_eq!(norm(&t), Term::ff());
    }

    #[test]
    fn max_chain_is_ac() {
        let lhs = Term::app(
            Func::Max,
            [
                Term::app(Func::Max, [Term::var("g"), Term::var("p1")]),
                Term::var("p2"),
            ],
        );
        let rhs = Term::app(
            Func::Max,
            [
                Term::app(Func::Max, [Term::var("g"), Term::var("p2")]),
                Term::var("p1"),
            ],
        );
        assert_eq!(norm(&lhs), norm(&rhs));
    }

    #[test]
    fn normalization_preserves_ground_semantics() {
        // Evaluate a few non-trivial terms before and after normalization.
        let env: Env = [
            ("x".into(), Value::from(7)),
            ("y".into(), Value::from(-3)),
            (
                "s".into(),
                Value::seq([Value::from(1), Value::from(2), Value::from(2)]),
            ),
            (
                "m".into(),
                Value::map([(Value::from(1), Value::from(10))]),
            ),
        ]
        .into_iter()
        .collect();
        let terms = [
            Term::sub(Term::add(Term::var("x"), Term::var("y")), Term::var("y")),
            Term::app(
                Func::SeqToMultiset,
                [Term::app(Func::SeqAppend, [Term::var("s"), Term::var("x")])],
            ),
            Term::app(Func::SeqMean, [Term::var("s")]),
            Term::app(
                Func::MapGetOr,
                [
                    Term::app(
                        Func::MapPut,
                        [Term::var("m"), Term::int(2), Term::var("x")],
                    ),
                    Term::int(1),
                    Term::int(0),
                ],
            ),
            Term::app(
                Func::Max,
                [Term::var("x"), Term::app(Func::Max, [Term::var("y"), Term::int(5)])],
            ),
        ];
        for t in terms {
            let n = norm(&t);
            assert_eq!(
                t.eval(&env).unwrap(),
                n.eval(&env).unwrap(),
                "normalization changed semantics of {t:?} → {n:?}"
            );
        }
    }
}
