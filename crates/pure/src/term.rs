//! Symbolic terms over the pure value universe.
//!
//! Terms are the lingua franca between the verifier and the SMT-lite solver:
//! relational proof obligations (`Low(e)` queries, action preconditions,
//! commutativity equalities) are expressed as boolean-sorted [`Term`]s and
//! discharged by the solver in `commcsl-smt`, with [`Term::eval`] providing
//! the ground semantics used for model checking and falsification.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::ops::{sort_mismatch, PureResult};
use crate::symbol::Symbol;
use crate::value::Value;

/// A function symbol of the term language.
///
/// The interpreted symbols mirror the operations on [`Value`];
/// [`Func::Uninterpreted`] supports abstract function symbols (used e.g. for
/// opaque abstraction functions in solver queries).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Func {
    // -- arithmetic
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Euclidean division.
    Div,
    /// Euclidean remainder.
    Mod,
    /// Integer negation.
    Neg,
    /// Integer maximum.
    Max,
    /// Integer minimum.
    Min,
    // -- comparison
    /// Equality (any sort).
    Eq,
    /// Strict less-than on integers.
    Lt,
    /// Less-or-equal on integers.
    Le,
    // -- boolean
    /// Negation.
    Not,
    /// Conjunction (variadic).
    And,
    /// Disjunction (variadic).
    Or,
    /// Implication.
    Implies,
    /// Bi-implication.
    Iff,
    /// If-then-else (first argument boolean).
    Ite,
    // -- pairs and sums
    /// Pair constructor.
    MkPair,
    /// First projection.
    Fst,
    /// Second projection.
    Snd,
    /// Left injection.
    MkLeft,
    /// Right injection.
    MkRight,
    /// Tests for a left injection.
    IsLeft,
    /// Projects out of a left injection.
    FromLeft,
    /// Projects out of a right injection.
    FromRight,
    // -- sequences
    /// Sequence append (seq, elem).
    SeqAppend,
    /// Sequence concatenation.
    SeqConcat,
    /// Sequence length.
    SeqLen,
    /// Sequence indexing (seq, index).
    SeqIndex,
    /// Total sequence indexing with default (seq, index, default).
    SeqIndexOr,
    /// Tail of a sequence (total: empty ↦ empty).
    SeqTail,
    /// Head of a sequence with a default (seq, default) — total.
    SeqHeadOr,
    /// Sum of an integer sequence.
    SeqSum,
    /// Mean of an integer sequence (total; empty ↦ 0).
    SeqMean,
    /// Sorted copy of a sequence.
    SeqSorted,
    /// Multiset view of a sequence.
    SeqToMultiset,
    /// Set view of a sequence.
    SeqToSet,
    // -- sets
    /// Set insertion (set, elem).
    SetAdd,
    /// Set union.
    SetUnion,
    /// Set cardinality.
    SetCard,
    /// Set membership (set, elem).
    SetContains,
    /// Sorted sequence of a set.
    SetToSeq,
    // -- multisets
    /// Multiset insertion (ms, elem).
    MsAdd,
    /// Multiset union `∪#`.
    MsUnion,
    /// Multiset cardinality.
    MsCard,
    /// Multiset membership (ms, elem).
    MsContains,
    /// Sorted sequence of a multiset (the canonical list view; `sorted(s)`
    /// rewrites to `MsToSortedSeq(SeqToMultiset(s))`).
    MsToSortedSeq,
    // -- maps
    /// Map update (map, key, val).
    MapPut,
    /// Map lookup with default (map, key, default) — total.
    MapGetOr,
    /// Map domain.
    MapDom,
    /// Map membership (map, key).
    MapContains,
    /// Number of map entries.
    MapLen,
    // -- escape hatch
    /// An uninterpreted function symbol with the given name.
    Uninterpreted(Symbol),
}

impl Func {
    /// Returns the arity of the symbol, or `None` for variadic symbols
    /// (`And`, `Or`) and uninterpreted symbols.
    pub fn arity(&self) -> Option<usize> {
        use Func::*;
        Some(match self {
            Neg | Not | Fst | Snd | MkLeft | MkRight | IsLeft | FromLeft | FromRight
            | SeqLen | SeqTail | SeqSum | SeqMean | SeqSorted | SeqToMultiset | SeqToSet
            | SetCard | SetToSeq | MsCard | MsToSortedSeq | MapDom | MapLen => 1,
            Add | Sub | Mul | Div | Mod | Max | Min | Eq | Lt | Le | Implies | Iff
            | MkPair | SeqAppend | SeqConcat | SeqIndex | SeqHeadOr | SetAdd | SetUnion
            | SetContains | MsAdd | MsUnion | MsContains | MapContains => 2,
            Ite | MapPut | MapGetOr | SeqIndexOr => 3,
            And | Or | Uninterpreted(_) => return None,
        })
    }

    /// Returns `true` for symbols whose result sort is boolean.
    pub fn is_predicate(&self) -> bool {
        use Func::*;
        matches!(
            self,
            Eq | Lt | Le | Not | And | Or | Implies | Iff | IsLeft | SetContains | MsContains
                | MapContains
        )
    }
}

/// A symbolic term.
///
/// # Example
///
/// ```
/// use commcsl_pure::{Term, Value};
///
/// let t = Term::add(Term::var("x"), Term::int(1));
/// let env = [("x".into(), Value::from(41))].into_iter().collect();
/// assert_eq!(t.eval(&env).unwrap(), Value::from(42));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable.
    Var(Symbol),
    /// A literal value.
    Lit(Value),
    /// A function application.
    App(Func, Vec<Term>),
}

/// Environments bind variables to values for ground evaluation.
pub type Env = BTreeMap<Symbol, Value>;

impl Term {
    // --------------------------------------------------------- constructors

    /// Variable term.
    pub fn var(name: impl Into<Symbol>) -> Term {
        Term::Var(name.into())
    }

    /// Integer literal.
    pub fn int(n: i64) -> Term {
        Term::Lit(Value::Int(n))
    }

    /// Boolean literal.
    pub fn bool(b: bool) -> Term {
        Term::Lit(Value::Bool(b))
    }

    /// The literal `true`.
    pub fn tt() -> Term {
        Term::bool(true)
    }

    /// The literal `false`.
    pub fn ff() -> Term {
        Term::bool(false)
    }

    /// Application helper.
    pub fn app(f: Func, args: impl IntoIterator<Item = Term>) -> Term {
        Term::App(f, args.into_iter().collect())
    }

    /// `a + b`.
    // Associated constructor (no `self`), not an operator method.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Term, b: Term) -> Term {
        Term::app(Func::Add, [a, b])
    }

    /// `a - b`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Term, b: Term) -> Term {
        Term::app(Func::Sub, [a, b])
    }

    /// `a * b`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Term, b: Term) -> Term {
        Term::app(Func::Mul, [a, b])
    }

    /// `a = b`.
    pub fn eq(a: Term, b: Term) -> Term {
        Term::app(Func::Eq, [a, b])
    }

    /// `a ≠ b`.
    pub fn neq(a: Term, b: Term) -> Term {
        Term::not(Term::eq(a, b))
    }

    /// `a < b`.
    pub fn lt(a: Term, b: Term) -> Term {
        Term::app(Func::Lt, [a, b])
    }

    /// `a ≤ b`.
    pub fn le(a: Term, b: Term) -> Term {
        Term::app(Func::Le, [a, b])
    }

    /// `¬a`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Term) -> Term {
        Term::app(Func::Not, [a])
    }

    /// Variadic conjunction (empty ⇒ `true`).
    pub fn and(conjuncts: impl IntoIterator<Item = Term>) -> Term {
        let cs: Vec<Term> = conjuncts.into_iter().collect();
        match cs.len() {
            0 => Term::tt(),
            1 => cs.into_iter().next().expect("len checked"),
            _ => Term::App(Func::And, cs),
        }
    }

    /// Variadic disjunction (empty ⇒ `false`).
    pub fn or(disjuncts: impl IntoIterator<Item = Term>) -> Term {
        let ds: Vec<Term> = disjuncts.into_iter().collect();
        match ds.len() {
            0 => Term::ff(),
            1 => ds.into_iter().next().expect("len checked"),
            _ => Term::App(Func::Or, ds),
        }
    }

    /// `a ⇒ b`.
    pub fn implies(a: Term, b: Term) -> Term {
        Term::app(Func::Implies, [a, b])
    }

    /// `if c then t else e`.
    pub fn ite(c: Term, t: Term, e: Term) -> Term {
        Term::app(Func::Ite, [c, t, e])
    }

    /// Pair construction.
    pub fn pair(a: Term, b: Term) -> Term {
        Term::app(Func::MkPair, [a, b])
    }

    /// First projection.
    pub fn fst(p: Term) -> Term {
        Term::app(Func::Fst, [p])
    }

    /// Second projection.
    pub fn snd(p: Term) -> Term {
        Term::app(Func::Snd, [p])
    }

    // --------------------------------------------------------------- charts

    /// Returns the set of free variables.
    pub fn free_vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Term::Var(x) => {
                out.insert(x.clone());
            }
            Term::Lit(_) => {}
            Term::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Returns the number of nodes in the term (a simple size measure).
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Lit(_) => 1,
            Term::App(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
        }
    }

    /// Capture-free substitution of variables by terms.
    ///
    /// The term language has no binders, so substitution is structural.
    pub fn subst(&self, bindings: &BTreeMap<Symbol, Term>) -> Term {
        match self {
            Term::Var(x) => bindings.get(x).cloned().unwrap_or_else(|| self.clone()),
            Term::Lit(_) => self.clone(),
            Term::App(f, args) => {
                Term::App(f.clone(), args.iter().map(|a| a.subst(bindings)).collect())
            }
        }
    }

    /// Renames every variable through `f`.
    pub fn rename(&self, f: &impl Fn(&Symbol) -> Symbol) -> Term {
        match self {
            Term::Var(x) => Term::Var(f(x)),
            Term::Lit(_) => self.clone(),
            Term::App(func, args) => {
                Term::App(func.clone(), args.iter().map(|a| a.rename(f)).collect())
            }
        }
    }

    // ----------------------------------------------------------- evaluation

    /// Evaluates a term under an environment.
    ///
    /// # Errors
    ///
    /// Returns a [`PureError`](crate::PureError) for unbound variables (as a
    /// sort mismatch), ill-sorted operands, partial-operation failures, and
    /// applications of uninterpreted symbols (which have no semantics).
    pub fn eval(&self, env: &Env) -> PureResult<Value> {
        match self {
            Term::Var(x) => match env.get(x) {
                Some(v) => Ok(v.clone()),
                None => sort_mismatch("eval", format!("unbound variable {x}")),
            },
            Term::Lit(v) => Ok(v.clone()),
            Term::App(f, args) => eval_app(f, args, env),
        }
    }
}

fn eval_app(f: &Func, args: &[Term], env: &Env) -> PureResult<Value> {
    use Func::*;

    // Short-circuiting / lazy symbols first.
    match f {
        And => {
            for a in args {
                if !a.eval(env)?.as_bool()? {
                    return Ok(Value::Bool(false));
                }
            }
            return Ok(Value::Bool(true));
        }
        Or => {
            for a in args {
                if a.eval(env)?.as_bool()? {
                    return Ok(Value::Bool(true));
                }
            }
            return Ok(Value::Bool(false));
        }
        Implies => {
            let p = args[0].eval(env)?.as_bool()?;
            if !p {
                return Ok(Value::Bool(true));
            }
            return Ok(Value::Bool(args[1].eval(env)?.as_bool()?));
        }
        Ite => {
            let c = args[0].eval(env)?.as_bool()?;
            return if c {
                args[1].eval(env)
            } else {
                args[2].eval(env)
            };
        }
        _ => {}
    }

    let vs: Vec<Value> = args
        .iter()
        .map(|a| a.eval(env))
        .collect::<PureResult<_>>()?;

    match (f, vs.as_slice()) {
        (Add, [a, b]) => a.int_add(b),
        (Sub, [a, b]) => a.int_sub(b),
        (Mul, [a, b]) => a.int_mul(b),
        (Div, [a, b]) => a.int_div(b),
        (Mod, [a, b]) => a.int_mod(b),
        (Max, [a, b]) => a.int_max(b),
        (Min, [a, b]) => a.int_min(b),
        (Neg, [a]) => Value::Int(0).int_sub(a),
        (Eq, [a, b]) => Ok(Value::Bool(a == b)),
        (Lt, [a, b]) => Ok(Value::Bool(a.as_int()? < b.as_int()?)),
        (Le, [a, b]) => Ok(Value::Bool(a.as_int()? <= b.as_int()?)),
        (Not, [a]) => Ok(Value::Bool(!a.as_bool()?)),
        (Iff, [a, b]) => Ok(Value::Bool(a.as_bool()? == b.as_bool()?)),
        (MkPair, [a, b]) => Ok(Value::pair(a.clone(), b.clone())),
        (Fst, [p]) => Ok(p.as_pair()?.0.clone()),
        (Snd, [p]) => Ok(p.as_pair()?.1.clone()),
        (MkLeft, [a]) => Ok(Value::left(a.clone())),
        (MkRight, [a]) => Ok(Value::right(a.clone())),
        (IsLeft, [v]) => match v {
            Value::Left(_) => Ok(Value::Bool(true)),
            Value::Right(_) => Ok(Value::Bool(false)),
            other => sort_mismatch("IsLeft", other),
        },
        (FromLeft, [v]) => match v {
            Value::Left(inner) => Ok((**inner).clone()),
            other => sort_mismatch("FromLeft", other),
        },
        (FromRight, [v]) => match v {
            Value::Right(inner) => Ok((**inner).clone()),
            other => sort_mismatch("FromRight", other),
        },
        (SeqAppend, [s, e]) => s.seq_append(e.clone()),
        (SeqConcat, [a, b]) => a.seq_concat(b),
        (SeqLen, [s]) => Ok(Value::Int(s.seq_len()? as i64)),
        (SeqIndex, [s, i]) => s.seq_index(i.as_int()?),
        (SeqIndexOr, [s, i, d]) => match i.as_int() {
            Ok(ix) => Ok(s
                .as_seq()?
                .get(usize::try_from(ix).unwrap_or(usize::MAX))
                .cloned()
                .unwrap_or_else(|| d.clone())),
            Err(e) => Err(e),
        },
        (SeqTail, [s]) => s.seq_tail(),
        (SeqHeadOr, [s, d]) => s.seq_head_or(d.clone()),
        (SeqSum, [s]) => s.seq_sum(),
        (SeqMean, [s]) => s.seq_mean(),
        (SeqSorted, [s]) => s.seq_sorted(),
        (SeqToMultiset, [s]) => s.seq_to_multiset(),
        (SeqToSet, [s]) => s.seq_to_set(),
        (SetAdd, [s, e]) => s.set_add(e.clone()),
        (SetUnion, [a, b]) => a.set_union(b),
        (SetCard, [s]) => Ok(Value::Int(s.set_card()? as i64)),
        (SetContains, [s, e]) => Ok(Value::Bool(s.set_contains(e)?)),
        (SetToSeq, [s]) => s.set_to_seq(),
        (MsAdd, [m, e]) => m.multiset_add(e.clone()),
        (MsUnion, [a, b]) => a.multiset_union(b),
        (MsCard, [m]) => Ok(Value::Int(m.multiset_card()? as i64)),
        (MsContains, [m, e]) => Ok(Value::Bool(m.as_multiset()?.contains(e))),
        (MsToSortedSeq, [m]) => m.multiset_to_sorted_seq(),
        (MapPut, [m, k, v]) => m.map_put(k.clone(), v.clone()),
        (MapGetOr, [m, k, d]) => m.map_get_or(k, d.clone()),
        (MapDom, [m]) => m.map_dom(),
        (MapContains, [m, k]) => Ok(Value::Bool(m.map_contains(k)?)),
        (MapLen, [m]) => Ok(Value::Int(m.map_len()? as i64)),
        (Uninterpreted(name), _) => {
            sort_mismatch("eval", format!("uninterpreted symbol {name}"))
        }
        (f, vs) => sort_mismatch("eval", format!("bad application {f:?} to {vs:?}")),
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(x) => write!(f, "{x}"),
            Term::Lit(v) => write!(f, "{v:?}"),
            Term::App(func, args) => {
                write!(f, "{func:?}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a:?}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(bindings: &[(&str, Value)]) -> Env {
        bindings
            .iter()
            .map(|(k, v)| (Symbol::new(k), v.clone()))
            .collect()
    }

    #[test]
    fn arithmetic_evaluates() {
        let t = Term::mul(Term::add(Term::var("x"), Term::int(1)), Term::int(3));
        assert_eq!(
            t.eval(&env(&[("x", Value::from(2))])).unwrap(),
            Value::from(9)
        );
    }

    #[test]
    fn and_short_circuits_over_errors() {
        // `false ∧ (1/0 = 1)` must evaluate to false, not error.
        let t = Term::and([
            Term::ff(),
            Term::eq(
                Term::app(Func::Div, [Term::int(1), Term::int(0)]),
                Term::int(1),
            ),
        ]);
        assert_eq!(t.eval(&env(&[])).unwrap(), Value::Bool(false));
    }

    #[test]
    fn implies_short_circuits() {
        let t = Term::implies(Term::ff(), Term::var("unbound"));
        assert_eq!(t.eval(&env(&[])).unwrap(), Value::Bool(true));
    }

    #[test]
    fn ite_selects_branch() {
        let t = Term::ite(Term::lt(Term::int(1), Term::int(2)), Term::int(10), Term::int(20));
        assert_eq!(t.eval(&env(&[])).unwrap(), Value::from(10));
    }

    #[test]
    fn free_vars_and_subst() {
        let t = Term::add(Term::var("x"), Term::var("y"));
        assert_eq!(
            t.free_vars().into_iter().collect::<Vec<_>>(),
            vec![Symbol::new("x"), Symbol::new("y")]
        );
        let s: BTreeMap<Symbol, Term> =
            [(Symbol::new("x"), Term::int(5))].into_iter().collect();
        let t2 = t.subst(&s);
        assert_eq!(
            t2.eval(&env(&[("y", Value::from(2))])).unwrap(),
            Value::from(7)
        );
    }

    #[test]
    fn container_functions_evaluate() {
        let m = Term::app(
            Func::MapPut,
            [
                Term::Lit(Value::map_empty()),
                Term::int(1),
                Term::int(10),
            ],
        );
        let dom = Term::app(Func::MapDom, [m]);
        assert_eq!(
            dom.eval(&env(&[])).unwrap(),
            Value::set([Value::from(1)])
        );
    }

    #[test]
    fn unbound_variable_is_an_error() {
        assert!(Term::var("nope").eval(&env(&[])).is_err());
    }

    #[test]
    fn uninterpreted_cannot_evaluate() {
        let t = Term::app(Func::Uninterpreted(Symbol::new("alpha")), [Term::int(1)]);
        assert!(t.eval(&env(&[])).is_err());
    }

    #[test]
    fn empty_and_or_units() {
        assert_eq!(Term::and([]), Term::tt());
        assert_eq!(Term::or([]), Term::ff());
    }

    #[test]
    fn rename_applies_everywhere() {
        let t = Term::add(Term::var("x"), Term::var("y"));
        let r = t.rename(&|s| s.suffixed("@1"));
        assert_eq!(
            r.free_vars().into_iter().collect::<Vec<_>>(),
            vec![Symbol::new("x@1"), Symbol::new("y@1")]
        );
    }
}
