//! Pure mathematical value domain for the CommCSL reproduction.
//!
//! CommCSL (Eilers, Dardinier, Müller; PLDI 2023) checks its central proof
//! obligations — abstract commutativity and precondition preservation — not
//! on program heaps but on *pure mathematical values* (paper, Sec. 2.4).
//! This crate provides that value universe:
//!
//! * [`Value`] — integers, booleans, strings, pairs, sums, sequences,
//!   multisets, sets, and partial maps, with total, deterministic operations.
//! * [`Multiset`] — a dedicated multiset container (argument multisets of
//!   shared-action guards are the paper's central bookkeeping device).
//! * [`Sort`] — the simple type system classifying values.
//! * [`Term`] — a symbolic term language over the same universe, used by the
//!   SMT-lite solver and the relational verifier.
//! * [`rewrite`] — a normalizing rewrite engine that decides many equalities
//!   between terms (the workhorse behind resource-specification validity).
//! * [`gen`] — pseudo-random and bounded-exhaustive value generators used by
//!   the falsification side of validity checking.
//!
//! # Example
//!
//! ```
//! use commcsl_pure::Value;
//!
//! // The map example of the paper (Fig. 3): `put` does not commute on the
//! // full map, but does commute on the key-set abstraction.
//! let m = Value::map_empty();
//! let a = m.clone().map_put(Value::from(1), Value::from(10)).unwrap();
//! let ab = a.map_put(Value::from(1), Value::from(20)).unwrap();
//! let b = m.map_put(Value::from(1), Value::from(20)).unwrap();
//! let ba = b.map_put(Value::from(1), Value::from(10)).unwrap();
//! assert_ne!(ab, ba);                                       // no concrete commuting
//! assert_eq!(ab.map_dom().unwrap(), ba.map_dom().unwrap()); // abstract commuting
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod multiset;
pub mod ops;
pub mod rewrite;
pub mod sort;
pub mod symbol;
pub mod term;
pub mod value;

pub use multiset::Multiset;
pub use ops::{PureError, PureResult};
pub use sort::Sort;
pub use symbol::Symbol;
pub use term::{Func, Term};
pub use value::Value;
