//! Multisets over ordered elements.
//!
//! Shared-action guards in CommCSL carry a *multiset* of the arguments with
//! which the action has been performed so far (paper, Sec. 2.5): the multiset
//! forgets the order — which is schedule-dependent and therefore potentially
//! secret — but remembers multiplicity. This module implements that container
//! with the operations the logic needs: union (`∪#`), difference (`\#`),
//! cardinality, and conversion to/from sequences.

use std::collections::btree_map::{self, BTreeMap};
use std::fmt;
use std::iter::FromIterator;

/// A finite multiset over an ordered element type.
///
/// # Example
///
/// ```
/// use commcsl_pure::Multiset;
///
/// let a: Multiset<i64> = [1, 2, 2].into_iter().collect();
/// let b: Multiset<i64> = [2, 3].into_iter().collect();
/// let u = a.union(&b);
/// assert_eq!(u.count(&2), 3);
/// assert_eq!(u.len(), 5);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Multiset<T: Ord> {
    counts: BTreeMap<T, usize>,
}

impl<T: Ord> Multiset<T> {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Multiset {
            counts: BTreeMap::new(),
        }
    }

    /// Returns the total number of elements, counting multiplicity.
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// Returns `true` when the multiset contains no elements.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Returns the multiplicity of `elem` (zero when absent).
    pub fn count(&self, elem: &T) -> usize {
        self.counts.get(elem).copied().unwrap_or(0)
    }

    /// Returns `true` when `elem` occurs at least once.
    pub fn contains(&self, elem: &T) -> bool {
        self.counts.contains_key(elem)
    }

    /// Inserts one occurrence of `elem`.
    pub fn insert(&mut self, elem: T) {
        *self.counts.entry(elem).or_insert(0) += 1;
    }

    /// Inserts `n` occurrences of `elem`.
    pub fn insert_n(&mut self, elem: T, n: usize) {
        if n > 0 {
            *self.counts.entry(elem).or_insert(0) += n;
        }
    }

    /// Removes one occurrence of `elem`; returns `true` if one was present.
    pub fn remove(&mut self, elem: &T) -> bool {
        match self.counts.get_mut(elem) {
            Some(n) if *n > 1 => {
                *n -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(elem);
                true
            }
            None => false,
        }
    }

    /// Multiset union `self ∪# other` (multiplicities add).
    pub fn union(&self, other: &Self) -> Self
    where
        T: Clone,
    {
        let mut out = self.clone();
        for (elem, n) in &other.counts {
            out.insert_n(elem.clone(), *n);
        }
        out
    }

    /// Multiset difference `self \# other` (multiplicities saturate at zero).
    pub fn difference(&self, other: &Self) -> Self
    where
        T: Clone,
    {
        let mut out = Multiset::new();
        for (elem, n) in &self.counts {
            let m = other.count(elem);
            if *n > m {
                out.insert_n(elem.clone(), *n - m);
            }
        }
        out
    }

    /// Returns `true` when every element of `self` occurs in `other` with at
    /// least the same multiplicity.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.counts.iter().all(|(e, n)| other.count(e) >= *n)
    }

    /// Iterates over `(element, multiplicity)` pairs in element order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            inner: self.counts.iter(),
        }
    }

    /// Iterates over elements, repeating each according to its multiplicity.
    pub fn iter_expanded(&self) -> impl Iterator<Item = &T> {
        self.counts
            .iter()
            .flat_map(|(e, n)| std::iter::repeat_n(e, *n))
    }

    /// Returns the distinct elements in order.
    pub fn distinct(&self) -> impl Iterator<Item = &T> {
        self.counts.keys()
    }

    /// Converts the multiset to a sorted vector, honouring multiplicity.
    pub fn to_sorted_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.iter_expanded().cloned().collect()
    }
}

/// Iterator over `(element, multiplicity)` pairs of a [`Multiset`].
pub struct Iter<'a, T> {
    inner: btree_map::Iter<'a, T, usize>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (&'a T, usize);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(e, n)| (e, *n))
    }
}

impl<T: Ord> FromIterator<T> for Multiset<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut ms = Multiset::new();
        for elem in iter {
            ms.insert(elem);
        }
        ms
    }
}

impl<T: Ord> Extend<T> for Multiset<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for elem in iter {
            self.insert(elem);
        }
    }
}

impl<T: Ord + fmt::Debug> fmt::Debug for Multiset<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{#")?;
        let mut first = true;
        for (elem, n) in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{elem:?}")?;
            if n > 1 {
                write!(f, "×{n}")?;
            }
        }
        f.write_str("#}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(elems: &[i64]) -> Multiset<i64> {
        elems.iter().copied().collect()
    }

    #[test]
    fn len_counts_multiplicity() {
        assert_eq!(ms(&[1, 1, 2]).len(), 3);
        assert!(ms(&[]).is_empty());
    }

    #[test]
    fn union_adds_multiplicities() {
        let u = ms(&[1, 2]).union(&ms(&[2, 3]));
        assert_eq!(u, ms(&[1, 2, 2, 3]));
    }

    #[test]
    fn union_is_commutative() {
        let (a, b) = (ms(&[1, 1, 4]), ms(&[4, 4, 9]));
        assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn difference_saturates() {
        let d = ms(&[1, 1, 2]).difference(&ms(&[1, 2, 3]));
        assert_eq!(d, ms(&[1]));
    }

    #[test]
    fn remove_decrements_then_deletes() {
        let mut m = ms(&[5, 5]);
        assert!(m.remove(&5));
        assert_eq!(m.count(&5), 1);
        assert!(m.remove(&5));
        assert!(!m.contains(&5));
        assert!(!m.remove(&5));
    }

    #[test]
    fn subset_respects_multiplicity() {
        assert!(ms(&[1, 2]).is_subset(&ms(&[1, 1, 2])));
        assert!(!ms(&[1, 1]).is_subset(&ms(&[1, 2])));
    }

    #[test]
    fn expanded_iteration_is_sorted() {
        assert_eq!(ms(&[3, 1, 3]).to_sorted_vec(), vec![1, 3, 3]);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        assert_eq!(ms(&[1, 2, 1]), ms(&[1, 1, 2]));
    }
}
