//! Errors raised by operations on [`Value`](crate::Value)s.

use std::error::Error;
use std::fmt;

/// Error produced by a dynamically-typed operation on pure values.
///
/// The pure value universe is untyped at the representation level; operations
/// check their operands and report a [`PureError`] on a sort mismatch,
/// division by zero, or an out-of-range access. Action functions in resource
/// specifications must be *total* (paper, App. D), so the validity checker
/// treats any `PureError` escaping an action as a specification bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PureError {
    /// An operand had the wrong sort for the operation.
    SortMismatch {
        /// The operation that was attempted.
        op: &'static str,
        /// Human-readable description of what was found.
        found: String,
    },
    /// Integer division or modulo by zero.
    DivisionByZero,
    /// A sequence index was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: i64,
        /// The length of the sequence.
        len: usize,
    },
    /// A map lookup for an absent key (when no default is supplied).
    MissingKey(String),
    /// Arithmetic overflowed the 64-bit integer domain.
    Overflow(&'static str),
}

impl fmt::Display for PureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PureError::SortMismatch { op, found } => {
                write!(f, "sort mismatch in `{op}`: {found}")
            }
            PureError::DivisionByZero => f.write_str("division by zero"),
            PureError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for sequence of length {len}")
            }
            PureError::MissingKey(k) => write!(f, "missing map key {k}"),
            PureError::Overflow(op) => write!(f, "integer overflow in `{op}`"),
        }
    }
}

impl Error for PureError {}

/// Convenience alias for results of pure operations.
pub type PureResult<T> = Result<T, PureError>;

pub(crate) fn sort_mismatch<T>(op: &'static str, found: impl fmt::Debug) -> PureResult<T> {
    Err(PureError::SortMismatch {
        op,
        found: format!("{found:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = PureError::DivisionByZero;
        assert_eq!(e.to_string(), "division by zero");
        let e = PureError::IndexOutOfRange { index: 7, len: 3 };
        assert!(e.to_string().contains("index 7"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync>() {}
        assert_error::<PureError>();
    }
}
