//! Cheap clonable identifiers for variables, actions, and fields.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply clonable identifier.
///
/// Symbols name program variables, symbolic-term variables, actions, and
/// record fields throughout the workspace. They are thin wrappers around
/// `Arc<str>` so cloning is a reference-count bump.
///
/// # Example
///
/// ```
/// use commcsl_pure::Symbol;
///
/// let x = Symbol::new("x");
/// assert_eq!(x.as_str(), "x");
/// assert_eq!(x, Symbol::from("x"));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates a symbol from anything string-like.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(Arc::from(name.as_ref()))
    }

    /// Returns the symbol's textual name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns a derived symbol with `suffix` appended.
    ///
    /// Used to build the two per-execution copies of a variable in the
    /// relational (product) encoding, e.g. `x` ↦ `x@1` / `x@2`.
    pub fn suffixed(&self, suffix: &str) -> Self {
        Symbol::new(format!("{}{}", self.0, suffix))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(s)
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Symbol::new("abc"), Symbol::new(String::from("abc")));
        assert_ne!(Symbol::new("abc"), Symbol::new("abd"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut set = BTreeSet::new();
        set.insert(Symbol::new("b"));
        set.insert(Symbol::new("a"));
        let names: Vec<_> = set.iter().map(Symbol::as_str).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn suffixed_appends() {
        assert_eq!(Symbol::new("x").suffixed("@1").as_str(), "x@1");
    }

    #[test]
    fn borrow_str_lookup_works() {
        let mut set = BTreeSet::new();
        set.insert(Symbol::new("key"));
        assert!(set.contains("key"));
    }
}
