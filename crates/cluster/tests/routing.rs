//! Consistent-hash routing tests: warm-shard affinity, shard-death
//! failover with unchanged verdicts, pool-vs-single byte-identity over
//! TCP, the remote obligation-cache tier end-to-end, and a proptest
//! pinning the ring's balance.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use commcsl_cluster::remote::RemoteCacheClient;
use commcsl_cluster::ring::HashRing;
use commcsl_cluster::router::{PoolSession, ShardPool};
use commcsl_server::client::Client;
use commcsl_server::daemon::{Server, ServerConfig};
use commcsl_server::json::Json;
use commcsl_server::protocol::{Request, VerifyItem};
use commcsl_verifier::cache::CacheConfig;
use commcsl_verifier::report::VerifierConfig;

use proptest::prelude::*;

fn front_server(cache: CacheConfig) -> Arc<Server> {
    Arc::new(Server::new(
        ServerConfig {
            threads: 2,
            cache,
            verifier: VerifierConfig::default(),
            ..Default::default()
        },
        Box::new(|src| commcsl_front::compile(src).map_err(|e| e.to_string())),
    ))
}

fn pool(shards: usize) -> ShardPool {
    ShardPool::new(
        (0..shards)
            .map(|_| front_server(CacheConfig::memory_only(64)))
            .collect(),
    )
}

/// The bundled `.csl` corpus, sorted for determinism.
fn corpus_items() -> Vec<VerifyItem> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/programs");
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .expect("examples/programs exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "csl"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|path| VerifyItem {
            name: path.display().to_string(),
            source: std::fs::read_to_string(&path).expect("readable fixture"),
        })
        .collect()
}

/// Serves one request in-process and returns the final response.
fn request(pool: &ShardPool, session: &mut PoolSession, req: &Request) -> Json {
    let mut last: Option<Json> = None;
    pool.handle_pool_request(session, req, &mut |json| {
        last = Some(json.clone());
        Ok(())
    })
    .expect("in-memory emit cannot fail");
    last.expect("request produced a response")
}

/// Drops → pool shutdown, so a panicking assertion can't hang the
/// accept-loop join.
struct StopOnDrop<'a>(&'a ShardPool);

impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.0.request_shutdown();
    }
}

#[test]
fn same_program_always_lands_on_the_same_warm_shard() {
    let pool = pool(3);
    let mut session = pool.new_session();
    let item = corpus_items().remove(0);
    let req = Request::Verify(item);

    for round in 0..4 {
        let response = request(&pool, &mut session, &req);
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let cached = response.get("cached").and_then(Json::as_bool);
        assert_eq!(cached, Some(round > 0), "first round cold, rest warm");
    }

    // The warm-hit counters prove affinity: one shard saw all four
    // requests (1 miss + 3 memory hits), the others saw nothing.
    let status = pool.status();
    assert_eq!(status.shards, 3);
    assert_eq!(status.per_shard.len(), 3);
    let busy: Vec<_> = status
        .per_shard
        .iter()
        .zip(pool.shards())
        .filter(|(_, shard)| shard.status().programs > 0)
        .collect();
    assert_eq!(busy.len(), 1, "exactly one shard owns the program");
    let owner = busy[0].1.status();
    assert_eq!(owner.programs, 4);
    assert_eq!(owner.misses, 1);
    assert_eq!(owner.memory_hits, 3);
    assert_eq!(status.memory_hits, 3, "aggregate view agrees");
    assert_eq!(status.misses, 1);
}

#[test]
fn shard_death_reroutes_without_verdict_changes() {
    let pool = pool(3);
    let mut session = pool.new_session();
    let items: Vec<VerifyItem> = corpus_items().into_iter().take(6).collect();

    // Cold pass: record each report and its owning shard.
    let mut cold: Vec<(String, String)> = Vec::new();
    for item in &items {
        let response =
            request(&pool, &mut session, &Request::Verify(item.clone()));
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        cold.push((
            response.get("key").and_then(Json::as_str).unwrap().to_owned(),
            response.get("report").unwrap().to_string(),
        ));
    }
    let owned_before: Vec<u64> =
        pool.shards().iter().map(|s| s.status().programs).collect();
    let victim = owned_before
        .iter()
        .position(|&n| n > 0)
        .expect("some shard verified something");

    pool.kill_shard(victim);
    assert_eq!(pool.status().shards, 2);

    // Every program re-verifies (or re-warms) with byte-identical key
    // and report JSON; the dead shard receives nothing new.
    let mut session = pool.new_session();
    for (item, (key, report)) in items.iter().zip(&cold) {
        let response =
            request(&pool, &mut session, &Request::Verify(item.clone()));
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(response.get("key").and_then(Json::as_str), Some(key.as_str()));
        assert_eq!(&response.get("report").unwrap().to_string(), report);
    }
    assert_eq!(
        pool.shards()[victim].status().programs,
        owned_before[victim],
        "dead shards receive no routed work"
    );
}

#[test]
fn pool_over_tcp_is_byte_identical_to_a_single_daemon() {
    let single = front_server(CacheConfig::memory_only(64));
    let pool = pool(3);
    let single_listener = Server::bind_tcp("127.0.0.1:0").unwrap();
    let pool_listener = Server::bind_tcp("127.0.0.1:0").unwrap();
    let single_addr = single_listener.local_addr().unwrap().to_string();
    let pool_addr = pool_listener.local_addr().unwrap().to_string();

    thread::scope(|scope| {
        let _stop_pool = StopOnDrop(&pool);
        let single_ref = &single;
        scope.spawn(move || single_ref.serve_tcp(&single_listener));
        scope.spawn(|| pool.serve_tcp(&pool_listener));

        let mut a = Client::connect_tcp_retry(&single_addr, Duration::from_secs(5))
            .expect("single daemon comes up");
        let mut b = Client::connect_tcp_retry(&pool_addr, Duration::from_secs(5))
            .expect("pool comes up");
        let items: Vec<VerifyItem> =
            corpus_items().into_iter().take(6).collect();

        for pass in 0..2 {
            let from_single =
                a.verify_batch(items.clone()).expect("single batch");
            let from_pool = b.verify_batch(items.clone()).expect("pool batch");
            for (s, p) in from_single.iter().zip(&from_pool) {
                let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
                assert_eq!(s.key, p.key, "pass {pass}");
                assert_eq!(
                    s.report.to_json(),
                    p.report.to_json(),
                    "report JSON must be byte-identical (pass {pass})"
                );
            }
        }

        // The pool's status reports its endpoint and shard table.
        let status = b.status().expect("pool status");
        assert_eq!(status.transport, "tcp");
        assert_eq!(status.addr, pool_addr);
        assert_eq!(status.shards, 3);
        assert_eq!(status.per_shard.len(), 3);

        single.request_shutdown();
    });
}

#[test]
fn remote_cache_tier_shares_obligations_across_daemons() {
    // Daemon A: serves the corpus cold over TCP, filling its
    // obligation store.
    let a = front_server(CacheConfig::memory_only(256));
    let listener = Server::bind_tcp("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    thread::scope(|scope| {
        let a_ref = &a;
        scope.spawn(move || a_ref.serve_tcp(&listener));
        let mut warm =
            Client::connect_tcp_retry(&addr, Duration::from_secs(5))
                .expect("daemon A comes up");
        let items: Vec<VerifyItem> =
            corpus_items().into_iter().take(6).collect();
        let from_a = warm.verify_batch(items.clone()).expect("A verifies");
        assert!(a.status().obligation_misses > 0, "A filled its store");

        // Daemon B: fresh caches, A chained as its remote tier. Its
        // verification consults A for every obligation it misses
        // locally — remote hits replace solver work, verdicts stay
        // byte-identical.
        let b = front_server(CacheConfig::memory_only(256));
        b.set_remote_cache(Box::new(RemoteCacheClient::new(addr.clone())));
        let (response, _) = b.handle_request(&Request::VerifyBatch {
            items: items.clone(),
            fail_fast: false,
        });
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let results = response.get("results").and_then(Json::as_arr).unwrap();
        for (result, outcome) in results.iter().zip(&from_a) {
            let a_ok = outcome.as_ref().unwrap();
            assert_eq!(
                result.get("report").unwrap().to_string(),
                a_ok.report.to_json(),
                "remote-hit path must reproduce A's bytes"
            );
        }
        let status = b.status();
        assert_eq!(status.remote, format!("tcp://{addr}"));
        assert!(
            status.remote_hits > 0,
            "B served obligations from A: {status:?}"
        );
        assert!(
            status.remote_hits
                >= 9 * (status.remote_hits + status.remote_misses) / 10,
            "a fully warm remote yields >=90% remote hits: {status:?}"
        );

        a.request_shutdown();
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Ring balance: with >=8 shards at the default virtual-node count,
    /// no shard's share of a large key population exceeds 2x uniform.
    #[test]
    fn ring_distribution_stays_within_2x_of_uniform(
        shards in 8usize..13,
        seed in 0u64..1000,
    ) {
        let ring = HashRing::new(shards, 0);
        let keys: u64 = 4096;
        let mut counts = vec![0u64; shards];
        for i in 0..keys {
            // Spread the key population across runs without Date/rand:
            // the seed offsets the key stream.
            let key = u128::from(seed) << 64 | u128::from(i);
            counts[ring.route(key).unwrap()] += 1;
        }
        let uniform = keys as f64 / shards as f64;
        for (shard, &n) in counts.iter().enumerate() {
            prop_assert!(
                (n as f64) <= 2.0 * uniform,
                "shard {shard} owns {n} of {keys} keys (uniform {uniform:.0})"
            );
        }
    }
}
