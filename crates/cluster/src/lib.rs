//! `commcsl-cluster` — the distribution layer over the verification
//! daemon.
//!
//! CommCSL verification is a pure function of content (program, specs,
//! budgets), which is what makes it *distributable*: any shard, any
//! machine, any time produces the same bytes. This crate layers three
//! pieces on the `commcsl-server` seams:
//!
//! * [`ring`] — a deterministic consistent-hash ring with virtual
//!   nodes: content keys map to shards identically in every process,
//!   and a shard's death re-routes only its own key range;
//! * [`router`] — the [`ShardPool`](router::ShardPool): N
//!   shared-nothing [`Server`](commcsl_server::Server) shards behind
//!   one TCP endpoint, requests routed on program hash (v1) or
//!   document identity (v2) so content always lands on its warm shard.
//!   Responses stay byte-identical to a single-process daemon;
//! * [`remote`] — the [`RemoteCacheClient`](remote::RemoteCacheClient):
//!   a `cache_get`/`cache_put` protocol client that slots in as the
//!   third tier of the obligation cache chain (memory → disk →
//!   remote), sccache-style, so many daemons and CI runners share one
//!   warm cache. Entries are self-validating and never-stale: the
//!   local cache re-validates everything it fetches.
//!
//! The transport itself (TCP listeners, the `Transport` trait, framing)
//! lives in `commcsl-server`; this crate only composes it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod remote;
pub mod ring;
pub mod router;

pub use remote::RemoteCacheClient;
pub use ring::HashRing;
pub use router::{PoolSession, ShardPool};
