//! Consistent-hash ring with virtual nodes.
//!
//! The router places every shard at [`HashRing::DEFAULT_VNODES`] points
//! on a `u64` ring (each point derived from the deterministic
//! [`StableHasher`], so placement is identical across processes and
//! runs) and routes a key to the first live point clockwise from the
//! key's own position. Virtual nodes smooth the per-shard share of the
//! key space; killing a shard reassigns only the keys that pointed at
//! it — every other key keeps its warm shard.

use std::collections::BTreeMap;

use commcsl_verifier::hash::StableHasher;

/// A consistent-hash ring mapping `u128` content keys to shard indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring position → shard index. BTreeMap gives the clockwise walk.
    points: BTreeMap<u64, usize>,
    /// Liveness per shard; dead shards stay on the ring but are skipped,
    /// so reviving one restores its exact old key range.
    alive: Vec<bool>,
}

/// Folds a 128-bit stable hash onto the 64-bit ring, then avalanches.
/// The finalizer matters: FNV's multiply-xor mixes short, similar
/// inputs (shard/replica indices differing in a few bits) too weakly in
/// the high bits, which clusters vnode points and skews shard shares
/// far past 2x uniform. The splitmix64-style finalizer disperses them.
fn fold(h: u128) -> u64 {
    let mut x = (h >> 64) as u64 ^ h as u64;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

impl HashRing {
    /// Virtual nodes per shard. 128 keeps the worst shard's share of
    /// the key space well under 2x uniform for any shard count the pool
    /// flag accepts (pinned by a proptest).
    pub const DEFAULT_VNODES: usize = 128;

    /// A ring over `shards` shards with `vnodes` virtual nodes each
    /// (0 = [`HashRing::DEFAULT_VNODES`]), all alive.
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        let vnodes = if vnodes == 0 { Self::DEFAULT_VNODES } else { vnodes };
        let mut points = BTreeMap::new();
        for shard in 0..shards {
            for replica in 0..vnodes {
                let mut h = StableHasher::new();
                h.tag("cluster.ring.vnode");
                h.write_u32(shard as u32);
                h.write_u32(replica as u32);
                // Collisions (vanishingly rare) drop one replica of the
                // later shard — harmless for balance, and deterministic.
                points.entry(fold(h.finish().0)).or_insert(shard);
            }
        }
        HashRing {
            points,
            alive: vec![true; shards],
        }
    }

    /// The ring position of a content key (keys get their own hash pass
    /// so sequential keys spread uniformly).
    fn key_point(key: u128) -> u64 {
        let mut h = StableHasher::new();
        h.tag("cluster.ring.key");
        h.write_u64(key as u64);
        h.write_u64((key >> 64) as u64);
        fold(h.finish().0)
    }

    /// Routes a key: the first *live* shard clockwise from the key's
    /// position (wrapping). `None` when every shard is dead.
    pub fn route(&self, key: u128) -> Option<usize> {
        let point = Self::key_point(key);
        self.points
            .range(point..)
            .chain(self.points.range(..point))
            .map(|(_, &shard)| shard)
            .find(|&shard| self.alive[shard])
    }

    /// Marks a shard dead: its keys re-route to their clockwise
    /// successors; all other keys keep their shard.
    pub fn kill(&mut self, shard: usize) {
        if shard < self.alive.len() {
            self.alive[shard] = false;
        }
    }

    /// Whether `shard` is still routable.
    pub fn is_alive(&self, shard: usize) -> bool {
        self.alive.get(shard).copied().unwrap_or(false)
    }

    /// Live shards remaining.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Total shards (live or dead).
    pub fn shard_count(&self) -> usize {
        self.alive.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::new(4, 0);
        for key in 0..1000u128 {
            let shard = ring.route(key).unwrap();
            assert!(shard < 4);
            assert_eq!(ring.route(key), Some(shard), "stable across calls");
        }
        let again = HashRing::new(4, 0);
        assert_eq!(again.route(42), ring.route(42), "stable across rings");
    }

    #[test]
    fn killing_a_shard_moves_only_its_keys() {
        let mut ring = HashRing::new(4, 0);
        let before: Vec<usize> =
            (0..2000u128).map(|k| ring.route(k).unwrap()).collect();
        ring.kill(2);
        assert_eq!(ring.alive_count(), 3);
        for (k, &was) in before.iter().enumerate() {
            let now = ring.route(k as u128).unwrap();
            assert_ne!(now, 2, "dead shards receive nothing");
            if was != 2 {
                assert_eq!(now, was, "surviving shards keep their keys");
            }
        }
    }

    #[test]
    fn all_dead_routes_nowhere() {
        let mut ring = HashRing::new(2, 8);
        ring.kill(0);
        ring.kill(1);
        assert_eq!(ring.route(7), None);
    }
}
