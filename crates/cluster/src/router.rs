//! The shard pool: N shared-nothing verifier workers behind one
//! consistent-hash router.
//!
//! Each shard is a full [`Server`] with its own verdict/obligation
//! cache and per-session [`Workspace`]s — shards share *nothing*, so a
//! pool is exactly N independent daemons plus deterministic routing:
//!
//! * v1 requests (`verify`, `verify_batch`, `lint`) route on the
//!   **program content hash**, so a given program always lands on the
//!   shard whose caches are warm for it;
//! * v2 workspace ops (`open`/`update`/`close`) route on **document
//!   identity**, so a document's incremental state stays on one shard
//!   across revisions;
//! * `cache_get` asks the content-owner shard first and falls back to
//!   scattering across the remaining live shards; `cache_put` admits on
//!   the owner only.
//!
//! The router is itself a protocol endpoint: it assigns request ids,
//! stamps responses, and keeps its own latency histograms and event log
//! (`status`/`metrics` aggregate the shards; `histograms`/`logs` are
//! the router's own view of the traffic). Responses are byte-identical
//! to a single-process daemon's — routing must never be observable in
//! the payload, only in the latency.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use commcsl_server::daemon::{
    accept_loop, for_each_ndjson_line, Server, Session, Transport,
};
use commcsl_server::json::Json;
use commcsl_server::protocol::{
    error_json, histograms_response_json, logs_response_json,
    metrics_response_json, with_request_id, CacheTier, LogsPage, Request,
    StatusInfo, VerifyItem,
};
use commcsl_telemetry::{EventLog, Histogram, MetricsSnapshot};
use commcsl_verifier::hash::StableHasher;

use crate::ring::HashRing;

/// The content key a request routes on.
fn route_key(tag: &str, parts: &[&str]) -> u128 {
    let mut h = StableHasher::new();
    h.tag(tag);
    for part in parts {
        h.write_str(part);
    }
    h.finish().0
}

/// A pool of shared-nothing verifier shards behind one endpoint.
pub struct ShardPool {
    shards: Vec<Arc<Server>>,
    ring: RwLock<HashRing>,
    started: Instant,
    requests: AtomicU64,
    next_request_id: AtomicU64,
    bytes_streamed: AtomicU64,
    decode_errors: AtomicU64,
    slow_requests: AtomicU64,
    slow_request_ns: u64,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    events: EventLog,
    endpoint: Mutex<(String, String)>,
    shutdown: AtomicBool,
}

/// One client connection's state across the pool: a [`Session`] per
/// shard (documents live on their routed shard; the others stay empty)
/// plus the session-wide negotiation the router replays onto every
/// shard session so guards and event streaming behave identically to a
/// single daemon.
pub struct PoolSession {
    sessions: Vec<Session>,
}

impl ShardPool {
    /// Builds a pool over pre-constructed shards (each its own
    /// [`Server`] — typically with per-shard cache directories).
    pub fn new(shards: Vec<Arc<Server>>) -> ShardPool {
        let count = shards.len();
        ShardPool {
            shards,
            ring: RwLock::new(HashRing::new(count, 0)),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            next_request_id: AtomicU64::new(0),
            bytes_streamed: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            slow_requests: AtomicU64::new(0),
            slow_request_ns: 250 * 1_000_000,
            histograms: Mutex::new(BTreeMap::new()),
            events: EventLog::default(),
            endpoint: Mutex::new((String::new(), String::new())),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The shards, for tests and per-shard inspection.
    pub fn shards(&self) -> &[Arc<Server>] {
        &self.shards
    }

    /// A fresh connection's pool session.
    pub fn new_session(&self) -> PoolSession {
        PoolSession {
            sessions: self.shards.iter().map(|s| s.new_session()).collect(),
        }
    }

    /// `true` once a `shutdown` request was served or a shard/router
    /// fatal error wound the pool down.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Winds down the router and every shard.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.request_shutdown();
        }
    }

    /// Marks a shard dead: the ring re-routes its key range to the
    /// clockwise successors and the shard itself winds down. Requests
    /// in flight on other shards are unaffected; re-sent programs
    /// re-verify (or re-warm) on their new owner with identical
    /// verdicts — content addressing makes failover invisible.
    pub fn kill_shard(&self, shard: usize) {
        self.ring
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .kill(shard);
        if let Some(s) = self.shards.get(shard) {
            s.request_shutdown();
        }
    }

    /// Routes a content key to its live owner shard.
    fn route(&self, key: u128) -> Option<usize> {
        self.ring
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .route(key)
    }

    /// The live shards, owner (if any) first — the `cache_get` probe
    /// order.
    fn probe_order(&self, key: u128) -> Vec<usize> {
        let ring = self
            .ring
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let owner = ring.route(key);
        let mut order: Vec<usize> = owner.into_iter().collect();
        for shard in 0..self.shards.len() {
            if ring.is_alive(shard) && Some(shard) != owner {
                order.push(shard);
            }
        }
        order
    }

    /// The shard a request routes to, by op semantics. `None` for ops
    /// the router answers itself (or when every shard is dead).
    fn route_request(&self, request: &Request) -> Option<usize> {
        let key = match request {
            Request::Verify(VerifyItem { source, .. })
            | Request::Lint(VerifyItem { source, .. }) => {
                route_key("cluster.route.program", &[source])
            }
            // The batch routes as a unit (fail-fast ordering is batch
            // state); its key folds every member so identical batches
            // stay warm.
            Request::VerifyBatch { items, .. } => {
                let sources: Vec<&str> =
                    items.iter().map(|i| i.source.as_str()).collect();
                route_key("cluster.route.batch", &sources)
            }
            Request::Open { doc, .. }
            | Request::Update { doc, .. }
            | Request::Close { doc } => {
                route_key("cluster.route.doc", &[doc])
            }
            Request::CachePut { key, .. } => {
                route_key("cluster.route.cache", &[key])
            }
            _ => return None,
        };
        self.route(key)
    }

    /// Serves one protocol request against the pool. Mirrors
    /// [`Server::handle_session_request`]: emits one or more response
    /// lines, returns whether the endpoint should shut down after.
    pub fn handle_pool_request(
        &self,
        session: &mut PoolSession,
        request: &Request,
        emit: &mut dyn FnMut(&Json) -> io::Result<()>,
    ) -> io::Result<bool> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match request {
            // Session-wide negotiation: replayed onto *every* shard
            // session so v1 guards and event subscriptions behave
            // identically to a single daemon; the client sees one
            // response (any shard's — they are byte-identical).
            Request::Hello { .. } | Request::Subscribe { .. } => {
                self.fanout_session_op(session, request, emit)
            }
            Request::Status => {
                emit(&self.status().to_json())?;
                Ok(false)
            }
            Request::Metrics => {
                if let Some(err) = self.v1_guard(session, "metrics") {
                    emit(&err)?;
                    return Ok(false);
                }
                emit(&metrics_response_json(&self.metrics()))?;
                Ok(false)
            }
            Request::Histograms => {
                if let Some(err) = self.v1_guard(session, "histograms") {
                    emit(&err)?;
                    return Ok(false);
                }
                emit(&histograms_response_json(&self.histogram_snapshot()))?;
                Ok(false)
            }
            Request::Logs { since } => {
                if let Some(err) = self.v1_guard(session, "logs") {
                    emit(&err)?;
                    return Ok(false);
                }
                let page = LogsPage {
                    events: self.events.since(since.unwrap_or(0)),
                    dropped: self.events.dropped(),
                    last_seq: self.events.last_seq(),
                };
                emit(&logs_response_json(&page))?;
                Ok(false)
            }
            Request::Shutdown => {
                self.request_shutdown();
                emit(&Json::obj([
                    ("ok", Json::Bool(true)),
                    ("shutting_down", Json::Bool(true)),
                ]))?;
                Ok(true)
            }
            Request::CacheGet { tier, key } => {
                self.serve_pool_cache_get(session, *tier, key, emit)?;
                Ok(false)
            }
            // Everything else routes to exactly one shard.
            _ => match self.route_request(request) {
                Some(shard) => self.shards[shard].handle_session_request(
                    &mut session.sessions[shard],
                    request,
                    emit,
                ),
                None => {
                    emit(&error_json("no live shards"))?;
                    Ok(false)
                }
            },
        }
    }

    /// Applies a session op (`hello`/`subscribe`) to every shard
    /// session; the first shard's response goes to the client, the
    /// replays are sunk.
    fn fanout_session_op(
        &self,
        session: &mut PoolSession,
        request: &Request,
        emit: &mut dyn FnMut(&Json) -> io::Result<()>,
    ) -> io::Result<bool> {
        let mut stop = false;
        for (i, (shard, shard_session)) in self
            .shards
            .iter()
            .zip(session.sessions.iter_mut())
            .enumerate()
        {
            // Session ops run locally on each shard — no I/O, no
            // verification. Each shard also counts the request; status
            // reports the *router's* request counter, so the client's
            // view stays single-daemon-identical.
            let mut sink = |json: &Json| -> io::Result<()> {
                if i == 0 {
                    emit(json)
                } else {
                    Ok(())
                }
            };
            stop |= shard.handle_session_request(
                shard_session,
                request,
                &mut sink,
            )?;
        }
        Ok(stop)
    }

    /// `cache_get` probes the content owner first, then the remaining
    /// live shards (shards are shared-nothing; the entry may have been
    /// verified anywhere before this pool existed). First hit wins; the
    /// last miss (or a key error) answers otherwise.
    fn serve_pool_cache_get(
        &self,
        session: &mut PoolSession,
        tier: CacheTier,
        key: &str,
        emit: &mut dyn FnMut(&Json) -> io::Result<()>,
    ) -> io::Result<()> {
        let order = self.probe_order(route_key("cluster.route.cache", &[key]));
        if order.is_empty() {
            return emit(&error_json("no live shards"));
        }
        let request = Request::CacheGet {
            tier,
            key: key.to_owned(),
        };
        let mut last: Option<Json> = None;
        for shard in order {
            let mut captured: Option<Json> = None;
            self.shards[shard].handle_session_request(
                &mut session.sessions[shard],
                &request,
                &mut |json| {
                    captured = Some(json.clone());
                    Ok(())
                },
            )?;
            let response = captured
                .unwrap_or_else(|| error_json("cache_get produced no response"));
            if response.get("hit").and_then(Json::as_bool) == Some(true) {
                return emit(&response);
            }
            last = Some(response);
        }
        emit(&last.expect("probe order was non-empty"))
    }

    /// The router-level v2 guard, identical in wording to the shard
    /// one. Pool sessions negotiate on shard session 0 (hello fans out,
    /// so every shard agrees).
    fn v1_guard(&self, session: &PoolSession, op: &str) -> Option<Json> {
        let protocol = session
            .sessions
            .first()
            .map(|s| s.protocol())
            .unwrap_or(1);
        (protocol < 2).then(|| {
            error_json(&format!(
                "op `{op}` requires protocol v2 (session negotiated v{protocol})"
            ))
        })
    }

    /// Aggregated pool statistics: router-level request accounting,
    /// shard counters summed, plus the per-shard table.
    pub fn status(&self) -> StatusInfo {
        let ring = self
            .ring
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let shard_statuses: Vec<StatusInfo> =
            self.shards.iter().map(|s| s.status()).collect();
        let (transport, addr) = self
            .endpoint
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let sum = |f: &dyn Fn(&StatusInfo) -> u64| -> u64 {
            shard_statuses.iter().map(f).sum()
        };
        let mut info = StatusInfo {
            version: env!("CARGO_PKG_VERSION").to_owned(),
            uptime_ms: self.started.elapsed().as_secs_f64() * 1000.0,
            requests: self.requests.load(Ordering::Relaxed),
            ops: self
                .histogram_snapshot()
                .iter()
                .map(|(op, h)| (op.clone(), h.count()))
                .collect(),
            programs: sum(&|s| s.programs),
            documents: sum(&|s| s.documents),
            memory_hits: sum(&|s| s.memory_hits),
            disk_hits: sum(&|s| s.disk_hits),
            misses: sum(&|s| s.misses),
            evictions: sum(&|s| s.evictions),
            memory_entries: sum(&|s| s.memory_entries),
            obligation_hits: sum(&|s| s.obligation_hits),
            obligation_misses: sum(&|s| s.obligation_misses),
            statically_proven: sum(&|s| s.statically_proven),
            solver_checked: sum(&|s| s.solver_checked),
            bytes_streamed: self.bytes_streamed.load(Ordering::Relaxed),
            transport,
            addr,
            shards: ring.alive_count() as u64,
            remote_hits: sum(&|s| s.remote_hits),
            remote_misses: sum(&|s| s.remote_misses),
            remote_stores: sum(&|s| s.remote_stores),
            per_shard: shard_statuses
                .iter()
                .enumerate()
                .map(|(i, s)| commcsl_server::protocol::ShardStatus {
                    shard: i as u64,
                    alive: ring.is_alive(i),
                    documents: s.documents,
                    programs: s.programs,
                    obligation_hits: s.obligation_hits,
                    obligation_misses: s.obligation_misses,
                })
                .collect(),
            ..Default::default()
        };
        if let Some(first) = shard_statuses.first() {
            info.format_version = first.format_version;
            info.protocol_version = first.protocol_version;
            info.backend = first.backend.clone();
            info.started_at_unix_ms = first.started_at_unix_ms;
            info.threads = first.threads;
            info.remote = first.remote.clone();
        }
        info
    }

    /// Pool-wide counters: shard snapshots summed name-wise, with the
    /// router's own request/byte accounting taking over the `daemon.*`
    /// traffic counters (shard-side ones would double-count fan-outs).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut summed: BTreeMap<String, u64> = BTreeMap::new();
        for shard in &self.shards {
            for (name, value) in &shard.metrics().counters {
                *summed.entry(name.clone()).or_insert(0) += *value;
            }
        }
        summed.insert(
            "daemon.requests".into(),
            self.requests.load(Ordering::Relaxed),
        );
        summed.insert(
            "daemon.bytes_streamed".into(),
            self.bytes_streamed.load(Ordering::Relaxed),
        );
        summed.insert(
            "daemon.request.decode_error".into(),
            self.decode_errors.load(Ordering::Relaxed),
        );
        summed.insert(
            "daemon.requests.slow".into(),
            self.slow_requests.load(Ordering::Relaxed),
        );
        summed.insert("daemon.events.dropped".into(), self.events.dropped());
        summed.insert(
            "cluster.shards".into(),
            self.ring
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .alive_count() as u64,
        );
        MetricsSnapshot::from_pairs(summed)
    }

    /// The router's per-op latency histograms (nanoseconds), sorted by
    /// op name.
    pub fn histogram_snapshot(&self) -> Vec<(String, Histogram)> {
        let hists = self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        hists.iter().map(|(op, h)| (op.clone(), h.clone())).collect()
    }

    /// The router's request event log.
    pub fn event_log(&self) -> &EventLog {
        &self.events
    }

    fn assign_request_id(&self) -> String {
        format!("r{}", self.next_request_id.fetch_add(1, Ordering::Relaxed) + 1)
    }

    fn observe_request(&self, op: &str, request_id: &str, dur_ns: u64, ok: bool) {
        let detail = {
            let mut hists = self
                .histograms
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let hist = hists.entry(op.to_owned()).or_default();
            hist.record(dur_ns);
            if dur_ns >= self.slow_request_ns {
                self.slow_requests.fetch_add(1, Ordering::Relaxed);
                format!(
                    "slow: {:.3} ms over {} ms threshold (op p50 {:.3} ms, p99 {:.3} ms, n {})",
                    dur_ns as f64 / 1e6,
                    self.slow_request_ns / 1_000_000,
                    hist.quantile(0.5) as f64 / 1e6,
                    hist.quantile(0.99) as f64 / 1e6,
                    hist.count(),
                )
            } else {
                String::new()
            }
        };
        let outcome = if ok { "ok" } else { "error" };
        self.events.push(op, request_id, dur_ns, outcome, &detail);
    }

    /// Serves one protocol line: decode, assign/extract the request id,
    /// route, stamp every emitted line, record latency. The wire twin
    /// of [`Server::handle_session_line`].
    pub fn handle_pool_line(
        &self,
        session: &mut PoolSession,
        line: &str,
        emit: &mut dyn FnMut(&Json) -> io::Result<()>,
    ) -> io::Result<bool> {
        match Request::decode_with_request_id(line.trim()) {
            Ok((request, client_id)) => {
                let request_id =
                    client_id.unwrap_or_else(|| self.assign_request_id());
                let op = request.op_name();
                let started = Instant::now();
                let mut outcome_ok = true;
                let result = {
                    let mut stamped = |json: &Json| -> io::Result<()> {
                        if let Some(ok) = json.get("ok").and_then(Json::as_bool)
                        {
                            outcome_ok = ok;
                        }
                        emit(&with_request_id(json, &request_id))
                    };
                    self.handle_pool_request(session, &request, &mut stamped)
                };
                let dur_ns = u64::try_from(started.elapsed().as_nanos())
                    .unwrap_or(u64::MAX);
                self.observe_request(op, &request_id, dur_ns, outcome_ok);
                result
            }
            Err(e) => {
                self.requests.fetch_add(1, Ordering::Relaxed);
                let request_id = self.assign_request_id();
                let message = format!("bad request: {e}");
                self.decode_errors.fetch_add(1, Ordering::Relaxed);
                self.events
                    .push("decode", &request_id, 0, "decode_error", &message);
                emit(&with_request_id(&error_json(&message), &request_id))?;
                Ok(false)
            }
        }
    }

    /// Runs one NDJSON session over a reader/writer pair until EOF or
    /// shutdown (the per-connection loop of [`ShardPool::serve_tcp`]).
    pub fn serve_stream(
        &self,
        reader: impl io::Read,
        mut writer: impl Write,
    ) -> io::Result<()> {
        let mut session = self.new_session();
        let result =
            for_each_ndjson_line(reader, &|| self.shutdown_requested(), |line| {
                let mut emit = |json: &Json| -> io::Result<()> {
                    let rendered = json.to_string();
                    writeln!(writer, "{rendered}")?;
                    writer.flush()?;
                    self.bytes_streamed
                        .fetch_add(rendered.len() as u64 + 1, Ordering::Relaxed);
                    Ok(())
                };
                let stop = match std::str::from_utf8(line) {
                    Ok(text) if text.trim().is_empty() => false,
                    Ok(text) => {
                        self.handle_pool_line(&mut session, text, &mut emit)?
                    }
                    Err(_) => {
                        let request_id = self.assign_request_id();
                        let message = "bad request: line is not UTF-8";
                        self.decode_errors.fetch_add(1, Ordering::Relaxed);
                        self.events.push(
                            "decode",
                            &request_id,
                            0,
                            "decode_error",
                            message,
                        );
                        emit(&with_request_id(&error_json(message), &request_id))?;
                        false
                    }
                };
                Ok(stop || self.shutdown_requested())
            });
        self.release_session(&session);
        result
    }

    /// Releases a finished connection's documents from each shard's
    /// open-documents gauge.
    fn release_session(&self, session: &PoolSession) {
        for (shard, shard_session) in
            self.shards.iter().zip(session.sessions.iter())
        {
            shard.release_session(shard_session);
        }
    }

    /// Serves connections on a bound TCP listener until shutdown
    /// (build one with [`Server::bind_tcp`]).
    pub fn serve_tcp(&self, listener: &TcpListener) -> io::Result<()> {
        let (transport, addr) = Transport::endpoint(listener);
        {
            let mut endpoint = self
                .endpoint
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *endpoint = (transport, addr);
        }
        accept_loop(
            listener,
            &|| self.shutdown_requested(),
            &|| self.request_shutdown(),
            &|stream| {
                if let Ok((reader, writer)) =
                    <TcpListener as Transport>::split(stream)
                {
                    let _ = self.serve_stream(reader, writer);
                }
            },
        )
    }
}
