//! The remote obligation-cache tier, as a protocol client.
//!
//! [`RemoteCacheClient`] plugs a *remote daemon* (plain or sharded —
//! the wire is identical) in behind a local [`VerdictCache`]'s memory
//! and disk tiers via [`RemoteObligationTier`]. The transport is the
//! same NDJSON protocol, ops `cache_get`/`cache_put`, exchanging the
//! self-validating entry text — the local cache re-validates every
//! fetched entry against the requested key and `HASH_FORMAT_VERSION`,
//! so this client stays deliberately dumb: no parsing, no versioning,
//! no trust.
//!
//! Failure policy is fail-open, as the trait demands: fetches run under
//! the cache lock on the verification hot path, so the client uses a
//! short response timeout, drops its connection on any I/O error
//! (reconnecting lazily on the next call), and gives up for good after
//! a run of consecutive connect failures — an unplugged remote must
//! cost a few milliseconds once, not per lookup.
//!
//! [`VerdictCache`]: commcsl_verifier::cache::VerdictCache

use std::time::Duration;

use commcsl_server::client::Client;
use commcsl_server::protocol::CacheTier;
use commcsl_verifier::cache::RemoteObligationTier;
use commcsl_verifier::obligation::ObligationKey;

/// Consecutive failed connect attempts before the tier wires itself
/// off.
const MAX_CONNECT_FAILURES: u32 = 3;

/// Response timeout for remote cache calls — short, because they run
/// under the verdict-cache lock.
const REMOTE_TIMEOUT: Duration = Duration::from_secs(2);

/// A [`RemoteObligationTier`] speaking `cache_get`/`cache_put` to a
/// daemon over TCP.
pub struct RemoteCacheClient {
    addr: String,
    client: Option<Client>,
    connect_failures: u32,
}

impl RemoteCacheClient {
    /// A tier pointed at `host:port` (nothing is contacted until the
    /// first lookup).
    pub fn new(addr: impl Into<String>) -> RemoteCacheClient {
        RemoteCacheClient {
            addr: addr.into(),
            client: None,
            connect_failures: 0,
        }
    }

    /// The live connection, dialing lazily. `None` once the failure
    /// budget is spent.
    fn client(&mut self) -> Option<&mut Client> {
        if self.client.is_none() {
            if self.connect_failures >= MAX_CONNECT_FAILURES {
                return None;
            }
            match Client::connect_tcp_with_timeout(&self.addr, REMOTE_TIMEOUT) {
                Ok(client) => {
                    self.client = Some(client);
                    self.connect_failures = 0;
                }
                Err(_) => {
                    self.connect_failures += 1;
                    return None;
                }
            }
        }
        self.client.as_mut()
    }

    /// Drops the connection after an I/O error; the next call redials.
    fn disconnect(&mut self) {
        self.client = None;
    }
}

impl RemoteObligationTier for RemoteCacheClient {
    fn fetch(&mut self, key: ObligationKey) -> Option<String> {
        let key = key.to_string();
        let result = self
            .client()?
            .cache_get(CacheTier::Obligation, &key);
        match result {
            Ok(entry) => entry,
            Err(_) => {
                self.disconnect();
                None
            }
        }
    }

    fn publish(&mut self, key: ObligationKey, entry: &str) {
        let key = key.to_string();
        let result = match self.client() {
            Some(client) => client.cache_put(CacheTier::Obligation, &key, entry),
            None => return,
        };
        if result.is_err() {
            self.disconnect();
        }
    }

    fn endpoint(&self) -> String {
        format!("tcp://{}", self.addr)
    }
}
