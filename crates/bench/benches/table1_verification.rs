//! Criterion bench: verification time per Table 1 example (the paper's
//! `T` column; see EXPERIMENTS.md for the shape comparison).

use criterion::{criterion_group, criterion_main, Criterion};

use commcsl::fixtures;
use commcsl::verifier::{verify, VerifierConfig};

fn bench_table1(c: &mut Criterion) {
    let config = VerifierConfig::default();
    let mut group = c.benchmark_group("table1_verification");
    group.sample_size(10);
    for fixture in fixtures::all() {
        group.bench_function(fixture.name, |b| {
            b.iter(|| {
                let report = verify(&fixture.program, &config);
                assert!(report.verified(), "{}", fixture.name);
                report
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
