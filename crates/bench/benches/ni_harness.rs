//! Ablation: cost of the empirical non-interference harness per fixture
//! (interpreting the program under the scheduler battery for a pair of
//! high inputs).

use criterion::{criterion_group, criterion_main, Criterion};

use commcsl::fixtures;
use commcsl::lang::nicheck::{check_non_interference, NiConfig};

fn bench_ni(c: &mut Criterion) {
    let config = NiConfig {
        random_seeds: 2,
        fuel: 100_000,
    };
    let mut group = c.benchmark_group("ni_harness");
    group.sample_size(10);
    for fixture in fixtures::all() {
        let Some(ni) = fixture.ni else { continue };
        group.bench_function(fixture.name, |b| {
            b.iter(|| {
                let report = check_non_interference(
                    &ni.program,
                    &ni.low_inputs,
                    &ni.high_inputs,
                    &ni.low_outputs,
                    &config,
                );
                assert!(report.holds());
                report
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ni);
criterion_main!(benches);
