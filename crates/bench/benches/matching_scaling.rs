//! Ablation: cost of the `PRE_s` bijection matching (Def. 3.2) as the
//! argument multisets grow. The key-equality compatibility graph makes
//! this the worst-case-quadratic part of retroactive checking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use commcsl::logic::matching::pre_shared_holds;
use commcsl::pure::{Multiset, Value};

fn args(n: usize, value_offset: i64) -> Multiset<Value> {
    (0..n)
        .map(|i| Value::pair(Value::Int((i % 8) as i64), Value::Int(i as i64 + value_offset)))
        .collect()
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_scaling");
    for n in [4usize, 16, 64, 128] {
        let left = args(n, 0);
        let right = args(n, 1000); // same keys, different (high) values
        group.bench_with_input(BenchmarkId::new("key_bijection", n), &n, |b, _| {
            b.iter(|| {
                let ok = pre_shared_holds(&left, &right, |a, b| {
                    a.as_pair().unwrap().0 == b.as_pair().unwrap().0
                });
                assert!(ok);
                ok
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
