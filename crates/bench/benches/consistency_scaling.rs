//! Ablation: interleaving enumeration for consistency (Sec. 3.5) — the
//! search the logic *avoids* by requiring only pairwise commutativity.
//! Commuting action sets collapse to a single final state (deduplication
//! keeps the frontier small); the bench shows the growth with record size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use commcsl::logic::consistency::{interleaving_results, Record};
use commcsl::logic::spec::ResourceSpec;
use commcsl::pure::Value;

fn bench_consistency(c: &mut Criterion) {
    let spec = ResourceSpec::keyset_map();
    let mut group = c.benchmark_group("consistency_scaling");
    group.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        let record = Record::new().with_shared(
            "Put",
            (0..n).map(|i| Value::pair(Value::Int(i as i64), Value::Int(100 + i as i64))),
        );
        group.bench_with_input(BenchmarkId::new("keyset_put", n), &record, |b, r| {
            b.iter(|| {
                let finals =
                    interleaving_results(&spec, &Value::map_empty(), r).expect("total");
                assert_eq!(finals.len(), 1, "distinct keys commute concretely");
                finals
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_consistency);
criterion_main!(benches);
