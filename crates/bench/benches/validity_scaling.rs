//! Ablation: cost of resource-specification validity checking (Def. 3.1)
//! as the number of unique actions grows — the number of commutativity
//! obligations grows quadratically, each discharged symbolically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use commcsl::logic::spec::ResourceSpec;
use commcsl::logic::validity::{check_validity, ValidityConfig};

fn bench_validity(c: &mut Criterion) {
    let config = ValidityConfig::default();
    let mut group = c.benchmark_group("validity_scaling");
    group.sample_size(10);
    for n in [1usize, 2, 3, 4, 6] {
        let spec = ResourceSpec::disjoint_put_map(n);
        group.bench_with_input(BenchmarkId::new("disjoint_put_map", n), &spec, |b, s| {
            b.iter(|| {
                let report = check_validity(s, &config);
                assert!(report.is_valid());
                report
            })
        });
    }
    // Fixed-size comparison points.
    for (name, spec) in [
        ("keyset_map", ResourceSpec::keyset_map()),
        ("histogram", ResourceSpec::histogram()),
        ("producer_consumer", ResourceSpec::producer_consumer(true)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| check_validity(&spec, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_validity);
criterion_main!(benches);
