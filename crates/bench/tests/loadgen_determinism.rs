//! Satellite: two deterministic single-threaded loadgen runs produce
//! byte-identical histogram JSON — the reproducibility contract the
//! `--deterministic` flag documents. The requests still cross a real
//! Unix socket into a real daemon; only the recorded durations are a
//! fixed function of `(client, op, ordinal)`.

#![cfg(unix)]

use commcsl_bench::loadgen::{loadgen_run, LoadgenConfig};

#[test]
fn deterministic_runs_produce_byte_identical_histogram_json() {
    let config = LoadgenConfig {
        clients: 2,
        requests_per_client: 10,
        threads: 1,
        deterministic: true,
        ..LoadgenConfig::default()
    };
    let first = loadgen_run(&config);
    let second = loadgen_run(&config);

    assert!(!first.histogram_json.is_empty());
    assert_eq!(
        first.histogram_json, second.histogram_json,
        "deterministic histogram JSON must be byte-identical"
    );

    // The same deterministic workload over TCP through a 2-shard pool:
    // synthetic durations are a fixed function of (client, op, ordinal),
    // so transport and sharding must not change a byte of the JSON —
    // and every verdict must stay as expected.
    let sharded = loadgen_run(&LoadgenConfig {
        shards: 2,
        ..config.clone()
    });
    assert_eq!(
        first.histogram_json, sharded.histogram_json,
        "a TCP shard pool must not change the deterministic histogram"
    );
    assert_eq!(sharded.verify_failures, 0);
    assert!(sharded.request_ids_present);
    assert!(sharded.seqs_strictly_increasing);

    // The load actually went through the daemon: its own histograms
    // counted every request, its event log retained them in order, and
    // nothing failed.
    assert_eq!(first.verify_failures, 0);
    assert!(first.request_ids_present);
    assert!(first.seqs_strictly_increasing);
    assert!(first.daemon_events > 0);
    assert!(first.p99_sane());
    let total_client: u64 = first.ops.iter().map(|o| o.client.count()).sum();
    assert_eq!(total_client, first.requests);
}
