//! Sustained-load harness over a live in-process verification daemon.
//!
//! [`loadgen_run`] boots a real [`Server`] on a temporary Unix socket,
//! connects `clients` concurrent [`Client`] connections, and drives an
//! interleaved v2 workload — `verify` over the `.csl` corpus and the
//! `scale-map-report-*` stress programs, `open`/`update` workspace
//! sessions, and periodic `status` polls. Each client measures its own
//! per-op latencies; at the end the harness reads the daemon's own
//! per-op histograms and event log back over the wire, so the two
//! views of the same traffic can be cross-checked (`daemon p50 within
//! 20% of client p50`, sequence numbers strictly increasing, every
//! response stamped with a request id).
//!
//! With [`LoadgenConfig::deterministic`], recorded durations are a
//! fixed function of `(client, op, ordinal)` instead of wall-clock
//! time: the requests still cross the wire, but the reported histogram
//! JSON is byte-identical across runs — the determinism contract the
//! `loadgen` CI gate and `tests/loadgen_determinism.rs` pin.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use commcsl::cluster::ShardPool;
use commcsl::server::client::Client;
use commcsl::server::daemon::{Server, ServerConfig};
use commcsl::server::json::Json;
use commcsl::server::protocol::{request_id_of, Request};
use commcsl::telemetry::Histogram;
use commcsl::verifier::cache::CacheConfig;
use commcsl::verifier::program::AnnotatedProgram;
use commcsl::verifier::report::VerifierConfig;

/// Sustained-load harness configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Daemon worker threads (0 = one per CPU).
    pub threads: usize,
    /// Record synthetic, reproducible durations instead of wall time.
    pub deterministic: bool,
    /// Drive the load over TCP loopback instead of a Unix socket
    /// (implied by `shards > 1`; the snapshot is named `loadgen_tcp`).
    pub tcp: bool,
    /// Verifier shards behind the endpoint: 1 = a plain daemon, N > 1 =
    /// a consistent-hash [`ShardPool`] (TCP only).
    pub shards: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 4,
            requests_per_client: 40,
            threads: 0,
            deterministic: false,
            tcp: false,
            shards: 1,
        }
    }
}

/// One op's view of the load: the client-side histogram (what callers
/// experienced) and the daemon-side histogram (what the service
/// recorded for the same traffic).
#[derive(Debug, Clone)]
pub struct OpStats {
    /// Protocol op name.
    pub op: String,
    /// Client-side latency histogram (nanoseconds; synthetic under
    /// deterministic mode).
    pub client: Histogram,
    /// Daemon-side latency histogram, read back over the wire. Empty
    /// when the daemon saw no such op (never the case for ops we sent).
    pub daemon: Histogram,
}

impl OpStats {
    /// Whether the daemon's p50 agrees with the client's within 20%
    /// relative error or `queue_slack_ns` absolute slack. Fast ops are
    /// dominated by costs the daemon-side timer cannot see — the socket
    /// round-trip, the scheduler handoff back to the client thread, and
    /// queueing behind other clients' in-flight requests — so the
    /// relative bound only becomes meaningful once the op itself
    /// outweighs transport. The slack is load-derived (see
    /// [`LoadgenRun::queue_slack_ns`]) because the queueing component
    /// scales with how oversubscribed the host is.
    pub fn p50_agrees(&self, queue_slack_ns: f64) -> bool {
        let client = self.client.quantile(0.5) as f64;
        let daemon = self.daemon.quantile(0.5) as f64;
        let abs = (client - daemon).abs();
        abs <= queue_slack_ns || abs <= 0.2 * client.max(daemon)
    }
}

/// Results of one sustained-load run.
#[derive(Debug, Clone)]
pub struct LoadgenRun {
    /// Concurrent connections driven.
    pub clients: usize,
    /// Total requests issued by the harness (excluding the final
    /// observability reads).
    pub requests: u64,
    /// Wall-clock time for the loaded phase.
    pub wall_ms: f64,
    /// Per-op statistics, sorted by op name.
    pub ops: Vec<OpStats>,
    /// Canonical client-side histogram JSON (`{"op":{...},...}`,
    /// sorted): byte-identical across runs under deterministic mode.
    pub histogram_json: String,
    /// Events the daemon retained, read back through the `logs` op.
    pub daemon_events: u64,
    /// Events the daemon dropped to stay within its ring capacity.
    pub daemon_events_dropped: u64,
    /// Whether the event log's sequence numbers were strictly
    /// increasing.
    pub seqs_strictly_increasing: bool,
    /// Whether every sampled response carried a `request_id`.
    pub request_ids_present: bool,
    /// Verify requests whose verdict was not the expected "verified".
    pub verify_failures: u64,
}

impl LoadgenRun {
    /// Requests per second over the loaded phase.
    pub fn throughput_rps(&self) -> f64 {
        self.requests as f64 / (self.wall_ms / 1000.0).max(f64::EPSILON)
    }

    /// The absolute slack allowed between the client-side and
    /// daemon-side p50 of one op: by Little's law, a request on a
    /// saturated host waits behind up to `clients` in-flight requests,
    /// each taking `wall / requests` on average to drain — so that
    /// product bounds the queueing delay the client clock sees but the
    /// daemon's per-request timer cannot. Floored at 5 ms so unloaded
    /// runs keep a transport allowance.
    pub fn queue_slack_ns(&self) -> f64 {
        let mean_drain_ns = self.wall_ms * 1e6 / (self.requests as f64).max(1.0);
        (self.clients as f64 * mean_drain_ns).max(5_000_000.0)
    }

    /// Whether every op's daemon-side p50 agrees with the client-side
    /// p50 (see [`OpStats::p50_agrees`]). Meaningless under
    /// deterministic mode, where client durations are synthetic.
    pub fn p50_agreement(&self) -> bool {
        let slack = self.queue_slack_ns();
        self.ops.iter().all(|op| op.p50_agrees(slack))
    }

    /// Every op's p99 is at least its p50 (quantile sanity).
    pub fn p99_sane(&self) -> bool {
        self.ops
            .iter()
            .all(|o| o.client.quantile(0.99) >= o.client.quantile(0.5))
    }
}

/// The `.csl` corpus the workload cycles over: every program under
/// `examples/programs`, sorted by file name.
pub fn corpus() -> Vec<(String, String)> {
    let dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/programs"
    ));
    let mut files: Vec<(String, String)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read corpus dir {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            if path.extension().is_some_and(|x| x == "csl") {
                let name = path.file_name()?.to_string_lossy().into_owned();
                let source = std::fs::read_to_string(&path).ok()?;
                Some((name, source))
            } else {
                None
            }
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "empty corpus in {}", dir.display());
    files
}

/// The daemon compiler used by the harness: `.csl` sources go through
/// the real front-end; a `@scale <name>` line resolves one of the
/// builder-constructed `scale-map-report-*` stress programs, which have
/// no surface syntax.
fn loadgen_compile(src: &str) -> Result<AnnotatedProgram, String> {
    if let Some(rest) = src.strip_prefix("@scale ") {
        let name = rest.split_whitespace().next().unwrap_or("");
        crate::reverify_programs()
            .into_iter()
            .find(|p| p.name == name)
            .ok_or_else(|| format!("1:1: unknown scale program `{name}`"))
    } else {
        commcsl::front::compile(src).map_err(|e| e.to_string())
    }
}

/// A reproducible pseudo-latency for deterministic mode: a fixed
/// function of the client index, op slot, and request ordinal, spread
/// over 0.05–50 ms so quantiles land in distinct buckets.
fn synthetic_ns(client: usize, op_slot: usize, ordinal: usize) -> u64 {
    let mix = (client as u64)
        .wrapping_mul(1_000_003)
        .wrapping_add(op_slot as u64 * 10_007)
        .wrapping_add(ordinal as u64 * 101);
    50_000 + (mix % 1000) * 50_000
}

/// Unique-per-process socket path for one run.
fn socket_path() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "commcsl-loadgen-{}-{n}.sock",
        std::process::id()
    ))
}

/// Boots a daemon, drives the configured load through it, and reads the
/// service's own telemetry back over the wire.
///
/// # Panics
///
/// On harness-level failures (socket cannot bind, a client cannot
/// connect, a protocol response is malformed). Workload-level outcomes
/// — verdict mismatches, quantile disagreement — are *reported* in the
/// returned [`LoadgenRun`] so the caller can gate on them.
pub fn loadgen_run(config: &LoadgenConfig) -> LoadgenRun {
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    let tcp = config.tcp || config.shards > 1;
    let shards = config.shards.max(1);
    let make_server = || {
        Server::new(
            ServerConfig {
                threads: config.threads,
                cache: CacheConfig::memory_only(4096),
                verifier: VerifierConfig::default(),
                ..Default::default()
            },
            Box::new(loadgen_compile),
        )
    };
    // One plain daemon, or a consistent-hash pool of shared-nothing
    // shards behind one TCP endpoint — the wire traffic is identical.
    let (single, pool) = if shards == 1 {
        (Some(make_server()), None)
    } else {
        let servers = (0..shards).map(|_| Arc::new(make_server())).collect();
        (None, Some(ShardPool::new(servers)))
    };
    let socket = (!tcp).then(socket_path);
    if let Some(sock) = &socket {
        let _ = std::fs::remove_file(sock);
    }
    let listener =
        tcp.then(|| Server::bind_tcp("127.0.0.1:0").expect("bind loopback"));
    let addr = listener
        .as_ref()
        .map(|l| l.local_addr().expect("bound address").to_string());
    let connect = || match (&addr, &socket) {
        (Some(addr), _) => Client::connect_tcp(addr),
        (None, Some(sock)) => Client::connect(sock),
        (None, None) => unreachable!("loadgen has an endpoint"),
    };

    let corpus = corpus();
    let scale_names = ["scale-map-report-6x24", "scale-map-report-9x36"];

    // Client-side per-op histograms and correctness flags, merged under
    // one lock (contention is per-request, not per-sample: each client
    // merges once at the end).
    let merged: Mutex<BTreeMap<String, Histogram>> = Mutex::new(BTreeMap::new());
    let verify_failures = AtomicU64::new(0);
    let missing_request_ids = AtomicU64::new(0);

    struct StopOnDrop<'a> {
        single: Option<&'a Server>,
        pool: Option<&'a ShardPool>,
    }
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            if let Some(server) = self.single {
                server.request_shutdown();
            }
            if let Some(pool) = self.pool {
                pool.request_shutdown();
            }
        }
    }

    let mut wall_ms = 0.0;
    let mut daemon_hists: Vec<(String, Histogram)> = Vec::new();
    let mut daemon_events = 0u64;
    let mut daemon_events_dropped = 0u64;
    let mut seqs_strictly_increasing = true;

    std::thread::scope(|scope| {
        let _stop = StopOnDrop {
            single: single.as_ref(),
            pool: pool.as_ref(),
        };
        scope.spawn(|| match (&single, &pool, &listener, &socket) {
            (Some(server), _, Some(listener), _) => server.serve_tcp(listener),
            (Some(server), _, None, Some(sock)) => server.serve_unix(sock),
            (None, Some(pool), Some(listener), _) => pool.serve_tcp(listener),
            _ => unreachable!("loadgen has an endpoint"),
        });
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while connect().is_err() {
            assert!(Instant::now() < deadline, "loadgen daemon never came up");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }

        let started = Instant::now();
        std::thread::scope(|clients| {
            for c in 0..config.clients {
                let corpus = &corpus;
                let merged = &merged;
                let verify_failures = &verify_failures;
                let missing_request_ids = &missing_request_ids;
                let connect = &connect;
                clients.spawn(move || {
                    let mut client = connect().expect("client connects");
                    client.hello_latest().expect("hello");
                    let mut local: BTreeMap<&'static str, Histogram> =
                        BTreeMap::new();
                    let doc = format!("loadgen-{c}.csl");
                    for j in 0..config.requests_per_client {
                        let (name, source) = &corpus[(c + j) % corpus.len()];
                        let op_slot = j % 5;
                        let begun = Instant::now();
                        let op: &'static str = match op_slot {
                            0 => {
                                let outcome = client
                                    .verify(name.clone(), source.clone())
                                    .expect("verify answers");
                                if !outcome
                                    .as_ref()
                                    .is_ok_and(|ok| ok.report.verified())
                                {
                                    verify_failures
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                "verify"
                            }
                            1 => {
                                let outcome = client
                                    .open(doc.clone(), source.clone())
                                    .expect("open answers");
                                if outcome.is_err() {
                                    verify_failures
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                "open"
                            }
                            2 => {
                                // A trailing comment: new revision, same
                                // program — the incremental path the
                                // daemon serves cheaply.
                                let edited =
                                    format!("{source}\n// loadgen edit {j}\n");
                                let outcome = client
                                    .update(doc.clone(), edited)
                                    .expect("update answers");
                                if outcome.is_err() {
                                    verify_failures
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                "update"
                            }
                            3 => {
                                // Raw round-trip so the response's
                                // request_id stamp is observable.
                                let response = client
                                    .roundtrip(&Request::Status)
                                    .expect("status answers");
                                if request_id_of(&response).is_none() {
                                    missing_request_ids
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                "status"
                            }
                            _ => {
                                let scale = scale_names[(j / 5) % 2];
                                let outcome = client
                                    .verify(scale, format!("@scale {scale}"))
                                    .expect("scale verify answers");
                                if !outcome
                                    .as_ref()
                                    .is_ok_and(|ok| ok.report.verified())
                                {
                                    verify_failures
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                "verify"
                            }
                        };
                        let dur_ns = if config.deterministic {
                            synthetic_ns(c, op_slot, j)
                        } else {
                            u64::try_from(begun.elapsed().as_nanos())
                                .unwrap_or(u64::MAX)
                        };
                        local.entry(op).or_default().record(dur_ns);
                    }
                    client.close(doc).expect("close answers");
                    let mut merged = merged.lock().expect("merge lock");
                    for (op, hist) in local {
                        merged.entry(op.to_owned()).or_default().merge(&hist);
                    }
                });
            }
        });
        wall_ms = started.elapsed().as_secs_f64() * 1000.0;

        // Read the daemon's own view of the traffic back over the wire.
        let mut control = connect().expect("control connects");
        daemon_hists = control.histograms().expect("histograms answer");
        let page = control.logs(None).expect("logs answer");
        daemon_events = page.events.len() as u64;
        daemon_events_dropped = page.dropped;
        seqs_strictly_increasing =
            page.events.windows(2).all(|w| w[0].seq < w[1].seq);
        control.shutdown().expect("shutdown acknowledged");
    });
    if let Some(sock) = &socket {
        let _ = std::fs::remove_file(sock);
    }

    let merged = merged.into_inner().expect("merge lock");
    let histogram_json = {
        let fields: Vec<String> = merged
            .iter()
            .map(|(op, h)| format!("{}:{}", Json::str(op), h.to_json()))
            .collect();
        format!("{{{}}}", fields.join(","))
    };
    let daemon_by_op: BTreeMap<&str, &Histogram> = daemon_hists
        .iter()
        .map(|(op, h)| (op.as_str(), h))
        .collect();
    let ops = merged
        .iter()
        .map(|(op, client_hist)| OpStats {
            op: op.clone(),
            client: client_hist.clone(),
            daemon: daemon_by_op
                .get(op.as_str())
                .map(|h| (*h).clone())
                .unwrap_or_default(),
        })
        .collect();

    LoadgenRun {
        clients: config.clients,
        requests: (config.clients * config.requests_per_client) as u64,
        wall_ms,
        ops,
        histogram_json,
        daemon_events,
        daemon_events_dropped,
        seqs_strictly_increasing,
        request_ids_present: missing_request_ids.load(Ordering::Relaxed) == 0,
        verify_failures: verify_failures.load(Ordering::Relaxed),
    }
}

/// Renders a [`LoadgenRun`] as one appendable JSON snapshot line (same
/// trajectory file as `table1_json`, distinguished by `"bench"`).
pub fn loadgen_json(run: &LoadgenRun, config: &LoadgenConfig) -> String {
    let ms = |ns: u64| ns as f64 / 1e6;
    let ops: Vec<String> = run
        .ops
        .iter()
        .map(|o| {
            format!(
                "{{\"op\":{},\"count\":{},\"client_p50_ms\":{:.6},\
                 \"client_p99_ms\":{:.6},\"daemon_p50_ms\":{:.6},\
                 \"daemon_p99_ms\":{:.6}}}",
                Json::str(&o.op),
                o.client.count(),
                ms(o.client.quantile(0.5)),
                ms(o.client.quantile(0.99)),
                ms(o.daemon.quantile(0.5)),
                ms(o.daemon.quantile(0.99)),
            )
        })
        .collect();
    let bench = if config.tcp || config.shards > 1 {
        "loadgen_tcp"
    } else {
        "loadgen"
    };
    format!(
        "{{\"bench\":\"{bench}\",\"clients\":{},\"requests\":{},\
         \"threads\":{},\"shards\":{},\"deterministic\":{},\"wall_ms\":{:.6},\
         \"throughput_rps\":{:.3},\"verify_failures\":{},\
         \"events\":{},\"events_dropped\":{},\"seqs_increasing\":{},\
         \"request_ids\":{},\"ops\":[{}]}}",
        run.clients,
        run.requests,
        config.threads,
        config.shards.max(1),
        config.deterministic,
        run.wall_ms,
        run.throughput_rps(),
        run.verify_failures,
        run.daemon_events,
        run.daemon_events_dropped,
        run.seqs_strictly_increasing,
        run.request_ids_present,
        ops.join(","),
    )
}
