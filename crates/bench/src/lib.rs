//! Benchmark harness regenerating the paper's evaluation (Table 1) and
//! ablation studies.
//!
//! [`table1_rows`] produces the same columns the paper reports: example
//! name, data structure, abstraction, LOC, annotation count, and the
//! verification time averaged over several runs. Absolute times are not
//! comparable (the paper measures Viper+Z3 on a warmed JVM; we measure a
//! native in-process verifier) — EXPERIMENTS.md compares *shape*.

use std::time::Duration;

use commcsl::fixtures;
use commcsl::verifier::batch::{verify_batch_ref, BatchConfig};
use serde::Serialize;

pub mod loadgen;

/// One reproduced row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Example name (paper row).
    pub example: &'static str,
    /// Data structure column.
    pub data_structure: &'static str,
    /// Abstraction column.
    pub abstraction: &'static str,
    /// Lines of code (annotated-program statements).
    pub loc: usize,
    /// Annotation count (specifications and proof annotations).
    pub annotations: usize,
    /// Verification time, averaged over `runs`.
    pub time: Duration,
    /// Whether verification succeeded (it must, for every row).
    pub verified: bool,
}

/// Verifies every fixture `runs` times and reports the averaged rows.
///
/// Runs go through the parallel batch pipeline with one worker per
/// available CPU; see [`table1_rows_parallel`] for an explicit thread
/// count.
pub fn table1_rows(runs: u32) -> Vec<Table1Row> {
    table1_rows_parallel(runs, 0)
}

/// [`table1_rows`] over an explicit pool size (`0` = one worker per
/// available CPU, `1` = the paper's sequential regime).
///
/// Each run pushes the full fixture suite through
/// [`commcsl::verifier::batch::verify_batch_ref`]; verdicts are
/// deterministic (identical to sequential verification) whatever the
/// thread count, and the per-fixture wall-clock times are averaged over
/// the runs.
pub fn table1_rows_parallel(runs: u32, threads: usize) -> Vec<Table1Row> {
    assert!(runs > 0, "need at least one run to average over");
    let config = BatchConfig::with_threads(threads);
    let fixtures = fixtures::all();
    let programs: Vec<_> = fixtures.iter().map(|f| &f.program).collect();

    let mut totals = vec![Duration::ZERO; fixtures.len()];
    let mut verified = vec![true; fixtures.len()];
    for _ in 0..runs {
        for result in verify_batch_ref(&programs, &config) {
            totals[result.index] += result.time;
            verified[result.index] &= result.report.verified();
        }
    }

    fixtures
        .iter()
        .enumerate()
        .map(|(i, f)| Table1Row {
            example: f.name,
            data_structure: f.data_structure,
            abstraction: f.abstraction,
            loc: f.program.loc(),
            annotations: f.program.annotation_count(),
            time: totals[i] / runs,
            verified: verified[i],
        })
        .collect()
}

/// Renders rows as one JSON snapshot object (single line, no trailing
/// newline) for append-style benchmark trajectories such as
/// `BENCH_table1.json`: one run per line, each self-describing.
pub fn table1_json(rows: &[Table1Row], runs: u32, threads: usize) -> String {
    use commcsl::verifier::report::json_string;
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"example\":{},\"data_structure\":{},\"abstraction\":{},\
                 \"loc\":{},\"annotations\":{},\"time_ms\":{:.6},\"verified\":{}}}",
                json_string(r.example),
                json_string(r.data_structure),
                json_string(r.abstraction),
                r.loc,
                r.annotations,
                r.time.as_secs_f64() * 1000.0,
                r.verified,
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"table1\",\"runs\":{runs},\"threads\":{threads},\
         \"total_ms\":{:.6},\"all_verified\":{},\"rows\":[{}]}}",
        rows.iter().map(|r| r.time.as_secs_f64()).sum::<f64>() * 1000.0,
        rows.iter().all(|r| r.verified),
        rendered.join(","),
    )
}

// ----------------------------------------------------------- cold vs warm

/// Results of the cold-vs-warm cache benchmark over the full corpus
/// (18 Table 1 fixtures plus the rejected variants).
#[derive(Debug, Clone)]
pub struct ColdWarm {
    /// Programs in the corpus.
    pub programs: usize,
    /// Wall-clock ms for the cold pass (empty cache, full verification).
    pub cold_ms: f64,
    /// Wall-clock ms for the warm pass (same process, memory tier).
    pub warm_ms: f64,
    /// Wall-clock ms after a simulated daemon restart (fresh
    /// [`CachedVerifier`], same disk dir — every hit from the disk tier).
    pub restart_ms: f64,
    /// Whether every cached verdict (warm *and* restart) was
    /// byte-identical to direct, uncached verification.
    pub identical: bool,
    /// Whether the warm/restart passes were fully served from cache.
    pub fully_cached: bool,
}

impl ColdWarm {
    /// Cold-over-warm speedup (memory tier).
    pub fn speedup_warm(&self) -> f64 {
        self.cold_ms / self.warm_ms.max(f64::EPSILON)
    }

    /// Cold-over-restart speedup (disk tier).
    pub fn speedup_restart(&self) -> f64 {
        self.cold_ms / self.restart_ms.max(f64::EPSILON)
    }
}

/// Runs the cold/warm/restart passes against a cache rooted at
/// `cache_dir` (which should start empty; typically a temp dir).
pub fn cold_warm_bench(threads: usize, cache_dir: &std::path::Path) -> ColdWarm {
    use commcsl::verifier::cache::{CacheConfig, CachedVerifier};
    use commcsl::verifier::verify;
    use std::time::Instant;

    let fixtures = fixtures::all();
    let rejected = fixtures::rejected::all_programs();
    let programs: Vec<&commcsl::verifier::AnnotatedProgram> = fixtures
        .iter()
        .map(|f| &f.program)
        .chain(rejected.iter().map(|(_, p)| p))
        .collect();

    let batch = BatchConfig::with_threads(threads);
    let cached = CachedVerifier::new(batch.clone(), CacheConfig::persistent(cache_dir));

    let started = Instant::now();
    let cold = cached.verify_batch(&programs);
    let cold_ms = started.elapsed().as_secs_f64() * 1000.0;

    let started = Instant::now();
    let warm = cached.verify_batch(&programs);
    let warm_ms = started.elapsed().as_secs_f64() * 1000.0;

    // Simulated restart: a fresh verifier over the same disk tier.
    let restarted = CachedVerifier::new(batch, CacheConfig::persistent(cache_dir));
    let started = Instant::now();
    let after_restart = restarted.verify_batch(&programs);
    let restart_ms = started.elapsed().as_secs_f64() * 1000.0;

    let mut identical = true;
    let mut fully_cached = true;
    for ((program, c), (w, r)) in programs
        .iter()
        .zip(&cold)
        .zip(warm.iter().zip(&after_restart))
    {
        fully_cached &= w.cached && r.cached && !c.cached;
        let direct = verify(program, cached.verifier_config()).to_json();
        identical &= c.report.to_json() == direct
            && w.report.to_json() == direct
            && r.report.to_json() == direct;
    }

    ColdWarm {
        programs: programs.len(),
        cold_ms,
        warm_ms,
        restart_ms,
        identical,
        fully_cached,
    }
}

/// Renders a [`ColdWarm`] run as one appendable JSON snapshot line (same
/// trajectory file as [`table1_json`], distinguished by `"bench"`).
pub fn cold_warm_json(run: &ColdWarm, threads: usize) -> String {
    format!(
        "{{\"bench\":\"cold_warm\",\"threads\":{threads},\"programs\":{},\
         \"cold_ms\":{:.6},\"warm_ms\":{:.6},\"restart_ms\":{:.6},\
         \"speedup_warm\":{:.3},\"speedup_restart\":{:.3},\
         \"identical\":{},\"fully_cached\":{}}}",
        run.programs,
        run.cold_ms,
        run.warm_ms,
        run.restart_ms,
        run.speedup_warm(),
        run.speedup_restart(),
        run.identical,
        run.fully_cached,
    )
}

// --------------------------------------------------- incremental backend

/// One workload of the incremental-vs-fresh solver benchmark: a
/// program's recorded solver-session event stream, replayed through each
/// backend.
#[derive(Debug, Clone)]
pub struct IncrementalRow {
    /// Workload name (a Table 1 fixture, or a `scale-*` stress program).
    pub example: String,
    /// Number of `Check` events (program proof obligations) in the stream.
    pub checks: usize,
    /// Median wall-clock ms replaying through the stateless `fresh`
    /// backend (one full re-solve per obligation).
    pub fresh_ms: f64,
    /// Median wall-clock ms replaying through the `incremental` backend.
    pub incremental_ms: f64,
}

impl IncrementalRow {
    /// Fresh-over-incremental speedup for this workload.
    pub fn speedup(&self) -> f64 {
        self.fresh_ms / self.incremental_ms.max(f64::EPSILON)
    }
}

/// Results of the incremental-solver benchmark.
#[derive(Debug, Clone)]
pub struct IncrementalBench {
    /// Per-workload medians, obligation-heaviest first.
    pub rows: Vec<IncrementalRow>,
    /// Median of the per-workload speedups.
    pub median_speedup: f64,
    /// Whether both backends produced byte-identical report JSON on the
    /// *full* corpus (all fixtures + rejected variants + the stress
    /// programs), cross-checked against the legacy free-function path,
    /// and identical verdict streams on every replay.
    pub identical: bool,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Obligation-heavy stress programs in the style of the Table 1 examples
/// — the per-path obligation counts a production verifier sees on real
/// method bodies, rather than the papers' minimal exhibits. Both verify.
pub fn scale_programs() -> Vec<commcsl::verifier::AnnotatedProgram> {
    use commcsl::prelude::{ResourceSpec, Sort, Term, VStmt};
    use commcsl::pure::{Func, Value};

    let map_audit = |puts_per_iter: usize, outputs: usize| {
        let worker = |lo: Term, hi: Term| {
            let mut body = vec![
                VStmt::input("adr", Sort::Int, true),
                VStmt::input("rsn", Sort::Int, false),
            ];
            for j in 0..puts_per_iter {
                // Distinct low keys, high values: every put is its own
                // precondition obligation under the shared loop facts.
                body.push(VStmt::atomic(
                    0,
                    "Put",
                    Term::pair(
                        Term::add(Term::var("adr"), Term::int(j as i64)),
                        Term::var("rsn"),
                    ),
                ));
            }
            vec![VStmt::for_range("i", lo, hi, body)]
        };
        let mut body = vec![
            VStmt::input("n", Sort::Int, true),
            VStmt::Share {
                resource: 0,
                init: Term::Lit(Value::map_empty()),
            },
            VStmt::Par {
                workers: vec![
                    worker(
                        Term::int(0),
                        Term::app(Func::Div, [Term::var("n"), Term::int(2)]),
                    ),
                    worker(
                        Term::app(Func::Div, [Term::var("n"), Term::int(2)]),
                        Term::var("n"),
                    ),
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: "m".into(),
            },
        ];
        for j in 0..outputs {
            // Audit outputs over the key-set abstraction, all discharged
            // against the same unshare facts.
            body.push(VStmt::Output(Term::app(
                Func::SetCard,
                [Term::app(
                    Func::SetAdd,
                    [
                        Term::app(Func::MapDom, [Term::var("m")]),
                        Term::int(j as i64),
                    ],
                )],
            )));
        }
        AnnotatedProgram::new(format!("scale-map-audit-{puts_per_iter}x{outputs}"))
            .with_resource(ResourceSpec::keyset_map())
            .with_body(body)
    };

    use commcsl::verifier::AnnotatedProgram;
    vec![map_audit(6, 6), map_audit(12, 12)]
}

/// The edit-loop stress programs: the same shared-map shape as
/// [`scale_programs`], but every audit output is a *composite aggregate*
/// ([`audit_goal`]) whose discharge cost dwarfs the symbolic walk that
/// reaches it — the reporting-pipeline regime where obligation-level
/// reuse pays hardest. Kept separate from [`scale_programs`] because the
/// two benches stress different seams: `incremental_solver` measures
/// base-state reuse across *many cheap checks*, `incremental_reverify`
/// measures skipping *expensive checks* altogether.
pub fn reverify_programs() -> Vec<commcsl::verifier::AnnotatedProgram> {
    use commcsl::prelude::{ResourceSpec, Sort, Term, VStmt};
    use commcsl::pure::{Func, Value};
    use commcsl::verifier::AnnotatedProgram;

    let map_report = |puts_per_iter: usize, outputs: usize| {
        let worker = |lo: Term, hi: Term| {
            let mut body = vec![
                VStmt::input("adr", Sort::Int, true),
                VStmt::input("rsn", Sort::Int, false),
            ];
            for j in 0..puts_per_iter {
                body.push(VStmt::atomic(
                    0,
                    "Put",
                    Term::pair(
                        Term::add(Term::var("adr"), Term::int(j as i64)),
                        Term::var("rsn"),
                    ),
                ));
            }
            vec![VStmt::for_range("i", lo, hi, body)]
        };
        let mut body = vec![
            VStmt::input("n", Sort::Int, true),
            VStmt::Share {
                resource: 0,
                init: Term::Lit(Value::map_empty()),
            },
            VStmt::Par {
                workers: vec![
                    worker(
                        Term::int(0),
                        Term::app(Func::Div, [Term::var("n"), Term::int(2)]),
                    ),
                    worker(
                        Term::app(Func::Div, [Term::var("n"), Term::int(2)]),
                        Term::var("n"),
                    ),
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: "m".into(),
            },
        ];
        for j in 0..outputs {
            body.push(VStmt::Output(audit_goal(j as i64)));
        }
        AnnotatedProgram::new(format!("scale-map-report-{puts_per_iter}x{outputs}"))
            .with_resource(ResourceSpec::keyset_map())
            .with_body(body)
    };

    vec![map_report(6, 24), map_report(9, 36)]
}

/// The `j`-th audit output of a [`reverify_programs`] workload: a
/// composite aggregate over the key-set abstraction (all low because the
/// domain is). The edit-loop bench rewrites the final one per edit.
pub fn audit_goal(j: i64) -> commcsl::prelude::Term {
    use commcsl::prelude::Term;
    use commcsl::pure::Func;
    let dom = || Term::app(Func::MapDom, [Term::var("m")]);
    let seq = || Term::app(Func::SetToSeq, [dom()]);
    Term::add(
        Term::add(
            Term::app(
                Func::Div,
                [
                    Term::mul(
                        Term::app(Func::SeqMean, [seq()]),
                        Term::app(Func::SetCard, [dom()]),
                    ),
                    Term::int(j + 1),
                ],
            ),
            Term::app(Func::SeqSum, [Term::app(Func::SeqTail, [seq()])]),
        ),
        Term::app(
            Func::Mod,
            [
                Term::app(Func::SeqSum, [seq()]),
                Term::add(Term::app(Func::SetCard, [dom()]), Term::int(j + 2)),
            ],
        ),
    )
}

/// Replays a recorded solver-event stream through a backend session,
/// returning the verdict of every `Check` event.
pub fn replay_trace(
    events: &[commcsl::verifier::SolverEvent],
    kind: commcsl::prelude::BackendKind,
) -> Vec<commcsl::prelude::Verdict> {
    use commcsl::verifier::SolverEvent;
    let mut session = kind.open_session(Default::default());
    let mut verdicts = Vec::new();
    for event in events {
        match event {
            SolverEvent::Push => session.push(),
            SolverEvent::Pop => session.pop(),
            SolverEvent::Assert(fact) => session.assert(fact.clone()),
            SolverEvent::Check { assumptions, goal } => {
                verdicts.push(session.check_assuming(assumptions.clone(), goal));
            }
        }
    }
    verdicts
}

/// Benchmarks the incremental solver backend against fresh-per-obligation
/// solving on the `top` obligation-heaviest workloads (Table 1 fixtures
/// plus the [`scale_programs`] stress programs, ranked by obligation
/// count), taking the median over `runs` interleaved replays per backend.
///
/// Each workload is the program's *recorded* solver interaction
/// ([`commcsl::verifier::solver_trace`]): identical event streams go to
/// both backends, so the comparison isolates the solving seam itself.
/// Correctness is pinned first: replayed verdict streams must agree, and
/// both backends (driven through the unified `Verifier` API) must produce
/// report JSON byte-identical to the legacy `verify` shim over the whole
/// corpus — the 18 fixtures, the rejected variants, and the stress
/// programs.
pub fn incremental_bench(runs: u32, top: usize) -> IncrementalBench {
    use commcsl::prelude::{BackendKind, Verifier};
    use commcsl::verifier::{solver_trace, SolverEvent};
    use std::time::Instant;

    assert!(runs > 0, "need at least one run to take a median over");
    let fixtures = fixtures::all();
    let rejected = fixtures::rejected::all_programs();
    let stress = scale_programs();

    // Correctness first: byte-identical reports across backends and the
    // legacy shim, over every program in the corpus.
    let fresh = Verifier::new().with_backend(BackendKind::Fresh).with_threads(1);
    let incremental = Verifier::new()
        .with_backend(BackendKind::Incremental)
        .with_threads(1);
    let mut identical = true;
    for program in fixtures
        .iter()
        .map(|f| &f.program)
        .chain(rejected.iter().map(|(_, p)| p))
        .chain(stress.iter())
    {
        let via_fresh = fresh.verify(program).report.to_json();
        let via_incremental = incremental.verify(program).report.to_json();
        let legacy = commcsl::verifier::verify(program, fresh.config()).to_json();
        identical &= via_fresh == via_incremental && via_fresh == legacy;
    }

    // Record every workload's solver stream and rank by obligation count.
    let config = incremental.config().clone();
    let mut workloads: Vec<(String, Vec<SolverEvent>)> = fixtures
        .iter()
        .map(|f| (f.name.to_owned(), solver_trace(&f.program, &config)))
        .chain(
            stress
                .iter()
                .map(|p| (p.name.clone(), solver_trace(p, &config))),
        )
        .collect();
    let checks =
        |events: &[SolverEvent]| events.iter().filter(|e| matches!(e, SolverEvent::Check { .. })).count();
    workloads.sort_by_key(|(name, events)| (std::cmp::Reverse(checks(events)), name.clone()));
    workloads.truncate(top.max(1));

    let rows = workloads
        .into_iter()
        .map(|(example, events)| {
            identical &= replay_trace(&events, BackendKind::Fresh)
                == replay_trace(&events, BackendKind::Incremental);
            let mut fresh_samples = Vec::with_capacity(runs as usize);
            let mut incremental_samples = Vec::with_capacity(runs as usize);
            // Interleave the backends so drift (thermal, cache) hits both.
            for _ in 0..runs {
                let start = Instant::now();
                let _ = replay_trace(&events, BackendKind::Fresh);
                fresh_samples.push(start.elapsed().as_secs_f64() * 1000.0);
                let start = Instant::now();
                let _ = replay_trace(&events, BackendKind::Incremental);
                incremental_samples.push(start.elapsed().as_secs_f64() * 1000.0);
            }
            IncrementalRow {
                checks: checks(&events),
                example,
                fresh_ms: median(&mut fresh_samples),
                incremental_ms: median(&mut incremental_samples),
            }
        })
        .collect::<Vec<_>>();

    let mut speedups: Vec<f64> = rows.iter().map(IncrementalRow::speedup).collect();
    IncrementalBench {
        rows,
        median_speedup: median(&mut speedups),
        identical,
    }
}

/// Renders the incremental bench as one JSON snapshot line for
/// `BENCH_table1.json`.
pub fn incremental_json(run: &IncrementalBench, runs: u32) -> String {
    use commcsl::verifier::report::json_string;
    let rows: Vec<String> = run
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"example\":{},\"checks\":{},\"fresh_ms\":{:.6},\
                 \"incremental_ms\":{:.6},\"speedup\":{:.3}}}",
                json_string(&r.example),
                r.checks,
                r.fresh_ms,
                r.incremental_ms,
                r.speedup(),
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"incremental_solver\",\"runs\":{runs},\
         \"median_speedup\":{:.3},\"identical\":{},\"rows\":[{}]}}",
        run.median_speedup,
        run.identical,
        rows.join(","),
    )
}

// --------------------------------------------- incremental re-verification

/// One workload of the edit-loop benchmark: a [`reverify_programs`]
/// stress program opened cold in a
/// [`Workspace`](commcsl::verifier::workspace::Workspace), then
/// re-verified after a sequence of single-statement edits.
#[derive(Debug, Clone)]
pub struct ReverifyRow {
    /// Workload name.
    pub example: String,
    /// Proof obligations per revision.
    pub obligations: usize,
    /// Wall-clock ms for the cold open (empty caches).
    pub cold_ms: f64,
    /// Median wall-clock ms per single-statement edit re-verification.
    pub edit_ms: f64,
    /// Obligations replayed from the obligation cache on the last edit.
    pub reused: usize,
    /// Obligations re-discharged by the solver on the last edit.
    pub checked: usize,
}

impl ReverifyRow {
    /// Cold-over-edit speedup for this workload.
    pub fn speedup(&self) -> f64 {
        self.cold_ms / self.edit_ms.max(f64::EPSILON)
    }
}

/// Results of the edit-loop benchmark.
#[derive(Debug, Clone)]
pub struct ReverifyBench {
    /// Per-workload rows.
    pub rows: Vec<ReverifyRow>,
    /// Median of the per-workload speedups.
    pub median_speedup: f64,
    /// Whether every incremental report (cold open and each edit) was
    /// byte-identical to cold whole-program verification.
    pub identical: bool,
}

/// A single-statement edit of a [`reverify_programs`] workload: the final audit
/// output's scaling constant changes (distinct per `k`, so every edit is
/// a new program revision). Everything before the last statement is
/// untouched — the canonical "fix the line I'm on" edit.
fn edit_last_output(
    program: &commcsl::verifier::AnnotatedProgram,
    k: i64,
) -> commcsl::verifier::AnnotatedProgram {
    use commcsl::prelude::VStmt;
    let mut edited = program.clone();
    let last = edited
        .body
        .last_mut()
        .expect("scale programs end with an audit output");
    *last = VStmt::Output(audit_goal(1000 + k));
    edited
}

/// Benchmarks the workspace edit loop on the [`reverify_programs`]
/// (`scale-map-report-*`): one cold `open_document`, then `edits`
/// single-statement edits pushed through
/// `update_document`, each re-discharging only the dirty obligation cone.
/// Byte-identity of every report against cold whole-program verification
/// is pinned before any number is reported.
pub fn reverify_bench(edits: u32) -> ReverifyBench {
    use commcsl::verifier::verify;
    use commcsl::verifier::workspace::{Workspace, WorkspaceConfig};
    use std::time::Instant;

    assert!(edits > 0, "need at least one edit to take a median over");
    let mut rows = Vec::new();
    let mut identical = true;
    for program in reverify_programs() {
        let mut ws = Workspace::new(WorkspaceConfig::default());
        let started = Instant::now();
        let cold = ws.open_document("bench.csl", &program);
        let cold_ms = started.elapsed().as_secs_f64() * 1000.0;
        identical &= cold.report.to_json() == verify(&program, ws.config()).to_json();

        let mut edit_samples = Vec::with_capacity(edits as usize);
        let (mut reused, mut checked) = (0, 0);
        for k in 1..=edits {
            let edited = edit_last_output(&program, i64::from(k));
            let started = Instant::now();
            let outcome = ws
                .update_document("bench.csl", &edited)
                .expect("document is open");
            edit_samples.push(started.elapsed().as_secs_f64() * 1000.0);
            identical &=
                outcome.report.to_json() == verify(&edited, ws.config()).to_json();
            identical &= !outcome.report_cached; // every edit is a new revision
            reused = outcome.obligations.reused;
            checked = outcome.obligations.checked;
        }
        rows.push(ReverifyRow {
            example: program.name.clone(),
            obligations: cold.obligations.total,
            cold_ms,
            edit_ms: median(&mut edit_samples),
            reused,
            checked,
        });
    }
    let mut speedups: Vec<f64> = rows.iter().map(ReverifyRow::speedup).collect();
    ReverifyBench {
        rows,
        median_speedup: median(&mut speedups),
        identical,
    }
}

/// Renders the edit-loop bench as one JSON snapshot line for
/// `BENCH_table1.json`.
pub fn reverify_json(run: &ReverifyBench, edits: u32) -> String {
    use commcsl::verifier::report::json_string;
    let rows: Vec<String> = run
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"example\":{},\"obligations\":{},\"cold_ms\":{:.6},\
                 \"edit_ms\":{:.6},\"reused\":{},\"checked\":{},\"speedup\":{:.3}}}",
                json_string(&r.example),
                r.obligations,
                r.cold_ms,
                r.edit_ms,
                r.reused,
                r.checked,
                r.speedup(),
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"incremental_reverify\",\"edits\":{edits},\
         \"median_speedup\":{:.3},\"identical\":{},\"rows\":[{}]}}",
        run.median_speedup,
        run.identical,
        rows.join(","),
    )
}

// --------------------------------------------------- static pre-pass bench

/// One workload of the static-pre-pass benchmark.
#[derive(Debug, Clone)]
pub struct StaticPrepassRow {
    /// Workload name (`scale-map-report-*`).
    pub example: String,
    /// Total proof obligations.
    pub obligations: usize,
    /// Obligations the low-ness pre-pass discharged without the solver —
    /// i.e. solver checks avoided.
    pub statically_proven: usize,
    /// Median wall-clock ms with the pre-pass disabled (solver-only).
    pub solver_ms: f64,
    /// Median wall-clock ms with the pre-pass enabled (the default).
    pub prepass_ms: f64,
}

impl StaticPrepassRow {
    /// Fraction of obligations discharged statically.
    pub fn discharge_fraction(&self) -> f64 {
        self.statically_proven as f64 / (self.obligations as f64).max(1.0)
    }

    /// Wall-clock saved by the pre-pass (positive = faster with it on).
    pub fn delta_ms(&self) -> f64 {
        self.solver_ms - self.prepass_ms
    }
}

/// Results of the static-pre-pass benchmark.
#[derive(Debug, Clone)]
pub struct StaticPrepassBench {
    /// Per-workload rows.
    pub rows: Vec<StaticPrepassRow>,
    /// Minimum per-workload discharge fraction (the CI gate).
    pub min_discharge: f64,
    /// Whether every pre-pass report was byte-identical to the
    /// solver-only report of the same program.
    pub identical: bool,
}

/// Benchmarks the static low-ness pre-pass on the [`reverify_programs`]
/// (`scale-map-report-*`): each workload is verified `runs` times with
/// the pre-pass on and off, reporting solver checks avoided and the
/// wall-clock delta. Byte-identity of the two reports is pinned before
/// any number is reported.
pub fn static_prepass_bench(runs: u32) -> StaticPrepassBench {
    use commcsl::verifier::report::VerifierConfig;
    use commcsl::verifier::verify_with_stats;
    use std::time::Instant;

    assert!(runs > 0, "need at least one run to take a median over");
    let on = VerifierConfig::default();
    let off = VerifierConfig {
        static_prepass: false,
        ..VerifierConfig::default()
    };

    let mut rows = Vec::new();
    let mut identical = true;
    for program in reverify_programs() {
        let mut on_samples = Vec::with_capacity(runs as usize);
        let mut off_samples = Vec::with_capacity(runs as usize);
        let mut stats = None;
        for _ in 0..runs {
            let started = Instant::now();
            let (report_on, run_stats, _, _) = verify_with_stats(&program, &on);
            on_samples.push(started.elapsed().as_secs_f64() * 1000.0);

            let started = Instant::now();
            let (report_off, _, _, _) = verify_with_stats(&program, &off);
            off_samples.push(started.elapsed().as_secs_f64() * 1000.0);

            identical &= report_on.to_json() == report_off.to_json();
            stats = Some(run_stats);
        }
        let stats = stats.expect("runs > 0");
        rows.push(StaticPrepassRow {
            example: program.name.clone(),
            obligations: stats.total,
            statically_proven: stats.statically_proven,
            solver_ms: median(&mut off_samples),
            prepass_ms: median(&mut on_samples),
        });
    }
    let min_discharge = rows
        .iter()
        .map(StaticPrepassRow::discharge_fraction)
        .fold(f64::INFINITY, f64::min);
    StaticPrepassBench {
        rows,
        min_discharge,
        identical,
    }
}

/// Renders the static-pre-pass bench as one JSON snapshot line for
/// `BENCH_table1.json`.
pub fn static_prepass_json(run: &StaticPrepassBench, runs: u32) -> String {
    use commcsl::verifier::report::json_string;
    let rows: Vec<String> = run
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"example\":{},\"obligations\":{},\"statically_proven\":{},\
                 \"discharge_fraction\":{:.4},\"solver_ms\":{:.6},\
                 \"prepass_ms\":{:.6},\"delta_ms\":{:.6}}}",
                json_string(&r.example),
                r.obligations,
                r.statically_proven,
                r.discharge_fraction(),
                r.solver_ms,
                r.prepass_ms,
                r.delta_ms(),
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"static_prepass\",\"runs\":{runs},\
         \"min_discharge\":{:.4},\"identical\":{},\"rows\":[{}]}}",
        run.min_discharge,
        run.identical,
        rows.join(","),
    )
}

/// Renders rows in the paper's table layout.
pub fn render_table(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:<28} {:<20} {:>5} {:>5} {:>10}  {}\n",
        "Example", "Data structure", "Abstraction", "LOC", "Ann.", "T (ms)", "OK"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<26} {:<28} {:<20} {:>5} {:>5} {:>10.3}  {}\n",
            r.example,
            r.data_structure,
            r.abstraction,
            r.loc,
            r.annotations,
            r.time.as_secs_f64() * 1000.0,
            if r.verified { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_rows_and_everything_verifies() {
        let rows = table1_rows(1);
        assert_eq!(rows.len(), 18);
        assert!(rows.iter().all(|r| r.verified));
        let rendered = render_table(&rows);
        assert!(rendered.contains("Figure 3"));
        assert!(rendered.contains("Key set"));
    }

    #[test]
    fn parallel_rows_match_sequential_rows() {
        let sequential = table1_rows_parallel(1, 1);
        let parallel = table1_rows_parallel(1, 4);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.example, p.example);
            assert_eq!(s.verified, p.verified);
            assert_eq!(s.loc, p.loc);
            assert_eq!(s.annotations, p.annotations);
        }
    }

    #[test]
    fn json_snapshot_is_single_line_and_complete() {
        let rows = table1_rows(1);
        let json = table1_json(&rows, 1, 0);
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"bench\":\"table1\""));
        assert!(json.contains("\"all_verified\":true"));
        assert_eq!(json.matches("\"example\":").count(), 18);
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn cold_warm_is_cached_and_identical() {
        let dir = std::env::temp_dir().join(format!(
            "commcsl-coldwarm-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let run = cold_warm_bench(0, &dir);
        assert_eq!(run.programs, 23); // 18 fixtures + 5 rejected variants
        assert!(run.identical, "cached verdicts must be byte-identical");
        assert!(run.fully_cached, "warm and restart passes must hit");
        let json = cold_warm_json(&run, 0);
        assert!(json.starts_with("{\"bench\":\"cold_warm\""));
        assert!(!json.contains('\n'));
        std::fs::remove_dir_all(&dir).ok();
    }

    // Nothing else in the workspace demands the `Serialize` bound, so
    // this is the one place that would catch the vendored serde derive
    // silently emitting no impl (its fallback for unsupported shapes).
    #[test]
    fn serialize_derive_emits_marker_impl() {
        fn assert_serialize<T: serde::Serialize>() {}
        assert_serialize::<Table1Row>();
    }

    #[test]
    fn incremental_bench_is_identical_and_ranked() {
        let run = incremental_bench(1, 3);
        assert!(run.identical, "backends must agree byte-for-byte");
        assert_eq!(run.rows.len(), 3);
        // Ranked by obligation count, heaviest first: the stress programs
        // outrank every paper fixture.
        assert!(run.rows[0].checks >= run.rows[1].checks);
        assert!(run.rows[0].example.starts_with("scale-"));
        let json = incremental_json(&run, 1);
        assert!(json.starts_with("{\"bench\":\"incremental_solver\""));
        assert!(!json.contains('\n'));
        assert!(json.contains("\"median_speedup\":"));
        assert!(json.contains("\"identical\":true"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn reverify_bench_is_identical_and_reuses_all_but_the_edit() {
        let run = reverify_bench(2);
        assert!(run.identical, "incremental reports must be byte-identical");
        assert_eq!(run.rows.len(), 2);
        for row in &run.rows {
            // A last-statement edit re-checks exactly one obligation.
            assert_eq!(row.checked, 1, "{row:?}");
            assert_eq!(row.reused, row.obligations - 1, "{row:?}");
        }
        let json = reverify_json(&run, 2);
        assert!(json.starts_with("{\"bench\":\"incremental_reverify\""));
        assert!(!json.contains('\n'));
        assert!(json.contains("\"identical\":true"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn scale_programs_verify_and_are_obligation_heavy() {
        for program in scale_programs() {
            let report =
                commcsl::verifier::verify(&program, &Default::default());
            assert!(report.verified(), "{}: {report}", program.name);
            assert!(
                report.obligations.len() >= 15,
                "{} is supposed to be obligation-heavy",
                program.name
            );
        }
    }
}
