//! Benchmark harness regenerating the paper's evaluation (Table 1) and
//! ablation studies.
//!
//! [`table1_rows`] produces the same columns the paper reports: example
//! name, data structure, abstraction, LOC, annotation count, and the
//! verification time averaged over several runs. Absolute times are not
//! comparable (the paper measures Viper+Z3 on a warmed JVM; we measure a
//! native in-process verifier) — EXPERIMENTS.md compares *shape*.

use std::time::{Duration, Instant};

use commcsl::fixtures;
use commcsl::verifier::{verify, VerifierConfig};
use serde::Serialize;

/// One reproduced row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Example name (paper row).
    pub example: &'static str,
    /// Data structure column.
    pub data_structure: &'static str,
    /// Abstraction column.
    pub abstraction: &'static str,
    /// Lines of code (annotated-program statements).
    pub loc: usize,
    /// Annotation count (specifications and proof annotations).
    pub annotations: usize,
    /// Verification time, averaged over `runs`.
    pub time: Duration,
    /// Whether verification succeeded (it must, for every row).
    pub verified: bool,
}

/// Verifies every fixture `runs` times and reports the averaged rows.
pub fn table1_rows(runs: u32) -> Vec<Table1Row> {
    let config = VerifierConfig::default();
    fixtures::all()
        .into_iter()
        .map(|f| {
            let mut total = Duration::ZERO;
            let mut verified = true;
            for _ in 0..runs {
                let start = Instant::now();
                let report = verify(&f.program, &config);
                total += start.elapsed();
                verified &= report.verified();
            }
            Table1Row {
                example: f.name,
                data_structure: f.data_structure,
                abstraction: f.abstraction,
                loc: f.program.loc(),
                annotations: f.program.annotation_count(),
                time: total / runs,
                verified,
            }
        })
        .collect()
}

/// Renders rows in the paper's table layout.
pub fn render_table(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:<28} {:<20} {:>5} {:>5} {:>10}  {}\n",
        "Example", "Data structure", "Abstraction", "LOC", "Ann.", "T (ms)", "OK"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<26} {:<28} {:<20} {:>5} {:>5} {:>10.3}  {}\n",
            r.example,
            r.data_structure,
            r.abstraction,
            r.loc,
            r.annotations,
            r.time.as_secs_f64() * 1000.0,
            if r.verified { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_rows_and_everything_verifies() {
        let rows = table1_rows(1);
        assert_eq!(rows.len(), 18);
        assert!(rows.iter().all(|r| r.verified));
        let rendered = render_table(&rows);
        assert!(rendered.contains("Figure 3"));
        assert!(rendered.contains("Key set"));
    }
}
