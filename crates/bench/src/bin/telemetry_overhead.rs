//! Telemetry overhead benchmark.
//!
//! The telemetry layer promises to be free when disabled: every span is
//! one relaxed atomic load. This bin pins that promise three ways on the
//! `scale-map-report-*` stress workloads:
//!
//! 1. **Wall clock**: median verification time with telemetry compiled
//!    in (and disabled, the default) must stay within `--max-overhead`
//!    (default 2%) of the `static_prepass` baseline recorded in the
//!    trajectory file (`prepass_ms` of its last snapshot line). Compared
//!    on the total across workloads — per-workload medians are noisier.
//! 2. **Microbench**: a disabled `span!` must cost under `--max-span-ns`
//!    nanoseconds (default 50 — the real cost is a couple of ns).
//! 3. **Byte identity**: verifying with a capture armed must produce
//!    byte-identical reports to verifying with telemetry off.
//!
//! It also prints the per-span aggregates of the captured (enabled) pass
//! — the same table `commcsl profile` renders — so the bench doubles as
//! the workspace's span-level cost report.
//!
//! Run with `cargo run -p commcsl-bench --release --bin telemetry_overhead
//! -- [--runs N] [--max-overhead X] [--max-span-ns N] [--baseline <path>]
//! [--json <path>]`. Without a readable baseline the wall-clock gate is
//! skipped with a warning (the other two gates still apply).

use std::io::Write;
use std::time::Instant;

use commcsl::server::json::Json;
use commcsl::telemetry::export::by_label;
use commcsl::telemetry::{finish_capture, start_capture};
use commcsl::verifier::report::VerifierConfig;
use commcsl::verifier::verify;

fn main() {
    let opts = parse_args();
    let config = VerifierConfig::default();
    let programs = commcsl_bench::reverify_programs();

    // 1. Disabled-telemetry wall clock, median of `runs` per workload.
    //    Measured before anything arms a capture.
    let mut rows: Vec<(String, f64, String)> = Vec::new();
    for program in &programs {
        let mut samples = Vec::new();
        let mut report_json = String::new();
        for _ in 0..opts.runs {
            let start = Instant::now();
            let report = verify(program, &config);
            samples.push(start.elapsed().as_secs_f64() * 1000.0);
            report_json = report.to_json();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        rows.push((program.name.clone(), median, report_json));
    }

    // 2. Disabled span microbench.
    const SPINS: u64 = 2_000_000;
    let start = Instant::now();
    for _ in 0..SPINS {
        let _guard = commcsl::telemetry::span!("bench.noop");
    }
    let ns_per_span = start.elapsed().as_nanos() as f64 / SPINS as f64;

    // 3. Enabled pass: byte identity + per-span aggregates.
    start_capture();
    let mut identical = true;
    for (program, (_, _, disabled_json)) in programs.iter().zip(&rows) {
        let report = verify(program, &config);
        identical &= report.to_json() == *disabled_json;
    }
    let capture = finish_capture();

    let baseline = opts.baseline_path.as_deref().and_then(read_baseline);

    println!("telemetry overhead benchmark — {} run(s) per workload\n", opts.runs);
    println!(
        "{:<28} {:>13} {:>13} {:>9}",
        "workload", "baseline (ms)", "measured (ms)", "overhead"
    );
    let mut measured_total = 0.0;
    let mut baseline_total = 0.0;
    for (name, median, _) in &rows {
        measured_total += median;
        let base = baseline.as_ref().and_then(|b| {
            b.iter().find(|(n, _)| n == name).map(|(_, ms)| *ms)
        });
        match base {
            Some(base_ms) => {
                baseline_total += base_ms;
                println!(
                    "{name:<28} {base_ms:>13.3} {median:>13.3} {:>8.1}%",
                    (median / base_ms - 1.0) * 100.0
                );
            }
            None => println!("{name:<28} {:>13} {median:>13.3} {:>9}", "-", "-"),
        }
    }
    println!("\ndisabled span cost: {ns_per_span:.1} ns");
    println!("reports byte-identical with a capture armed: {identical}");

    println!("\nper-span aggregates of the captured pass:");
    println!("{:<24} {:>8} {:>12} {:>12}", "span", "count", "total ms", "self ms");
    for stat in by_label(&capture) {
        println!(
            "{:<24} {:>8} {:>12.3} {:>12.3}",
            stat.label,
            stat.count,
            stat.total_ns as f64 / 1e6,
            stat.self_ns as f64 / 1e6,
        );
    }

    // Gates, hard failures before any snapshot is written.
    if !identical {
        die("reports diverged between captured and disabled verification");
    }
    if ns_per_span > opts.max_span_ns {
        die(&format!(
            "disabled span costs {ns_per_span:.1} ns, above the {:.0} ns ceiling",
            opts.max_span_ns
        ));
    }
    let overhead = if baseline_total > 0.0 {
        let overhead = measured_total / baseline_total - 1.0;
        println!(
            "\ntotal: {baseline_total:.3} ms baseline, {measured_total:.3} ms \
             measured ({:+.1}% overhead, {:.1}% allowed)",
            overhead * 100.0,
            opts.max_overhead * 100.0
        );
        if overhead > opts.max_overhead {
            die(&format!(
                "disabled-telemetry overhead {:.1}% exceeds the {:.1}% ceiling",
                overhead * 100.0,
                opts.max_overhead * 100.0
            ));
        }
        Some(overhead)
    } else {
        eprintln!(
            "telemetry_overhead: warning: no `static_prepass` baseline found \
             ({}); wall-clock gate skipped",
            opts.baseline_path.as_deref().unwrap_or("no --baseline given")
        );
        None
    };

    if let Some(path) = &opts.json_path {
        let row_json: Vec<String> = rows
            .iter()
            .map(|(name, median, _)| {
                let base = baseline.as_ref().and_then(|b| {
                    b.iter().find(|(n, _)| n == name).map(|(_, ms)| *ms)
                });
                format!(
                    "{{\"example\":{},\"baseline_ms\":{},\"measured_ms\":{median:.6}}}",
                    commcsl::verifier::report::json_string(name),
                    base.map(|b| format!("{b:.6}")).unwrap_or("null".into()),
                )
            })
            .collect();
        let snapshot = format!(
            "{{\"bench\":\"telemetry_overhead\",\"runs\":{},\"ns_per_span\":{ns_per_span:.2},\
             \"overhead\":{},\"identical\":{identical},\"rows\":[{}]}}",
            opts.runs,
            overhead.map(|o| format!("{o:.4}")).unwrap_or("null".into()),
            row_json.join(","),
        );
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
        writeln!(file, "{snapshot}")
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("appended snapshot to {path}");
    }
}

/// The `(example, prepass_ms)` rows of the last `static_prepass` snapshot
/// line in the trajectory file, if any.
fn read_baseline(path: &str) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let line = text
        .lines()
        .rfind(|l| l.contains("\"bench\":\"static_prepass\""))?;
    let doc = Json::parse(line).ok()?;
    let rows = doc.get("rows")?.as_arr()?;
    let baseline: Vec<(String, f64)> = rows
        .iter()
        .filter_map(|row| {
            Some((
                row.get("example")?.as_str()?.to_owned(),
                row.get("prepass_ms")?.as_num()?,
            ))
        })
        .collect();
    (!baseline.is_empty()).then_some(baseline)
}

struct Opts {
    runs: u32,
    max_overhead: f64,
    max_span_ns: f64,
    baseline_path: Option<String>,
    json_path: Option<String>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        runs: 5,
        max_overhead: 0.02,
        max_span_ns: 50.0,
        baseline_path: Some("BENCH_table1.json".into()),
        json_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--runs" => {
                opts.runs = value("--runs")
                    .parse()
                    .unwrap_or_else(|_| die("--runs needs a positive integer"));
                if opts.runs == 0 {
                    die("--runs needs a positive integer");
                }
            }
            "--max-overhead" => {
                opts.max_overhead = value("--max-overhead")
                    .parse()
                    .unwrap_or_else(|_| die("--max-overhead needs a number"));
            }
            "--max-span-ns" => {
                opts.max_span_ns = value("--max-span-ns")
                    .parse()
                    .unwrap_or_else(|_| die("--max-span-ns needs a number"));
            }
            "--baseline" => opts.baseline_path = Some(value("--baseline")),
            "--json" => opts.json_path = Some(value("--json")),
            other => die(&format!(
                "unknown option `{other}` (try --runs N, --max-overhead X, \
                 --max-span-ns N, --baseline PATH, --json PATH)"
            )),
        }
    }
    opts
}

fn die(message: &str) -> ! {
    eprintln!("telemetry_overhead: {message}");
    std::process::exit(1);
}
