//! Incremental-vs-fresh solver backend benchmark.
//!
//! Records the solver-session event stream of the obligation-heaviest
//! workloads (Table 1 fixtures plus `scale-*` stress programs) and
//! replays each identical stream through both backends — `fresh`
//! rebuilds all congruence/arithmetic state for every obligation,
//! `incremental` keeps per-scope solver sessions on a backtrackable
//! congruence closure — reporting per-workload median times plus the
//! median speedup. Before timing anything it pins correctness: replayed
//! verdict streams must agree, and both backends, driven through the
//! unified `Verifier` API, must produce report JSON byte-identical to
//! the legacy free-function path over the full corpus (fixtures +
//! rejected variants + stress programs).
//!
//! Run with `cargo run -p commcsl-bench --release --bin incremental_solver --
//! [--runs N] [--top K] [--min-speedup X] [--json <path>]`. With
//! `--json`, one `incremental_solver` snapshot line is appended to the
//! trajectory file (conventionally `BENCH_table1.json`). Exits non-zero
//! when verdicts diverge or the median speedup falls below
//! `--min-speedup` (default 1.3).

use std::io::Write;

use commcsl_bench::{incremental_bench, incremental_json};

fn main() {
    let (runs, top, min_speedup, json_path) = parse_args();

    let run = incremental_bench(runs, top);

    println!(
        "incremental solver benchmark — top {} workloads by obligation count, \
         replayed {runs} time(s) per backend\n",
        run.rows.len()
    );
    println!(
        "{:<28} {:>6} {:>12} {:>14} {:>9}",
        "workload", "checks", "fresh (ms)", "increm. (ms)", "speedup"
    );
    for row in &run.rows {
        println!(
            "{:<28} {:>6} {:>12.3} {:>14.3} {:>8.2}x",
            row.example,
            row.checks,
            row.fresh_ms,
            row.incremental_ms,
            row.speedup()
        );
    }
    println!(
        "\nmedian speedup: {:.2}x\nverdicts byte-identical across backends \
         and the legacy path: {}",
        run.median_speedup, run.identical
    );

    // Gates first: a failing run must not pollute the committed perf
    // trajectory with its snapshot.
    if !run.identical {
        die("backend verdicts diverged — the incremental backend is wrong");
    }
    if run.median_speedup < min_speedup {
        die(&format!(
            "median speedup {:.2}x is below the {min_speedup:.2}x floor",
            run.median_speedup
        ));
    }

    if let Some(path) = json_path {
        let snapshot = incremental_json(&run, runs);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
        writeln!(file, "{snapshot}")
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("appended snapshot to {path}");
    }

}

fn parse_args() -> (u32, usize, f64, Option<String>) {
    let mut runs = 5u32;
    let mut top = 5usize;
    let mut min_speedup = 1.3f64;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--runs" => {
                runs = value("--runs")
                    .parse()
                    .unwrap_or_else(|_| die("--runs needs a positive integer"));
                if runs == 0 {
                    die("--runs needs a positive integer");
                }
            }
            "--top" => {
                top = value("--top")
                    .parse()
                    .unwrap_or_else(|_| die("--top needs a positive integer"));
            }
            "--min-speedup" => {
                min_speedup = value("--min-speedup")
                    .parse()
                    .unwrap_or_else(|_| die("--min-speedup needs a number"));
            }
            "--json" => json_path = Some(value("--json")),
            other => die(&format!(
                "unknown option `{other}` (try --runs N, --top K, \
                 --min-speedup X, --json PATH)"
            )),
        }
    }
    (runs, top, min_speedup, json_path)
}

fn die(message: &str) -> ! {
    eprintln!("incremental_solver: {message}");
    std::process::exit(1);
}
