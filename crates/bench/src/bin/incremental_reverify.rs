//! Edit-loop (workspace re-verification) benchmark.
//!
//! Opens each `scale-map-report-*` stress program (check-heavy audit
//! outputs — a deliberately different regime from the `scale-map-audit-*`
//! workloads of `incremental_solver`) as a workspace document, then
//! pushes a stream of single-statement edits through
//! `Workspace::update_document`: every edit misses the program-tier
//! cache (it is a new revision) but replays all undirtied obligations
//! from the obligation tier, so only the dirty cone touches the solver.
//! Reported per workload: the cold-open time, the median per-edit
//! re-verification time, the reuse split, and the cold/edit speedup.
//!
//! Correctness is pinned before any number is printed: every report —
//! cold and after each edit — must be byte-identical to cold
//! whole-program verification of the same revision.
//!
//! Run with `cargo run -p commcsl-bench --release --bin incremental_reverify --
//! [--edits N] [--min-speedup X] [--json <path>]`. With `--json`, one
//! `incremental_reverify` snapshot line is appended to the trajectory
//! file (conventionally `BENCH_table1.json`). Exits non-zero when
//! reports diverge or the median speedup falls below `--min-speedup`
//! (default 5).

use std::io::Write;

use commcsl_bench::{reverify_bench, reverify_json};

fn main() {
    let (edits, min_speedup, json_path) = parse_args();

    let run = reverify_bench(edits);

    println!(
        "incremental re-verification benchmark — {edits} single-statement \
         edit(s) per workload\n"
    );
    println!(
        "{:<28} {:>6} {:>10} {:>10} {:>7} {:>8} {:>9}",
        "workload", "oblig.", "cold (ms)", "edit (ms)", "reused", "checked", "speedup"
    );
    for row in &run.rows {
        println!(
            "{:<28} {:>6} {:>10.3} {:>10.3} {:>7} {:>8} {:>8.2}x",
            row.example,
            row.obligations,
            row.cold_ms,
            row.edit_ms,
            row.reused,
            row.checked,
            row.speedup()
        );
    }
    println!(
        "\nmedian edit-loop speedup: {:.2}x\nreports byte-identical to cold \
         whole-program verification: {}",
        run.median_speedup, run.identical
    );

    // Gates first: a failing run must not pollute the committed perf
    // trajectory with its snapshot.
    if !run.identical {
        die("incremental reports diverged from cold verification");
    }
    if run.median_speedup < min_speedup {
        die(&format!(
            "median speedup {:.2}x is below the {min_speedup:.2}x floor",
            run.median_speedup
        ));
    }

    if let Some(path) = json_path {
        let snapshot = reverify_json(&run, edits);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
        writeln!(file, "{snapshot}")
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("appended snapshot to {path}");
    }
}

fn parse_args() -> (u32, f64, Option<String>) {
    let mut edits = 20u32;
    let mut min_speedup = 5.0f64;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--edits" => {
                edits = value("--edits")
                    .parse()
                    .unwrap_or_else(|_| die("--edits needs a positive integer"));
                if edits == 0 {
                    die("--edits needs a positive integer");
                }
            }
            "--min-speedup" => {
                min_speedup = value("--min-speedup")
                    .parse()
                    .unwrap_or_else(|_| die("--min-speedup needs a number"));
            }
            "--json" => json_path = Some(value("--json")),
            other => die(&format!(
                "unknown option `{other}` (try --edits N, --min-speedup X, \
                 --json PATH)"
            )),
        }
    }
    (edits, min_speedup, json_path)
}

fn die(message: &str) -> ! {
    eprintln!("incremental_reverify: {message}");
    std::process::exit(1);
}
