//! Regenerates Table 1 of the paper: verifies all 18 evaluation examples
//! five times each (as in the paper) and prints the averaged table.
//!
//! The suite runs through the parallel batch-verification pipeline
//! (`commcsl-verifier::batch`); use `--threads 1` for the paper's
//! sequential regime. With `--json <path>`, one single-line JSON snapshot
//! of the run is *appended* to `<path>` (conventionally
//! `BENCH_table1.json`), building up a perf trajectory run over run.
//!
//! Run with `cargo run -p commcsl-bench --release --bin table1 --
//! [--runs N] [--threads N] [--json <path>]`.

use std::io::Write;

use commcsl::verifier::batch::BatchConfig;
use commcsl_bench::{render_table, table1_json, table1_rows_parallel};

fn main() {
    let (runs, threads, json_path) = parse_args();
    let rows = table1_rows_parallel(runs, threads);
    let effective = BatchConfig::with_threads(threads).effective_threads(rows.len());
    println!(
        "Table 1 (reproduction) — verification times averaged over {runs} runs, \
         batch-verified on {effective} thread(s)"
    );
    if effective > 1 {
        println!(
            "(times include multicore contention; use --threads 1 for the \
             paper's sequential regime)"
        );
    }
    println!();
    print!("{}", render_table(&rows));
    let all_ok = rows.iter().all(|r| r.verified);
    println!(
        "\n{} / {} examples verified",
        rows.iter().filter(|r| r.verified).count(),
        rows.len()
    );
    if let Some(path) = json_path {
        let snapshot = table1_json(&rows, runs, threads);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
        writeln!(file, "{snapshot}")
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("appended snapshot to {path}");
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}

/// Parses `[--runs N] [--threads N] [--json <path>]`; defaults: 5 runs,
/// all CPUs, no snapshot.
fn parse_args() -> (u32, usize, Option<String>) {
    let mut runs = 5u32;
    let mut threads = 0usize;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| die(&format!("{name} needs a number")))
        };
        match arg.as_str() {
            "--runs" => {
                runs = u32::try_from(take("--runs"))
                    .ok()
                    .filter(|&r| r > 0)
                    .unwrap_or_else(|| die("--runs needs a positive number"));
            }
            "--threads" => {
                threads = usize::try_from(take("--threads"))
                    .unwrap_or_else(|_| die("--threads needs a reasonable number"));
            }
            "--json" => {
                json_path =
                    Some(args.next().unwrap_or_else(|| die("--json needs a path")));
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    (runs, threads, json_path)
}

fn die(msg: &str) -> ! {
    eprintln!("table1: {msg}\nusage: table1 [--runs N] [--threads N] [--json <path>]");
    std::process::exit(2);
}
