//! Regenerates Table 1 of the paper: verifies all 18 evaluation examples
//! five times each (as in the paper) and prints the averaged table.
//!
//! Run with `cargo run -p commcsl-bench --release --bin table1`.

use commcsl_bench::{render_table, table1_rows};

fn main() {
    let rows = table1_rows(5);
    println!("Table 1 (reproduction) — verification times averaged over 5 runs\n");
    print!("{}", render_table(&rows));
    let all_ok = rows.iter().all(|r| r.verified);
    println!(
        "\n{} / {} examples verified",
        rows.iter().filter(|r| r.verified).count(),
        rows.len()
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
