//! Cold-vs-warm verification benchmark for the content-addressed verdict
//! cache (`commcsl_verifier::cache`, the engine behind `commcsl serve`).
//!
//! Three passes over the full corpus (18 Table 1 fixtures + the rejected
//! variants): **cold** (empty cache — full symbolic execution), **warm**
//! (same process — in-memory tier), and **restart** (fresh verifier over
//! the same cache directory — on-disk tier, simulating a daemon restart).
//! Every cached verdict is checked byte-identical to direct verification.
//!
//! Run with `cargo run -p commcsl-bench --release --bin cold_warm --
//! [--threads N] [--min-speedup X] [--json <path>]`. With `--json`, one
//! snapshot line is appended to the trajectory file (conventionally
//! `BENCH_table1.json`). Exits non-zero when verdicts diverge, a warm
//! pass misses the cache, or the warm speedup falls below `--min-speedup`
//! (default 10).

use std::io::Write;

use commcsl_bench::{cold_warm_bench, cold_warm_json};

fn main() {
    let (threads, min_speedup, json_path) = parse_args();

    let cache_dir = std::env::temp_dir().join(format!(
        "commcsl-cold-warm-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let run = cold_warm_bench(threads, &cache_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!(
        "cold/warm cache benchmark — {} programs, {} thread(s)\n\
         \n\
         cold    (no cache, full verification): {:>10.3} ms\n\
         warm    (in-memory tier):              {:>10.3} ms  ({:.1}x)\n\
         restart (on-disk tier):                {:>10.3} ms  ({:.1}x)\n\
         \n\
         verdicts byte-identical across passes: {}\n\
         warm passes fully served from cache:   {}",
        run.programs,
        if threads == 0 { "auto".to_owned() } else { threads.to_string() },
        run.cold_ms,
        run.warm_ms,
        run.speedup_warm(),
        run.restart_ms,
        run.speedup_restart(),
        run.identical,
        run.fully_cached,
    );

    if let Some(path) = json_path {
        let snapshot = cold_warm_json(&run, threads);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
        writeln!(file, "{snapshot}")
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("\nappended snapshot to {path}");
    }

    if !run.identical || !run.fully_cached {
        eprintln!("cold_warm: FAILED — cache served wrong or uncached verdicts");
        std::process::exit(1);
    }
    if run.speedup_warm() < min_speedup {
        eprintln!(
            "cold_warm: FAILED — warm speedup {:.1}x below the {min_speedup:.1}x floor",
            run.speedup_warm()
        );
        std::process::exit(1);
    }
}

/// Parses `[--threads N] [--min-speedup X] [--json <path>]`.
fn parse_args() -> (usize, f64, Option<String>) {
    let mut threads = 0usize;
    let mut min_speedup = 10.0f64;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--min-speedup" => {
                min_speedup = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--min-speedup needs a number"));
            }
            "--json" => {
                json_path =
                    Some(args.next().unwrap_or_else(|| die("--json needs a path")));
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    (threads, min_speedup, json_path)
}

fn die(msg: &str) -> ! {
    eprintln!(
        "cold_warm: {msg}\nusage: cold_warm [--threads N] [--min-speedup X] [--json <path>]"
    );
    std::process::exit(2);
}
