//! Static low-ness pre-pass benchmark.
//!
//! Verifies each `scale-map-report-*` stress program with the pre-pass on
//! (the default) and off, reporting how many solver checks the pre-pass
//! avoided and the wall-clock delta. Correctness is pinned before any
//! number is printed: the two reports must be byte-identical for every
//! workload.
//!
//! Run with `cargo run -p commcsl-bench --release --bin static_prepass --
//! [--runs N] [--min-discharge X] [--json <path>]`. With `--json`, one
//! `static_prepass` snapshot line is appended to the trajectory file
//! (conventionally `BENCH_table1.json`). Exits non-zero when reports
//! diverge or any workload's statically-discharged fraction falls below
//! `--min-discharge` (default 0.15).

use std::io::Write;

use commcsl_bench::{static_prepass_bench, static_prepass_json};

fn main() {
    let (runs, min_discharge, json_path) = parse_args();

    let run = static_prepass_bench(runs);

    println!("static pre-pass benchmark — {runs} run(s) per workload\n");
    println!(
        "{:<28} {:>6} {:>7} {:>9} {:>11} {:>12} {:>10}",
        "workload", "oblig.", "static", "fraction", "solver (ms)", "prepass (ms)", "delta (ms)"
    );
    for row in &run.rows {
        println!(
            "{:<28} {:>6} {:>7} {:>8.1}% {:>11.3} {:>12.3} {:>10.3}",
            row.example,
            row.obligations,
            row.statically_proven,
            row.discharge_fraction() * 100.0,
            row.solver_ms,
            row.prepass_ms,
            row.delta_ms(),
        );
    }
    println!(
        "\nminimum discharge fraction: {:.1}%\nreports byte-identical with \
         the pre-pass on and off: {}",
        run.min_discharge * 100.0,
        run.identical
    );

    // Gates first: a failing run must not pollute the committed perf
    // trajectory with its snapshot.
    if !run.identical {
        die("pre-pass reports diverged from solver-only verification");
    }
    if run.min_discharge < min_discharge {
        die(&format!(
            "discharge fraction {:.1}% is below the {:.1}% floor",
            run.min_discharge * 100.0,
            min_discharge * 100.0
        ));
    }

    if let Some(path) = json_path {
        let snapshot = static_prepass_json(&run, runs);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
        writeln!(file, "{snapshot}")
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("appended snapshot to {path}");
    }
}

fn parse_args() -> (u32, f64, Option<String>) {
    let mut runs = 5u32;
    let mut min_discharge = 0.15f64;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--runs" => {
                runs = value("--runs")
                    .parse()
                    .unwrap_or_else(|_| die("--runs needs a positive integer"));
                if runs == 0 {
                    die("--runs needs a positive integer");
                }
            }
            "--min-discharge" => {
                min_discharge = value("--min-discharge")
                    .parse()
                    .unwrap_or_else(|_| die("--min-discharge needs a number"));
            }
            "--json" => json_path = Some(value("--json")),
            other => die(&format!(
                "unknown option `{other}` (try --runs N, --min-discharge X, \
                 --json PATH)"
            )),
        }
    }
    (runs, min_discharge, json_path)
}

fn die(message: &str) -> ! {
    eprintln!("static_prepass: {message}");
    std::process::exit(1);
}
