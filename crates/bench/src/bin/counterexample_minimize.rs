//! Counterexample-minimization and proof-core overhead benchmark.
//!
//! The two explanation knobs added for the editor workflow promise to be
//! cheap enough to leave on in an interactive session. This bin pins
//! those promises on the checked-in workloads:
//!
//! 1. **Minimization slowdown**: best-of-N verification time of the rejected
//!    fixture set with `minimize_counterexamples` on must stay within
//!    `--max-slowdown` (default 3x) of the plain run. The ddmin loop
//!    re-runs the falsifier per probe, so a multiplicative bound is the
//!    honest shape — but it must not be unbounded.
//! 2. **Core-tracking overhead**: best-of-N verification time of the
//!    `scale-map-report-*` stress programs with `proof_cores` on must
//!    stay within `--max-core-overhead` (default 5%) of the plain run —
//!    core tracking is bookkeeping, not solving.
//! 3. **Verdict identity**: neither knob may change any per-obligation
//!    status or failure reason, and a minimized witness never binds more
//!    variables than the plain one; at least one rejected workload must
//!    shrink strictly (the knob has to *do* something).
//!
//! Run with `cargo run -p commcsl-bench --release --bin
//! counterexample_minimize -- [--runs N] [--max-slowdown X]
//! [--max-core-overhead X] [--json <path>]`.

use std::io::Write;
use std::time::Instant;

use commcsl::fixtures::rejected;
use commcsl::verifier::report::{ObligationStatus, VerifierConfig};
use commcsl::verifier::{verify, AnnotatedProgram, VerifierReport};

fn main() {
    let opts = parse_args();
    let plain = VerifierConfig::default();
    let minimizing = VerifierConfig {
        minimize_counterexamples: true,
        ..VerifierConfig::default()
    };
    let coring = VerifierConfig {
        proof_cores: true,
        ..VerifierConfig::default()
    };

    // 1. Rejected fixtures: plain vs minimizing.
    println!(
        "counterexample minimization benchmark — {} run(s) per workload\n",
        opts.runs
    );
    println!(
        "{:<28} {:>11} {:>14} {:>9} {:>14}",
        "rejected workload", "plain (ms)", "minimize (ms)", "slowdown", "witness"
    );
    let mut plain_total = 0.0;
    let mut min_total = 0.0;
    let mut strictly_smaller = 0usize;
    let mut min_rows: Vec<String> = Vec::new();
    for (name, program) in rejected::all_programs() {
        let (plain_ms, plain_report) = best_ms(&program, &plain, opts.runs);
        let (min_ms, min_report) = best_ms(&program, &minimizing, opts.runs);
        check_verdicts(name, &plain_report, &min_report);
        let (before, after) = witness_sizes(name, &plain_report, &min_report);
        if after < before {
            strictly_smaller += 1;
        }
        plain_total += plain_ms;
        min_total += min_ms;
        println!(
            "{name:<28} {plain_ms:>11.3} {min_ms:>14.3} {:>8.2}x {:>8} -> {after}",
            min_ms / plain_ms,
            before,
        );
        min_rows.push(format!(
            "{{\"example\":{},\"plain_ms\":{plain_ms:.6},\"minimize_ms\":{min_ms:.6},\
             \"bindings_before\":{before},\"bindings_after\":{after}}}",
            commcsl::verifier::report::json_string(name),
        ));
    }
    let slowdown = min_total / plain_total;

    // 2. Scale workloads: plain vs core-tracking.
    println!(
        "\n{:<28} {:>11} {:>12} {:>9}",
        "scale workload", "plain (ms)", "cores (ms)", "overhead"
    );
    let mut scale_plain_total = 0.0;
    let mut core_total = 0.0;
    let mut core_rows: Vec<String> = Vec::new();
    for program in commcsl_bench::reverify_programs() {
        let (plain_ms, plain_report) = best_ms(&program, &plain, opts.runs);
        let (core_ms, core_report) = best_ms(&program, &coring, opts.runs);
        check_verdicts(&program.name, &plain_report, &core_report);
        scale_plain_total += plain_ms;
        core_total += core_ms;
        println!(
            "{:<28} {plain_ms:>11.3} {core_ms:>12.3} {:>8.1}%",
            program.name,
            (core_ms / plain_ms - 1.0) * 100.0
        );
        core_rows.push(format!(
            "{{\"example\":{},\"plain_ms\":{plain_ms:.6},\"cores_ms\":{core_ms:.6}}}",
            commcsl::verifier::report::json_string(&program.name),
        ));
    }
    let core_overhead = core_total / scale_plain_total - 1.0;

    println!(
        "\nminimization: {plain_total:.3} ms plain, {min_total:.3} ms minimizing \
         ({slowdown:.2}x, {:.1}x allowed), {strictly_smaller} witness(es) shrank strictly",
        opts.max_slowdown
    );
    println!(
        "core tracking: {scale_plain_total:.3} ms plain, {core_total:.3} ms with cores \
         ({:+.1}% overhead, {:.1}% allowed)",
        core_overhead * 100.0,
        opts.max_core_overhead * 100.0
    );

    // Gates, hard failures before any snapshot is written.
    if strictly_smaller == 0 {
        die("no rejected witness shrank strictly under minimization");
    }
    if slowdown > opts.max_slowdown {
        die(&format!(
            "minimization slowdown {slowdown:.2}x exceeds the {:.1}x ceiling",
            opts.max_slowdown
        ));
    }
    if core_overhead > opts.max_core_overhead {
        die(&format!(
            "core-tracking overhead {:.1}% exceeds the {:.1}% ceiling",
            core_overhead * 100.0,
            opts.max_core_overhead * 100.0
        ));
    }

    if let Some(path) = &opts.json_path {
        let snapshot = format!(
            "{{\"bench\":\"counterexample_minimize\",\"runs\":{},\
             \"minimize_slowdown\":{slowdown:.4},\"core_overhead\":{core_overhead:.4},\
             \"strictly_smaller\":{strictly_smaller},\
             \"minimize_rows\":[{}],\"core_rows\":[{}]}}",
            opts.runs,
            min_rows.join(","),
            core_rows.join(","),
        );
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
        writeln!(file, "{snapshot}")
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("appended snapshot to {path}");
    }
}

/// Best (minimum) wall-clock of `runs` verifications plus the last
/// report. The minimum is the noise-robust estimator for an overhead
/// ceiling: scheduler jitter only ever inflates a sample, so comparing
/// minima compares the actual work added by a knob.
fn best_ms(
    program: &AnnotatedProgram,
    config: &VerifierConfig,
    runs: u32,
) -> (f64, VerifierReport) {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..runs {
        let start = Instant::now();
        report = Some(verify(program, config));
        best = best.min(start.elapsed().as_secs_f64() * 1000.0);
    }
    (best, report.expect("runs > 0"))
}

/// Per-obligation statuses and failure reasons must match exactly — the
/// explanation knobs are not allowed to flip or reword a verdict.
fn check_verdicts(name: &str, plain: &VerifierReport, knobbed: &VerifierReport) {
    if plain.obligations.len() != knobbed.obligations.len() {
        die(&format!("{name}: obligation count changed under an explanation knob"));
    }
    for (p, k) in plain.obligations.iter().zip(&knobbed.obligations) {
        let same = match (&p.status, &k.status) {
            (ObligationStatus::Proved, ObligationStatus::Proved) => true,
            (ObligationStatus::Failed(pf), ObligationStatus::Failed(kf)) => {
                pf.reason == kf.reason
            }
            _ => false,
        };
        if !same {
            die(&format!("{name}: verdict changed under an explanation knob"));
        }
    }
}

/// Total counterexample bindings before and after minimization; dies if
/// any single witness grew.
fn witness_sizes(name: &str, plain: &VerifierReport, min: &VerifierReport) -> (usize, usize) {
    let mut before = 0;
    let mut after = 0;
    for (p, m) in plain.obligations.iter().zip(&min.obligations) {
        if let (ObligationStatus::Failed(pf), ObligationStatus::Failed(mf)) =
            (&p.status, &m.status)
        {
            if let (Some(full), Some(small)) = (&pf.counterexample, &mf.counterexample) {
                if small.bindings.len() > full.bindings.len() {
                    die(&format!("{name}: a minimized witness grew"));
                }
                before += full.bindings.len();
                after += small.bindings.len();
            }
        }
    }
    (before, after)
}

struct Opts {
    runs: u32,
    max_slowdown: f64,
    max_core_overhead: f64,
    json_path: Option<String>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        runs: 5,
        max_slowdown: 3.0,
        max_core_overhead: 0.05,
        json_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--runs" => {
                opts.runs = value("--runs")
                    .parse()
                    .unwrap_or_else(|_| die("--runs needs a positive integer"));
                if opts.runs == 0 {
                    die("--runs needs a positive integer");
                }
            }
            "--max-slowdown" => {
                opts.max_slowdown = value("--max-slowdown")
                    .parse()
                    .unwrap_or_else(|_| die("--max-slowdown needs a number"));
            }
            "--max-core-overhead" => {
                opts.max_core_overhead = value("--max-core-overhead")
                    .parse()
                    .unwrap_or_else(|_| die("--max-core-overhead needs a number"));
            }
            "--json" => opts.json_path = Some(value("--json")),
            other => die(&format!(
                "unknown option `{other}` (try --runs N, --max-slowdown X, \
                 --max-core-overhead X, --json PATH)"
            )),
        }
    }
    opts
}

fn die(message: &str) -> ! {
    eprintln!("counterexample_minimize: {message}");
    std::process::exit(1);
}
