//! Sustained-load benchmark: concurrent clients against a live daemon.
//!
//! Boots a real verification daemon on a temporary Unix socket, drives
//! `--clients` concurrent connections through an interleaved v2
//! workload (`verify` over the `.csl` corpus and `scale-map-report-*`
//! stress programs, `open`/`update` workspace edits, `status` polls),
//! and reports throughput plus per-op p50/p99 from *both* sides of the
//! wire: the clients' own measurements and the daemon's service
//! histograms for the same traffic.
//!
//! Gates (checked before any snapshot is appended):
//!
//! * throughput ≥ `--min-rps` (CI floor),
//! * per-op p99 ≥ p50 and client p99 ≤ `--max-p99-ms`,
//! * daemon p50 within 20% (or a load-derived queueing slack, ≥ 5 ms)
//!   of client p50 — skipped under `--deterministic`, where client
//!   durations are synthetic,
//! * every verify verdict as expected, every response stamped with a
//!   request id, event-log sequence numbers strictly increasing.
//!
//! Run with `cargo run -p commcsl-bench --release --bin loadgen --
//! [--clients N] [--requests N] [--threads N] [--tcp] [--shards N]
//! [--deterministic] [--min-rps X] [--max-p99-ms X] [--json <path>]
//! [--hist-out <path>]`. `--tcp` drives the load over TCP loopback
//! instead of a Unix socket; `--shards N` puts a consistent-hash pool
//! of N shared-nothing verifier shards behind the endpoint (implies
//! `--tcp`). Either flag renames the snapshot to `loadgen_tcp`.
//! With `--json`, one `loadgen` snapshot line is appended to the
//! trajectory file (conventionally `BENCH_table1.json`). With
//! `--hist-out`, the canonical client-side histogram JSON is written to
//! a file — under `--threads 1 --deterministic` it is byte-identical
//! across runs.

use std::io::Write;

use commcsl_bench::loadgen::{loadgen_json, loadgen_run, LoadgenConfig};

fn main() {
    let (config, min_rps, max_p99_ms, json_path, hist_out) = parse_args();

    let run = loadgen_run(&config);

    println!(
        "sustained-load benchmark — {} client(s) x {} request(s), {} \
         daemon thread(s), {}{}\n",
        config.clients,
        config.requests_per_client,
        config.threads,
        if config.tcp || config.shards > 1 {
            format!("tcp x {} shard(s)", config.shards.max(1))
        } else {
            "unix socket".to_owned()
        },
        if config.deterministic {
            ", deterministic durations"
        } else {
            ""
        },
    );
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "op", "count", "client p50", "client p99", "daemon p50", "daemon p99"
    );
    let ms = |ns: u64| ns as f64 / 1e6;
    for op in &run.ops {
        println!(
            "{:<14} {:>8} {:>9.3} ms {:>9.3} ms {:>9.3} ms {:>9.3} ms",
            op.op,
            op.client.count(),
            ms(op.client.quantile(0.5)),
            ms(op.client.quantile(0.99)),
            ms(op.daemon.quantile(0.5)),
            ms(op.daemon.quantile(0.99)),
        );
    }
    println!(
        "\n{} requests in {:.1} ms — {:.1} req/s\nevent log: {} retained, \
         {} dropped, sequences strictly increasing: {}",
        run.requests,
        run.wall_ms,
        run.throughput_rps(),
        run.daemon_events,
        run.daemon_events_dropped,
        run.seqs_strictly_increasing,
    );

    // Gates first: a failing run must not pollute the committed perf
    // trajectory with its snapshot.
    if run.verify_failures > 0 {
        die(&format!("{} verify verdict(s) unexpected", run.verify_failures));
    }
    if !run.request_ids_present {
        die("a response arrived without a request_id");
    }
    if !run.seqs_strictly_increasing {
        die("event-log sequence numbers were not strictly increasing");
    }
    if !run.p99_sane() {
        die("an op's p99 fell below its p50");
    }
    let worst_p99_ms = run
        .ops
        .iter()
        .map(|o| o.client.quantile(0.99))
        .max()
        .unwrap_or(0) as f64
        / 1e6;
    if worst_p99_ms > max_p99_ms {
        die(&format!(
            "client p99 {worst_p99_ms:.3} ms exceeds the {max_p99_ms:.3} ms bound"
        ));
    }
    if run.throughput_rps() < min_rps {
        die(&format!(
            "throughput {:.1} req/s is below the {min_rps:.1} req/s floor",
            run.throughput_rps()
        ));
    }
    if !config.deterministic && !run.p50_agreement() {
        let slack = run.queue_slack_ns();
        for op in &run.ops {
            if !op.p50_agrees(slack) {
                eprintln!(
                    "loadgen: op `{}` daemon p50 {:.3} ms vs client p50 {:.3} ms",
                    op.op,
                    ms(op.daemon.quantile(0.5)),
                    ms(op.client.quantile(0.5)),
                );
            }
        }
        die(&format!(
            "daemon p50 disagrees with client p50 beyond 20% / {:.1} ms queueing slack",
            slack / 1e6
        ));
    }

    if let Some(path) = hist_out {
        std::fs::write(&path, format!("{}\n", run.histogram_json))
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("wrote histogram JSON to {path}");
    }
    if let Some(path) = json_path {
        let snapshot = loadgen_json(&run, &config);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
        writeln!(file, "{snapshot}")
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("appended snapshot to {path}");
    }
}

type Args = (LoadgenConfig, f64, f64, Option<String>, Option<String>);

fn parse_args() -> Args {
    let mut config = LoadgenConfig::default();
    let mut min_rps = 20.0f64;
    let mut max_p99_ms = 5_000.0f64;
    let mut json_path = None;
    let mut hist_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--clients" => {
                config.clients = value("--clients")
                    .parse()
                    .unwrap_or_else(|_| die("--clients needs a positive integer"));
                if config.clients == 0 {
                    die("--clients needs a positive integer");
                }
            }
            "--requests" => {
                config.requests_per_client = value("--requests")
                    .parse()
                    .unwrap_or_else(|_| die("--requests needs a positive integer"));
                if config.requests_per_client == 0 {
                    die("--requests needs a positive integer");
                }
            }
            "--threads" => {
                config.threads = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| die("--threads needs an integer"));
            }
            "--deterministic" => config.deterministic = true,
            "--tcp" => config.tcp = true,
            "--shards" => {
                config.shards = value("--shards")
                    .parse()
                    .unwrap_or_else(|_| die("--shards needs a positive integer"));
                if config.shards == 0 {
                    die("--shards needs a positive integer");
                }
            }
            "--min-rps" => {
                min_rps = value("--min-rps")
                    .parse()
                    .unwrap_or_else(|_| die("--min-rps needs a number"));
            }
            "--max-p99-ms" => {
                max_p99_ms = value("--max-p99-ms")
                    .parse()
                    .unwrap_or_else(|_| die("--max-p99-ms needs a number"));
            }
            "--json" => json_path = Some(value("--json")),
            "--hist-out" => hist_out = Some(value("--hist-out")),
            other => die(&format!(
                "unknown option `{other}` (try --clients N, --requests N, \
                 --threads N, --tcp, --shards N, --deterministic, \
                 --min-rps X, --max-p99-ms X, --json PATH, --hist-out PATH)"
            )),
        }
    }
    (config, min_rps, max_p99_ms, json_path, hist_out)
}

fn die(message: &str) -> ! {
    eprintln!("loadgen: {message}");
    std::process::exit(1);
}
