//! **CommCSL in Rust** — a from-scratch reproduction of
//! *"CommCSL: Proving Information Flow Security for Concurrent Programs
//! using Abstract Commutativity"* (Eilers, Dardinier, Müller; PLDI 2023).
//!
//! The paper's insight: internal timing channels — secret-dependent thread
//! interleavings — cannot influence the final value of shared data if all
//! mutating operations *commute*, and commutativity is only needed *modulo
//! a user-chosen abstraction* of the data that captures exactly what will
//! be made public.
//!
//! This crate is a facade over the workspace:
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`pure`] | `commcsl-pure` | pure values, symbolic terms, rewriting |
//! | [`telemetry`] | `commcsl-telemetry` | tracing spans, counters, trace/flamegraph exporters |
//! | [`smt`] | `commcsl-smt` | the SMT-lite solver (Z3 stand-in) |
//! | [`lang`] | `commcsl-lang` | the concurrent language, schedulers, empirical NI harness |
//! | [`logic`] | `commcsl-logic` | extended heaps, assertions, resource specs, validity |
//! | [`analysis`] | `commcsl-analysis` | dataflow framework, low-ness pre-pass, lint engine |
//! | [`verifier`] | `commcsl-verifier` | the HyperViper-style automated verifier |
//! | [`server`] | `commcsl-server` | the persistent verification daemon and its client |
//! | [`cluster`] | `commcsl-cluster` | TCP shard pool, consistent-hash router, remote obligation cache |
//! | [`lsp`] | `commcsl-lsp` | the editor language server (JSON-RPC over stdio, diagnostics, hover, progress) |
//! | [`fixtures`] | `commcsl-fixtures` | the 18 evaluation examples of Table 1 |
//! | [`front`] | `commcsl-front` | the `.csl` surface language, lowering, pretty-printer, and `commcsl` CLI |
//!
//! # Quickstart
//!
//! ```
//! use commcsl::logic::spec::ResourceSpec;
//! use commcsl::logic::validity::{check_validity, ValidityConfig};
//! use commcsl::verifier::{verify, AnnotatedProgram, VStmt};
//! use commcsl::pure::{Sort, Term};
//!
//! // 1. A resource specification: a shared counter, identity abstraction.
//! let spec = ResourceSpec::counter_add();
//! assert!(check_validity(&spec, &ValidityConfig::default()).is_valid());
//!
//! // 2. A program: two threads add low values; the total is output.
//! let program = AnnotatedProgram::new("quickstart")
//!     .with_resource(spec)
//!     .with_body([
//!         VStmt::input("a", Sort::Int, true),
//!         VStmt::Share { resource: 0, init: Term::int(0) },
//!         VStmt::Par { workers: vec![
//!             vec![VStmt::atomic(0, "Add", Term::var("a"))],
//!             vec![VStmt::atomic(0, "Add", Term::int(2))],
//!         ]},
//!         VStmt::Unshare { resource: 0, into: "total".into() },
//!         VStmt::Output(Term::var("total")),
//!     ]);
//!
//! // 3. Verify: non-interference holds on every schedule and hardware.
//! assert!(verify(&program, &Default::default()).verified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use commcsl_analysis as analysis;
pub use commcsl_cluster as cluster;
pub use commcsl_fixtures as fixtures;
pub use commcsl_front as front;
pub use commcsl_lang as lang;
pub use commcsl_logic as logic;
pub use commcsl_lsp as lsp;
pub use commcsl_pure as pure;
pub use commcsl_server as server;
pub use commcsl_smt as smt;
pub use commcsl_telemetry as telemetry;
pub use commcsl_verifier as verifier;

/// Commonly used items in one import.
pub mod prelude {
    pub use commcsl_lang::ast::Cmd;
    pub use commcsl_lang::interp::{run, RunOutcome};
    pub use commcsl_lang::nicheck::{check_non_interference, NiConfig};
    pub use commcsl_lang::parser::{parse_expr, parse_program};
    pub use commcsl_lang::sched::{RandomSched, RoundRobin, SkewSched};
    pub use commcsl_lang::state::State;
    pub use commcsl_logic::spec::{ActionDef, ActionKind, ResourceSpec};
    pub use commcsl_logic::validity::{check_validity, ValidityConfig};
    pub use commcsl_pure::{Func, Multiset, Sort, Symbol, Term, Value};
    pub use commcsl_smt::{BackendKind, Solver, SolverSession, Verdict};
    pub use commcsl_verifier::{verify, AnnotatedProgram, VStmt, Verifier, VerifierConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable() {
        let t = parse_expr("1 + 2").unwrap();
        assert_eq!(t.eval(&Default::default()).unwrap(), Value::Int(3));
        assert!(check_validity(&ResourceSpec::keyset_map(), &ValidityConfig::default())
            .is_valid());
    }
}
