//! Differential soundness harness for the static low-ness pre-pass
//! (satellite of the `commcsl-analysis` tentpole).
//!
//! The pre-pass claims some obligations without consulting the solver
//! (`ObligationVerdict::StaticallyProven`). Soundness means every such
//! claim is one the solver would also have proved. We pin that
//! *differentially*: for random annotated programs, a run with the
//! pre-pass enabled and a run with it disabled must produce
//! **byte-identical** report JSON — which in particular forces every
//! statically-proven obligation to carry the same `proved: true` the
//! solver-only run computed for it.
//!
//! The generator is deliberately close to the frontend round-trip
//! generator (`crates/front/tests/roundtrip.rs`) so the two harnesses
//! explore the same program space, but it does not need the surface-form
//! restrictions (nothing here is pretty-printed).

use commcsl_logic::spec::{ActionDef, ActionKind, ResourceSpec};
use commcsl_pure::{Func, Sort, Term};
use commcsl_verifier::program::{AnnotatedProgram, VStmt};
use commcsl_verifier::report::VerifierConfig;
use commcsl_verifier::verify_with_stats;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ------------------------------------------------------------- generator

fn gen_int_term(rng: &mut StdRng, vars: &[&str], depth: u32) -> Term {
    let leaf = depth == 0 || rng.gen_range(0..3) == 0;
    if leaf {
        if !vars.is_empty() && rng.gen_range(0..2) == 0 {
            Term::var(vars[rng.gen_range(0..vars.len())])
        } else {
            Term::int(rng.gen_range(-4i64..5))
        }
    } else {
        let a = gen_int_term(rng, vars, depth - 1);
        let b = gen_int_term(rng, vars, depth - 1);
        match rng.gen_range(0..4) {
            0 => Term::add(a, b),
            1 => Term::sub(a, b),
            2 => Term::mul(a, b),
            _ => Term::app(Func::Max, [a, b]),
        }
    }
}

fn gen_bool_term(rng: &mut StdRng, vars: &[&str], depth: u32) -> Term {
    match rng.gen_range(0..6) {
        0 => Term::tt(),
        1 if depth > 0 => Term::not(gen_bool_term(rng, vars, depth - 1)),
        2 if depth > 0 => Term::and([
            gen_bool_term(rng, vars, depth - 1),
            gen_bool_term(rng, vars, depth - 1),
        ]),
        3 if depth > 0 => Term::or([
            gen_bool_term(rng, vars, depth - 1),
            gen_bool_term(rng, vars, depth - 1),
        ]),
        4 => Term::le(
            gen_int_term(rng, vars, depth.saturating_sub(1)),
            gen_int_term(rng, vars, depth.saturating_sub(1)),
        ),
        _ => Term::eq(
            gen_int_term(rng, vars, depth.saturating_sub(1)),
            gen_int_term(rng, vars, depth.saturating_sub(1)),
        ),
    }
}

fn gen_spec(rng: &mut StdRng, index: usize) -> ResourceSpec {
    let n_actions = rng.gen_range(1..3usize);
    let actions: Vec<ActionDef> = (0..n_actions)
        .map(|i| ActionDef {
            name: format!("A{i}").into(),
            kind: if rng.gen_range(0..2) == 0 {
                ActionKind::Shared
            } else {
                ActionKind::Unique
            },
            arg_sort: Sort::Int,
            body: gen_int_term(rng, &["v", "arg"], 2),
            // Bias toward preconditions the pre-pass can discharge
            // (`true`, syntactic `e == e`) so the differential actually
            // exercises the static route, while keeping solver-only
            // shapes in the mix.
            pre: match rng.gen_range(0..4) {
                0 => Term::tt(),
                1 => {
                    let e = gen_int_term(rng, &["arg1", "arg2"], 1);
                    Term::eq(e.clone(), e)
                }
                _ => gen_bool_term(rng, &["arg1", "arg2"], 2),
            },
        })
        .collect();
    ResourceSpec::new(
        format!("spec-{index}"),
        Sort::Int,
        gen_int_term(rng, &["v"], 2),
        actions,
    )
}

fn gen_stmts(rng: &mut StdRng, specs: &[ResourceSpec], depth: u32) -> Vec<VStmt> {
    let n = rng.gen_range(1..4usize);
    (0..n).map(|_| gen_stmt(rng, specs, depth)).collect()
}

fn gen_stmt(rng: &mut StdRng, specs: &[ResourceSpec], depth: u32) -> VStmt {
    let vars = ["x", "y", "z"];
    let var = vars[rng.gen_range(0..vars.len())];
    let resource = rng.gen_range(0..specs.len());
    let action = {
        let actions = &specs[resource].actions;
        actions[rng.gen_range(0..actions.len())].name.clone()
    };
    let max = if depth == 0 { 9 } else { 13 };
    match rng.gen_range(0..max) {
        0 => VStmt::Input {
            var: var.into(),
            sort: Sort::Int,
            low: rng.gen_range(0..2) == 0,
        },
        1 => VStmt::assign(var, gen_int_term(rng, &vars, 2)),
        2 => VStmt::Share {
            resource,
            init: gen_int_term(rng, &[], 1),
        },
        3 => VStmt::atomic(resource, action, gen_int_term(rng, &vars, 1)),
        4 => VStmt::AtomicDeferred {
            resource,
            action,
            arg: gen_int_term(rng, &vars, 1),
        },
        5 => VStmt::Unshare {
            resource,
            into: var.into(),
        },
        6 => VStmt::Output(gen_int_term(rng, &vars, 2)),
        // Outputs of syntactically low shapes: prime static-discharge
        // candidates (`Low(c)` for literal c, `Low(e - e)`, …).
        7 => VStmt::Output(Term::int(rng.gen_range(-4i64..5))),
        8 => {
            let e = gen_int_term(rng, &vars, 1);
            VStmt::Output(Term::sub(e.clone(), e))
        }
        9 => VStmt::If {
            cond: gen_bool_term(rng, &vars, 1),
            then_b: gen_stmts(rng, specs, depth - 1),
            else_b: if rng.gen_range(0..2) == 0 {
                Vec::new()
            } else {
                gen_stmts(rng, specs, depth - 1)
            },
        },
        10 => VStmt::for_range(
            var,
            gen_int_term(rng, &vars, 1),
            gen_int_term(rng, &vars, 1),
            gen_stmts(rng, specs, depth - 1),
        ),
        11 => VStmt::Par {
            workers: (0..rng.gen_range(1..3usize))
                .map(|_| gen_stmts(rng, specs, depth - 1))
                .collect(),
        },
        _ => VStmt::AtomicBatch {
            resource,
            action,
            arg: gen_int_term(rng, &vars, 1),
            count: gen_int_term(rng, &vars, 1),
        },
    }
}

fn gen_program(seed: u64) -> AnnotatedProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_resources = rng.gen_range(1..3usize);
    let resources: Vec<ResourceSpec> =
        (0..n_resources).map(|i| gen_spec(&mut rng, i)).collect();
    let body = gen_stmts(&mut rng, &resources, 2);
    AnnotatedProgram {
        name: format!("prepass-{seed}"),
        resources,
        body,
        spans: Default::default(),
    }
}

// ---------------------------------------------------------- differential

fn configs() -> (VerifierConfig, VerifierConfig) {
    let on = VerifierConfig::default();
    assert!(on.static_prepass, "the pre-pass is on by default");
    let off = VerifierConfig {
        static_prepass: false,
        ..VerifierConfig::default()
    };
    (on, off)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any obligation the analysis claims statically proven must also be
    /// solver-proven: reports with and without the pre-pass are
    /// byte-identical, so a static claim that the solver would refute
    /// would surface as differing `proved` flags.
    #[test]
    fn static_claims_agree_with_the_solver(seed in 0u64..1_000_000_000) {
        let program = gen_program(seed);
        let (on, off) = configs();
        let (report_on, stats_on, _, _) = verify_with_stats(&program, &on);
        let (report_off, stats_off, _, _) = verify_with_stats(&program, &off);

        prop_assert_eq!(
            report_on.to_json(),
            report_off.to_json(),
            "reports diverge with the static pre-pass on (seed {})",
            seed
        );

        // The solver-only run claims nothing statically.
        prop_assert_eq!(stats_off.statically_proven, 0);
        // Both runs settle every obligation exactly once.
        prop_assert_eq!(
            stats_on.statically_proven + stats_on.checked,
            stats_off.checked
        );
        // Every static claim is a *proved* obligation (the pre-pass can
        // never statically "refute"), so the proved count bounds it.
        let proved = report_on
            .obligations
            .iter()
            .filter(|o| matches!(o.status, commcsl_verifier::ObligationStatus::Proved))
            .count();
        prop_assert!(
            stats_on.statically_proven <= proved,
            "{} static claims but only {} proved obligations",
            stats_on.statically_proven,
            proved
        );
    }
}
