//! Workspace sessions: obligation-level incremental re-verification.
//!
//! A [`Workspace`] is the long-lived, edit-aware face of the verifier —
//! the interaction model of an IDE language server or the `commcsl
//! watch` loop. Clients `open` documents (lowered
//! [`AnnotatedProgram`]s), push edits with `update`, and `close` them;
//! every call returns a [`DocOutcome`] whose report is **byte-identical**
//! to cold whole-program verification of the same program under the same
//! configuration.
//!
//! What makes it incremental is the two cache tiers it consults, both
//! living in one (shareable) [`VerdictCache`]:
//!
//! * the **program tier** answers unchanged programs with their whole
//!   cached report ([`program_hash`] address), and
//! * the **obligation tier** answers changed programs obligation by
//!   obligation: [`verify_incremental`](crate::symexec::verify_incremental)
//!   re-discharges only the obligations whose dependency cone the edit
//!   dirtied and replays cached statuses for the rest. A
//!   single-statement edit near the end of a document re-checks one
//!   obligation; everything before it is a key hit.
//!
//! Workspaces share their cache freely: the `commcsl-server` daemon
//! gives every connection its own `Workspace` over one shared cache, so
//! two clients editing different documents (or the same program compiled
//! from different files) serve each other's obligations.
//!
//! Progress is observable: the `*_with` variants stream
//! [`WorkspaceEvent`]s — `Started`, one `Obligation` per settled
//! obligation (with its reuse flag), and `Finished` — which the daemon's
//! protocol-v2 event channel forwards as NDJSON.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cache::{CacheConfig, CacheStats, SharedObligationStore, VerdictCache};
use crate::hash::{program_hash, ProgramHash};
use crate::obligation::{DischargeStats, ObligationVerdict};
use crate::program::AnnotatedProgram;
use crate::report::{ObligationResult, VerifierConfig, VerifierReport};
use crate::symexec::verify_incremental;

/// Configuration of a standalone [`Workspace`].
#[derive(Debug, Clone, Default)]
pub struct WorkspaceConfig {
    /// Per-program verifier configuration (part of every cache address).
    pub verifier: VerifierConfig,
    /// Cache tiers backing the session.
    pub cache: CacheConfig,
}

/// The outcome of one `open`/`update` call.
#[derive(Debug, Clone)]
pub struct DocOutcome {
    /// Document id, as passed to `open`.
    pub doc: String,
    /// Monotonic per-document revision (1 at first open).
    pub revision: u64,
    /// Content address of the checked program.
    pub key: ProgramHash,
    /// The verification report — byte-identical to
    /// [`verify`](crate::symexec::verify) of the same program.
    pub report: VerifierReport,
    /// Wall-clock time for this call.
    pub time: Duration,
    /// `true` when the whole report came from the program tier (no
    /// obligation was even enumerated live).
    pub report_cached: bool,
    /// Obligation-level reuse counters. For a program-tier hit every
    /// obligation counts as reused.
    pub obligations: DischargeStats,
}

/// A progress event of one `open`/`update` call.
#[derive(Debug)]
pub enum WorkspaceEvent<'a> {
    /// Verification of a document revision began.
    Started {
        /// Document id.
        doc: &'a str,
        /// Revision being checked.
        revision: u64,
        /// Content address of the program.
        key: ProgramHash,
    },
    /// One obligation settled (in report order).
    Obligation {
        /// Position in the report's obligation list.
        index: usize,
        /// The settled obligation.
        result: &'a ObligationResult,
        /// How the status was obtained. Program-tier hits replay every
        /// obligation as [`ObligationVerdict::Reused`].
        verdict: ObligationVerdict,
        /// Wall-clock settle time (zero for program-tier replays).
        /// Diagnostic payload only — never part of reports or hashes.
        time: Duration,
    },
    /// The call completed; the outcome is about to be returned.
    Finished {
        /// The completed outcome.
        outcome: &'a DocOutcome,
    },
}

/// Cumulative workspace counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Documents currently open.
    pub documents: u64,
    /// `open`/`update` calls served.
    pub revisions: u64,
    /// Calls answered entirely from the program tier.
    pub report_hits: u64,
    /// Obligation counters summed over every incremental run.
    pub obligations: DischargeStats,
}

#[derive(Debug)]
struct DocState {
    key: ProgramHash,
    revision: u64,
}

/// A long-lived verification session over a set of open documents. See
/// the module docs.
#[derive(Debug)]
pub struct Workspace {
    config: VerifierConfig,
    cache: Arc<Mutex<VerdictCache>>,
    docs: BTreeMap<String, DocState>,
    stats: WorkspaceStats,
}

impl Workspace {
    /// A standalone workspace with its own cache.
    pub fn new(config: WorkspaceConfig) -> Self {
        Workspace::with_shared_cache(
            config.verifier,
            Arc::new(Mutex::new(VerdictCache::new(config.cache))),
        )
    }

    /// A workspace over a shared cache (daemon sessions all point at the
    /// server's cache; see
    /// [`CachedVerifier::shared_cache`](crate::cache::CachedVerifier::shared_cache)).
    pub fn with_shared_cache(
        config: VerifierConfig,
        cache: Arc<Mutex<VerdictCache>>,
    ) -> Self {
        Workspace {
            config,
            cache,
            docs: BTreeMap::new(),
            stats: WorkspaceStats::default(),
        }
    }

    /// The verifier configuration every document is checked under.
    pub fn config(&self) -> &VerifierConfig {
        &self.config
    }

    /// The shared cache handle.
    pub fn shared_cache(&self) -> Arc<Mutex<VerdictCache>> {
        Arc::clone(&self.cache)
    }

    /// Ids of the currently open documents, in order.
    pub fn open_documents(&self) -> impl Iterator<Item = &str> {
        self.docs.keys().map(String::as_str)
    }

    /// The content address of an open document's last-checked revision.
    pub fn document_key(&self, doc: &str) -> Option<ProgramHash> {
        self.docs.get(doc).map(|d| d.key)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Cache counters of the backing [`VerdictCache`].
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("verdict cache poisoned").stats()
    }

    /// Opens (or reopens) a document and verifies it.
    pub fn open_document(
        &mut self,
        doc: impl Into<String>,
        program: &AnnotatedProgram,
    ) -> DocOutcome {
        self.open_document_with(doc, program, &mut |_| {})
    }

    /// [`Workspace::open_document`] with a progress-event stream.
    pub fn open_document_with(
        &mut self,
        doc: impl Into<String>,
        program: &AnnotatedProgram,
        on_event: &mut dyn FnMut(WorkspaceEvent<'_>),
    ) -> DocOutcome {
        let doc = doc.into();
        let revision = self.docs.get(&doc).map_or(1, |d| d.revision + 1);
        if !self.docs.contains_key(&doc) {
            self.stats.documents += 1;
        }
        self.check(doc, revision, program, on_event)
    }

    /// Re-verifies an open document after an edit. Errors when the
    /// document was never opened (or already closed).
    pub fn update_document(
        &mut self,
        doc: &str,
        program: &AnnotatedProgram,
    ) -> Result<DocOutcome, String> {
        self.update_document_with(doc, program, &mut |_| {})
    }

    /// [`Workspace::update_document`] with a progress-event stream.
    pub fn update_document_with(
        &mut self,
        doc: &str,
        program: &AnnotatedProgram,
        on_event: &mut dyn FnMut(WorkspaceEvent<'_>),
    ) -> Result<DocOutcome, String> {
        let Some(state) = self.docs.get(doc) else {
            return Err(format!("unknown document `{doc}`"));
        };
        let revision = state.revision + 1;
        Ok(self.check(doc.to_owned(), revision, program, on_event))
    }

    /// Closes a document; `true` when it was open. Cached verdicts and
    /// obligation statuses stay in the cache (another document — or the
    /// same one reopened — may share them).
    pub fn close_document(&mut self, doc: &str) -> bool {
        let removed = self.docs.remove(doc).is_some();
        if removed {
            self.stats.documents = self.stats.documents.saturating_sub(1);
        }
        removed
    }

    fn check(
        &mut self,
        doc: String,
        revision: u64,
        program: &AnnotatedProgram,
        on_event: &mut dyn FnMut(WorkspaceEvent<'_>),
    ) -> DocOutcome {
        let start = Instant::now();
        let key = program_hash(program, &self.config);
        self.stats.revisions += 1;
        on_event(WorkspaceEvent::Started {
            doc: &doc,
            revision,
            key,
        });

        // Program tier: an unchanged program replays its whole report.
        let cached_report = self
            .cache
            .lock()
            .expect("verdict cache poisoned")
            .get(key);
        let (report, report_cached, obligations) = match cached_report {
            Some(report) => {
                for (index, result) in report.obligations.iter().enumerate() {
                    on_event(WorkspaceEvent::Obligation {
                        index,
                        result,
                        verdict: ObligationVerdict::Reused,
                        time: Duration::ZERO,
                    });
                }
                let total = report.obligations.len();
                self.stats.report_hits += 1;
                (
                    report,
                    true,
                    DischargeStats {
                        total,
                        reused: total,
                        checked: 0,
                        statically_proven: 0,
                    },
                )
            }
            None => {
                // Obligation tier: re-discharge only the dirty cone.
                let mut store = SharedObligationStore(&self.cache);
                let mut sink = |e: &crate::obligation::ObligationEvent<'_>| {
                    on_event(WorkspaceEvent::Obligation {
                        index: e.index,
                        result: e.result,
                        verdict: e.verdict,
                        time: e.time,
                    });
                };
                let (report, stats) =
                    verify_incremental(program, &self.config, &mut store, &mut sink);
                self.cache
                    .lock()
                    .expect("verdict cache poisoned")
                    .put(key, &report);
                (report, false, stats)
            }
        };

        self.stats.obligations.total += obligations.total;
        self.stats.obligations.reused += obligations.reused;
        self.stats.obligations.checked += obligations.checked;
        self.stats.obligations.statically_proven += obligations.statically_proven;
        self.docs.insert(doc.clone(), DocState { key, revision });

        let outcome = DocOutcome {
            doc,
            revision,
            key,
            report,
            time: start.elapsed(),
            report_cached,
            obligations,
        };
        on_event(WorkspaceEvent::Finished { outcome: &outcome });
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::VStmt;
    use crate::symexec::verify;
    use commcsl_logic::spec::ResourceSpec;
    use commcsl_pure::{Sort, Term};

    fn counter_program(addend: i64) -> AnnotatedProgram {
        AnnotatedProgram::new("ws-counter")
            .with_resource(ResourceSpec::counter_add())
            .with_body([
                VStmt::input("a", Sort::Int, true),
                VStmt::Share {
                    resource: 0,
                    init: Term::int(0),
                },
                VStmt::Par {
                    workers: vec![
                        vec![VStmt::atomic(0, "Add", Term::var("a"))],
                        vec![VStmt::atomic(0, "Add", Term::int(addend))],
                    ],
                },
                VStmt::Unshare {
                    resource: 0,
                    into: "c".into(),
                },
                VStmt::Output(Term::var("c")),
            ])
    }

    #[test]
    fn open_update_close_lifecycle_with_byte_identical_reports() {
        let mut ws = Workspace::new(WorkspaceConfig::default());
        let p0 = counter_program(2);

        let cold = ws.open_document("a.csl", &p0);
        assert_eq!(cold.revision, 1);
        assert!(!cold.report_cached);
        assert_eq!(cold.obligations.reused, 0);
        assert_eq!(cold.report.to_json(), verify(&p0, ws.config()).to_json());

        // Unchanged reopen: the program tier answers the whole report.
        let warm = ws.open_document("a.csl", &p0);
        assert_eq!(warm.revision, 2);
        assert!(warm.report_cached);
        assert_eq!(warm.report.to_json(), cold.report.to_json());

        // A single-statement edit (one addend changes): only the dirty
        // cone re-checks. The edit sits inside the Par, so the obligations
        // before it (spec validity, low-init) stay reused.
        let p1 = counter_program(3);
        let edited = ws.update_document("a.csl", &p1).expect("doc open");
        assert_eq!(edited.revision, 3);
        assert!(!edited.report_cached);
        assert!(edited.obligations.reused > 0, "{:?}", edited.obligations);
        assert!(edited.obligations.checked < edited.obligations.total);
        assert_eq!(edited.report.to_json(), verify(&p1, ws.config()).to_json());

        assert!(ws.close_document("a.csl"));
        assert!(!ws.close_document("a.csl"));
        assert!(ws.update_document("a.csl", &p1).is_err());
    }

    #[test]
    fn appending_a_statement_rechecks_only_the_new_obligation() {
        let mut ws = Workspace::new(WorkspaceConfig::default());
        let base = counter_program(2);
        let cold = ws.open_document("doc", &base);

        let mut extended = base.clone();
        extended.body.push(VStmt::AssertLow(Term::int(7)));
        let outcome = ws.update_document("doc", &extended).expect("open");
        assert_eq!(outcome.obligations.total, cold.obligations.total + 1);
        // The new goal (`7 = 7`) is claimed by the static pre-pass — the
        // edit's cone never reaches the solver; everything else replays.
        assert_eq!(outcome.obligations.checked, 0, "{:?}", outcome.obligations);
        assert_eq!(
            outcome.obligations.statically_proven,
            1,
            "{:?}",
            outcome.obligations
        );
        assert_eq!(outcome.obligations.reused, cold.obligations.total);
        assert_eq!(
            outcome.report.to_json(),
            verify(&extended, ws.config()).to_json()
        );
    }

    #[test]
    fn documents_share_one_cache_and_events_stream_in_order() {
        let mut ws = Workspace::new(WorkspaceConfig::default());
        let p = counter_program(2);
        let _ = ws.open_document("one", &p);

        // A second document with the same content: program-tier hit.
        let mut events = Vec::new();
        let outcome = ws.open_document_with("two", &p, &mut |e| {
            events.push(match e {
                WorkspaceEvent::Started { doc, revision, .. } => {
                    format!("started {doc} r{revision}")
                }
                WorkspaceEvent::Obligation { index, verdict, .. } => {
                    format!("obligation {index} {}", verdict.as_str())
                }
                WorkspaceEvent::Finished { outcome } => {
                    format!("finished cached={}", outcome.report_cached)
                }
            });
        });
        assert!(outcome.report_cached);
        assert_eq!(events.first().unwrap(), "started two r1");
        assert_eq!(
            events.last().unwrap(),
            "finished cached=true",
            "{events:?}"
        );
        assert_eq!(events.len(), outcome.obligations.total + 2);
        assert!(events[1..events.len() - 1]
            .iter()
            .all(|e| e.ends_with(" reused")));

        // A *renamed* variant misses the program tier but reuses every
        // obligation from "one"'s run.
        let mut renamed = p.clone();
        renamed.name = "ws-counter-renamed".into();
        let outcome = ws.open_document("three", &renamed);
        assert!(!outcome.report_cached);
        assert_eq!(outcome.obligations.checked, 0, "{:?}", outcome.obligations);
        assert_eq!(outcome.obligations.reused, outcome.obligations.total);

        assert_eq!(ws.open_documents().count(), 3);
        let stats = ws.stats();
        assert_eq!(stats.documents, 3);
        assert_eq!(stats.revisions, 3);
        assert_eq!(stats.report_hits, 1);
    }

    #[test]
    fn failing_obligations_and_counterexamples_replay_byte_identically() {
        let mut ws = Workspace::new(WorkspaceConfig::default());
        let leaky = AnnotatedProgram::new("ws-leak").with_body([
            VStmt::input("h", Sort::Int, false),
            VStmt::Output(Term::var("h")),
        ]);
        let cold = ws.open_document("leak", &leaky);
        assert!(!cold.report.verified());
        let direct = verify(&leaky, ws.config());
        assert_eq!(cold.report.to_json(), direct.to_json());

        // Rename (program-tier miss) — the failed status, counterexample
        // included, replays from the obligation tier byte-identically.
        let mut renamed = leaky.clone();
        renamed.name = "ws-leak-2".into();
        let warm = ws.open_document("leak2", &renamed);
        assert!(!warm.report_cached);
        assert_eq!(warm.obligations.checked, 0);
        assert_eq!(
            warm.report.to_json(),
            verify(&renamed, ws.config()).to_json()
        );
    }

    #[test]
    fn workspace_on_disk_cache_survives_a_restart() {
        let dir = std::env::temp_dir().join(format!(
            "commcsl-workspace-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = WorkspaceConfig {
            cache: CacheConfig::persistent(&dir),
            ..Default::default()
        };
        let p = counter_program(2);
        {
            let mut ws = Workspace::new(config.clone());
            let _ = ws.open_document("doc", &p);
        }
        // Fresh workspace, same disk: a renamed variant still reuses
        // every obligation from disk.
        let mut ws = Workspace::new(config);
        let mut renamed = p.clone();
        renamed.name = "ws-counter-restart".into();
        let outcome = ws.open_document("doc", &renamed);
        assert!(!outcome.report_cached);
        assert_eq!(outcome.obligations.checked, 0, "{:?}", outcome.obligations);
        assert_eq!(
            outcome.report.to_json(),
            verify(&renamed, ws.config()).to_json()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
