//! Delta-debugging minimizer for falsified obligations.
//!
//! A failed obligation carries the full path-fact cone — every relational
//! hypothesis live at the failing check — and the falsifier's environment
//! binds every variable of that cone, which on realistic programs buries
//! the two or three bindings that actually exhibit the leak. This module
//! shrinks the *fact set* first and lets the environment follow: a fact
//! subset is still a witness of the failure when (a) a scratch
//! [`SolverSession`](commcsl_smt::SolverSession) of the configured
//! backend still cannot prove the goal from it, and (b) the falsifier
//! still finds a concrete environment refuting it. Hypothesis sets are
//! monotone — removing facts can never make an unprovable goal provable —
//! so check (a) is a safety re-check through the same seam the verifier
//! proves with, never a semantic gamble.
//!
//! The search is the classic ddmin loop: try discarding chunks of half
//! the remaining facts, halve the chunk on failure, finish with
//! single-fact elimination. Every accepted candidate re-runs the
//! falsifier, so the final environment is a genuine counterexample of the
//! *minimal* cone: all kept facts evaluate true under it and the goal
//! evaluates false — re-checkable with [`commcsl_smt::falsify::refutes`].
//! Everything here is deterministic (the falsifier is seeded, the scan
//! order is fixed), so both backends and every cache route minimize to
//! the identical environment.

use std::collections::BTreeMap;

use commcsl_pure::term::Env;
use commcsl_pure::{Sort, Symbol, Term};
use commcsl_smt::falsify::{find_counterexample, FalsifyConfig};
use commcsl_smt::{BackendKind, SolverConfig, Verdict};

/// The result of minimizing one falsified obligation.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// Indices (into the original fact list) of the facts kept — the
    /// minimal cone under single-fact removal.
    pub kept: Vec<usize>,
    /// The falsifying environment of the minimal cone: binds exactly the
    /// variables of the kept facts and the goal.
    pub env: Env,
}

/// Shrinks the fact cone of a falsified `goal` and returns the minimal
/// witness. `initial` is the environment the full-cone falsification
/// found; it is returned unchanged when no fact can be removed.
///
/// `sorts` must cover every free variable of `facts` and `goal` (the
/// caller established this to falsify at all; extra entries are ignored).
pub fn minimize_counterexample(
    facts: &[Term],
    goal: &Term,
    sorts: &BTreeMap<Symbol, Sort>,
    falsify: &FalsifyConfig,
    backend: BackendKind,
    solver: &SolverConfig,
    initial: Env,
) -> Minimized {
    let mut kept: Vec<usize> = (0..facts.len()).collect();
    let mut env = initial;
    if kept.is_empty() {
        return Minimized { kept, env };
    }

    let still_fails = |kept: &[usize]| -> Option<Env> {
        let subset: Vec<Term> = kept.iter().map(|&i| facts[i].clone()).collect();
        // (a) Re-check the shrunk subset through the solver-session seam:
        // a subset the solver suddenly proves from would be a lying
        // witness. (Monotonicity makes this unreachable in practice; the
        // guard keeps the minimizer sound by construction, not by
        // argument.)
        let mut session = backend.open_session(solver.clone());
        for fact in &subset {
            session.assert(fact.clone());
        }
        if session.check(goal) == Verdict::Proved {
            return None;
        }
        // (b) The shrunk cone must still falsify concretely.
        find_counterexample(&subset, goal, sorts, falsify)
    };

    // ddmin: discard chunks, halving the chunk size until single facts.
    let mut chunk = kept.len().div_ceil(2);
    loop {
        let mut at = 0;
        while at < kept.len() {
            let end = (at + chunk).min(kept.len());
            let candidate: Vec<usize> = kept
                .iter()
                .enumerate()
                .filter_map(|(i, &f)| (i < at || i >= end).then_some(f))
                .collect();
            match still_fails(&candidate) {
                Some(better) => {
                    kept = candidate;
                    env = better;
                    // Re-scan from the same offset: the next chunk slid in.
                }
                None => at = end,
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2).max(1);
        if chunk == 1 && kept.len() <= 1 {
            break;
        }
    }
    Minimized { kept, env }
}

#[cfg(test)]
mod tests {
    use commcsl_smt::falsify::refutes;

    use super::*;

    fn int_sorts(vars: &[&str]) -> BTreeMap<Symbol, Sort> {
        vars.iter()
            .map(|v| (Symbol::new(*v), Sort::Int))
            .collect()
    }

    #[test]
    fn irrelevant_facts_are_dropped_and_witness_still_refutes() {
        // Goal x = y is falsifiable; the z-facts are noise.
        let facts = vec![
            Term::le(Term::var("z"), Term::int(5)),
            Term::le(Term::int(0), Term::var("x")),
            Term::le(Term::int(0), Term::var("z")),
        ];
        let goal = Term::eq(Term::var("x"), Term::var("y"));
        let sorts = int_sorts(&["x", "y", "z"]);
        let falsify = FalsifyConfig::default();
        let full = find_counterexample(&facts, &goal, &sorts, &falsify)
            .expect("full cone falsifies");
        let min = minimize_counterexample(
            &facts,
            &goal,
            &sorts,
            &falsify,
            BackendKind::default(),
            &SolverConfig::default(),
            full.clone(),
        );
        // The z-only facts cannot survive single-fact elimination.
        assert!(min.kept.len() < facts.len(), "kept {:?}", min.kept);
        assert!(!min.env.contains_key(&Symbol::new("z")), "{:?}", min.env);
        assert!(min.env.len() < full.len());
        // The minimized environment still falsifies the kept cone.
        let subset: Vec<Term> = min.kept.iter().map(|&i| facts[i].clone()).collect();
        assert!(refutes(&subset, &goal, &min.env));
    }

    #[test]
    fn empty_cone_returns_initial() {
        let goal = Term::eq(Term::var("x"), Term::var("y"));
        let sorts = int_sorts(&["x", "y"]);
        let falsify = FalsifyConfig::default();
        let env = find_counterexample(&[], &goal, &sorts, &falsify).expect("falsifies");
        let min = minimize_counterexample(
            &[],
            &goal,
            &sorts,
            &falsify,
            BackendKind::default(),
            &SolverConfig::default(),
            env.clone(),
        );
        assert!(min.kept.is_empty());
        assert_eq!(min.env, env);
    }
}
