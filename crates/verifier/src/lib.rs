//! HyperViper-style automated verifier for CommCSL (paper, Sec. 5).
//!
//! The original HyperViper encodes annotated programs into the Viper
//! intermediate language using a modular product-program construction and
//! discharges the obligations with Z3. This crate performs the same checks
//! natively: a **relational symbolic execution** maintains one symbolic
//! store *per execution* (the product construction), collects relational
//! hypotheses, and discharges every CommCSL proof obligation with the
//! SMT-lite solver of `commcsl-smt`:
//!
//! * resource-specification **validity** at `share` (Def. 3.1, via
//!   `commcsl-logic`),
//! * **low initial abstraction** at `share` (property 1),
//! * the relational **action precondition** at every atomic action
//!   (property 3a — checked either in lockstep, where low loop bounds give
//!   the PRE bijection iteration-by-iteration, or as *counted batches*
//!   whose total count must be provably low, the paper's retroactive check
//!   for the multi-consumer examples),
//! * **guard discipline** — unique actions are performable by one worker
//!   only; shared guards are split across workers and recombined at join,
//! * **low-ness of outputs** (`output(e)` requires proving `Low(e)`), with
//!   the unshared resource's abstraction equality available as a
//!   hypothesis — exactly the paper's "may now assume α(v) is low".
//!
//! Verification verdicts are sound in the positive direction: `verified`
//! means every obligation was proved; any unknown or failed obligation is
//! reported as a failure with its name.
//!
//! # Example
//!
//! ```
//! use commcsl_logic::spec::ResourceSpec;
//! use commcsl_pure::{Func, Sort, Term};
//! use commcsl_verifier::program::{AnnotatedProgram, VStmt};
//! use commcsl_verifier::verify;
//!
//! // Fig. 2: two workers add low values to a shared counter; the final
//! // counter is output.
//! let prog = AnnotatedProgram::new("fig2-counter")
//!     .with_resource(ResourceSpec::counter_add())
//!     .with_body([
//!         VStmt::input("a", Sort::Int, true),
//!         VStmt::input("b", Sort::Int, true),
//!         VStmt::Share { resource: 0, init: Term::int(0) },
//!         VStmt::Par {
//!             workers: vec![
//!                 vec![VStmt::atomic(0, "Add", Term::var("a"))],
//!                 vec![VStmt::atomic(0, "Add", Term::var("b"))],
//!             ],
//!         },
//!         VStmt::Unshare { resource: 0, into: "c".into() },
//!         VStmt::Output(Term::var("c")),
//!     ]);
//! let report = verify(&prog, &Default::default());
//! assert!(report.verified(), "{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod batch;
pub mod cache;
pub mod hash;
pub mod minimize;
pub mod obligation;
pub mod report;
pub mod symexec;
pub mod workspace;

// The IR and its structured diagnostics live in `commcsl-analysis` (so
// static analyses and the verifier share them without a cycle); they are
// re-exported here at their historical paths.
pub use commcsl_analysis::{diag, program};

pub use api::{Outcome, Verifier};
pub use batch::{verify_batch, BatchConfig, BatchResult};
pub use cache::{CacheConfig, CacheStats, CachedResult, CachedVerifier, VerdictCache};
pub use diag::{CexBinding, Counterexample, DiagnosticCode, Failure, SourceSpan};
pub use hash::{program_hash, ProgramHash, StableHash, StableHasher};
pub use minimize::{minimize_counterexample, Minimized};
pub use obligation::{
    obligation_graph, DischargeStats, ObligationEvent, ObligationGraph, ObligationKey,
    ObligationNode, ObligationStore,
};
pub use program::{AnnotatedProgram, StmtPath, VStmt};
pub use report::{
    CoreFact, Lint, LintCode, ObligationResult, ObligationStatus, Severity, VerifierConfig,
    VerifierReport,
};
pub use symexec::{solver_trace, verify, verify_incremental, verify_with_stats, SolverEvent};
pub use workspace::{DocOutcome, Workspace, WorkspaceConfig, WorkspaceEvent};
