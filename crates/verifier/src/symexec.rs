//! Relational symbolic execution (the product construction).
//!
//! The verifier maintains, for every program variable, a pair of symbolic
//! terms — its value in execution 1 and in execution 2 — together with a
//! set of relational hypotheses (`facts`). `Low(e)` obligations become
//! solver queries `facts ⊨ e⟨1⟩ = e⟨2⟩`. Control flow is handled as in
//! modular product programs: effect-free conditionals are merged with
//! `ite` per execution (so *high branching is allowed*, Sec. 3.6), while
//! effectful conditionals and loops must have provably low conditions and
//! execute in lockstep, which is also what justifies the PRE bijection for
//! the actions performed inside (iteration `i` of execution 1 is matched
//! with iteration `i` of execution 2 — the paper's Fig. 5 loop invariant).
//!
//! Obligations are discharged through a [`SolverSession`] opened from the
//! configured backend: path facts are asserted once per control scope
//! (mirrored into solver `push`/`pop`), so an incremental backend
//! normalizes and asserts each fact a single time however many goals are
//! checked under it. Failed obligations additionally run the falsifier
//! over the collected facts to attach a concrete per-execution
//! counterexample to the report.
//!
//! Two discharge regimes share the execution engine:
//!
//! * [`verify`] — the cold regime: every obligation goes to the solver.
//! * [`verify_incremental`] — the workspace regime: each obligation's
//!   dependency-cone key ([`ObligationKey`]) is computed as the
//!   execution reaches it, an [`ObligationStore`] is consulted, and only
//!   *misses* touch the solver. Session work is **lazy**: facts and
//!   scopes are buffered and replayed (with the cold run's exact batch
//!   boundaries, via [`SolverSession::sync`]) only when a miss forces a
//!   real check — a fully warm re-verification performs no solver work
//!   at all. Reports are byte-identical to [`verify`] by construction:
//!   descriptions, codes, and spans are recomputed each run, and cached
//!   statuses are keyed by everything that can influence them.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use commcsl_analysis::prepass::goal_statically_valid;
use commcsl_logic::spec::{ActionKind, ResourceSpec};
use commcsl_logic::validity::check_validity;
use commcsl_pure::{Sort, Symbol, Term};
use commcsl_smt::falsify::find_counterexample;
use commcsl_smt::{assumption_core, SessionStats, SolverSession, Verdict};

use crate::diag::{Counterexample, DiagnosticCode, Failure, SourceSpan};
use crate::hash::{StableHash, StableHasher};
use crate::minimize::minimize_counterexample;
use crate::obligation::{
    DischargeStats, ObligationEvent, ObligationKey, ObligationStore, ObligationVerdict,
};
use crate::program::{AnnotatedProgram, StmtPath, VStmt};
use crate::report::{
    CoreFact, Lint, LintCode, ObligationResult, ObligationStatus, VerifierConfig, VerifierReport,
};

/// Verifies an annotated program; see the crate docs for the obligations
/// generated.
///
/// This is the single-program engine. Callers verifying batches, wanting
/// caching, or configuring backends should prefer the unified
/// [`Verifier`](crate::api::Verifier) builder, which routes through this
/// function and guarantees byte-identical reports.
pub fn verify(program: &AnnotatedProgram, config: &VerifierConfig) -> VerifierReport {
    verify_with_stats(program, config).0
}

/// [`verify`], plus the run's [`DischargeStats`] (how each obligation was
/// discharged: solver check vs. static pre-pass), per-obligation
/// wall-clock times in report order, and the solver session's cumulative
/// [`SessionStats`] (the main program session only; spec-validity checks
/// run their own sessions inside `commcsl-logic` and are not aggregated
/// here). The report is the same value [`verify`] returns; the extras are
/// diagnostic payload that never enters reports, hashes, or caches.
pub fn verify_with_stats(
    program: &AnnotatedProgram,
    config: &VerifierConfig,
) -> (VerifierReport, DischargeStats, Vec<Duration>, SessionStats) {
    let _span = commcsl_telemetry::span!("symexec.program", program = program.name);
    let mut exec = Exec::new(program, config);
    exec.run_body(&program.body);
    let report = exec.finish();
    let stats = exec.direct_stats;
    let session = exec.session.stats();
    (
        report,
        stats,
        std::mem::take(&mut exec.obligation_times),
        session,
    )
}

/// Verifies a program against an [`ObligationStore`]: obligations whose
/// dependency-cone key hits the store replay their cached status without
/// touching the solver; misses are discharged exactly as [`verify`] would
/// (the buffered session work is replayed first, reproducing the cold
/// run's solver state bit for bit) and recorded. `on_event` fires once
/// per obligation, in report order, as it settles.
///
/// The returned report is **byte-identical** to `verify(program, config)`
/// whatever mix of hits and misses served it — the property the
/// [`Workspace`](crate::workspace::Workspace) API and the daemon's
/// incremental re-verification are built on.
pub fn verify_incremental(
    program: &AnnotatedProgram,
    config: &VerifierConfig,
    store: &mut dyn ObligationStore,
    on_event: &mut dyn FnMut(&ObligationEvent<'_>),
) -> (VerifierReport, DischargeStats) {
    let _span = commcsl_telemetry::span!("symexec.program", program = program.name);
    let mut exec = Exec::new(program, config);
    exec.discharge = Discharge::Cached(Box::new(CachedState::new(config, store, on_event)));
    exec.run_body(&program.body);
    let report = exec.finish();
    let stats = match &exec.discharge {
        Discharge::Cached(state) => state.stats,
        Discharge::Direct => DischargeStats::default(),
    };
    (report, stats)
}

/// One event of a program's solver-session interaction, as recorded by
/// [`solver_trace`]. The stream is the exact sequence of calls the
/// symbolic execution makes on its [`SolverSession`]: scoped path facts,
/// and one `Check` per program proof obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverEvent {
    /// A fact scope opened (effectful branch, loop body).
    Push,
    /// The matching scope closed.
    Pop,
    /// A relational path fact asserted in the current scope.
    Assert(Term),
    /// A proof obligation checked against the accumulated facts.
    Check {
        /// Obligation-local hypotheses (empty for plain checks).
        assumptions: Vec<Term>,
        /// The goal.
        goal: Term,
    },
}

/// Records the solver-session event stream the symbolic execution of
/// `program` produces — the incremental-solving workload itself, decoupled
/// from the engine that discharges it. Replaying the stream against any
/// [`SolverSession`] reproduces the program's obligation verdicts; the
/// `commcsl-bench` `incremental_solver` harness uses exactly this to
/// compare backends on identical workloads. The static pre-pass is
/// disabled during recording so the trace covers *every* obligation, not
/// just the ones a normal run sends to the solver. (Specification-validity
/// obligations run in their own session inside `commcsl-logic` and are
/// not part of the stream.)
pub fn solver_trace(program: &AnnotatedProgram, config: &VerifierConfig) -> Vec<SolverEvent> {
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug)]
    struct Recorder {
        inner: Box<dyn SolverSession>,
        log: Rc<RefCell<Vec<SolverEvent>>>,
    }

    impl SolverSession for Recorder {
        fn push(&mut self) {
            self.log.borrow_mut().push(SolverEvent::Push);
            self.inner.push();
        }
        fn pop(&mut self) {
            self.log.borrow_mut().push(SolverEvent::Pop);
            self.inner.pop();
        }
        fn assert(&mut self, fact: Term) {
            self.log.borrow_mut().push(SolverEvent::Assert(fact.clone()));
            self.inner.assert(fact);
        }
        fn check(&mut self, goal: &Term) -> Verdict {
            self.log.borrow_mut().push(SolverEvent::Check {
                assumptions: Vec::new(),
                goal: goal.clone(),
            });
            self.inner.check(goal)
        }
        fn check_assuming(&mut self, assumptions: Vec<Term>, goal: &Term) -> Verdict {
            self.log.borrow_mut().push(SolverEvent::Check {
                assumptions: assumptions.clone(),
                goal: goal.clone(),
            });
            self.inner.check_assuming(assumptions, goal)
        }
        fn sync(&mut self) {
            // Not an event of the cold workload (only obligation-cache
            // replays call it), so it is forwarded without recording.
            self.inner.sync();
        }
        fn depth(&self) -> usize {
            self.inner.depth()
        }
        fn stats(&self) -> commcsl_smt::SessionStats {
            self.inner.stats()
        }
    }

    // The event stream does not depend on verdicts (the execution never
    // branches on an obligation's outcome), so trace without the
    // falsifier to keep recording cheap. The static pre-pass is disabled
    // so statically dischargeable goals still appear as `Check` events:
    // the trace is the program's *full* solver workload, which is what
    // backend-comparison replays need.
    let mut config = config.clone();
    config.counterexamples = false;
    config.static_prepass = false;
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut exec = Exec::new(program, &config);
    exec.session = Box::new(Recorder {
        inner: config.backend.open_session(config.solver.clone()),
        log: log.clone(),
    });
    exec.run_body(&program.body);
    let _ = exec.finish();
    drop(exec);
    Rc::try_unwrap(log).expect("recorder dropped with the exec").into_inner()
}

/// A recorded batch of action applications on a shared resource.
#[derive(Debug, Clone)]
struct Batch {
    action: Symbol,
    /// `true` when the batch was performed in lockstep (low control flow):
    /// the PRE bijection is the iteration correspondence and the per-side
    /// counts are equal by construction.
    lockstep: bool,
    /// Per-side repetition count (product of the enclosing multipliers).
    count: (Term, Term),
}

#[derive(Debug, Clone)]
enum ResState {
    Idle,
    Shared {
        ledger: Vec<Batch>,
        /// Unique action name → worker that owns it.
        owners: BTreeMap<Symbol, Option<usize>>,
        /// Consume-bindings: (bound per-side vars, per-side index terms).
        /// At `unshare` these become facts `bound = index(snd(final), i)`.
        reads: Vec<((Term, Term), (Term, Term))>,
    },
    Consumed,
}

/// The non-status half of an [`ObligationResult`] plus its proving site
/// — what [`Exec::settle_cached`] needs besides the key and the status.
struct ObligationMeta {
    description: String,
    code: DiagnosticCode,
    span: Option<SourceSpan>,
    path: StmtPath,
}

/// A queued retroactive obligation (description, code, span, site, goal).
struct Deferred {
    description: String,
    code: DiagnosticCode,
    span: Option<SourceSpan>,
    path: StmtPath,
    goal: Term,
}

/// A buffered session operation of the incremental regime, replayed into
/// the real [`SolverSession`] only when an obligation-store miss forces a
/// check. `Sync` stands where a *skipped* (cache-hit) check used to be,
/// so replay reproduces the cold run's assertion batch boundaries.
enum PendingOp {
    Push,
    Pop,
    Assert(Term),
    Sync,
}

/// The incremental-discharge state carried by [`verify_incremental`].
struct CachedState<'b> {
    store: &'b mut dyn ObligationStore,
    sink: &'b mut dyn FnMut(&ObligationEvent<'_>),
    /// One hasher per open fact scope, each extending its parent: the top
    /// hasher is the running digest of every *live* session event
    /// (asserts with their free-variable sorts, scope pushes, check/sync
    /// boundaries) plus the verdict-relevant configuration — cloning it
    /// and feeding the goal yields the obligation's dependency-cone key.
    /// Popping a scope discards its contribution entirely, mirroring the
    /// solver's exact rollback.
    ctx: Vec<StableHasher>,
    /// Session operations not yet applied to the real session.
    pending: Vec<PendingOp>,
    /// `(replays, pending.len())` at each open scope: when nothing was
    /// replayed since the scope opened, closing it simply truncates the
    /// buffer; otherwise a real `Pop` must be buffered.
    pending_marks: Vec<(u64, usize)>,
    /// Number of times `pending` has been replayed into the session.
    replays: u64,
    stats: DischargeStats,
}

impl<'b> CachedState<'b> {
    fn new(
        config: &VerifierConfig,
        store: &'b mut dyn ObligationStore,
        sink: &'b mut dyn FnMut(&ObligationEvent<'_>),
    ) -> Self {
        let mut root = StableHasher::new();
        root.tag("obligation-ctx");
        config.stable_hash(&mut root);
        CachedState {
            store,
            sink,
            ctx: vec![root],
            pending: Vec::new(),
            pending_marks: Vec::new(),
            replays: 0,
            stats: DischargeStats::default(),
        }
    }

    /// The current context digest (top of the scope stack).
    fn top(&mut self) -> &mut StableHasher {
        self.ctx.last_mut().expect("root context never pops")
    }
}

/// Feeds a term into an obligation-key hasher in one traversal,
/// annotating every variable occurrence with its registered sort (the
/// falsifier's steering inputs). Equivalent to hashing the term and its
/// free-variable sort map, without materializing the variable set.
fn feed_term(h: &mut StableHasher, term: &Term, var_sorts: &BTreeMap<Symbol, Sort>) {
    match term {
        Term::Var(x) => {
            h.tag("term.var");
            x.stable_hash(h);
            match var_sorts.get(x) {
                Some(sort) => sort.stable_hash(h),
                None => h.tag("sort.absent"),
            }
        }
        Term::Lit(v) => {
            h.tag("term.lit");
            v.stable_hash(h);
        }
        Term::App(f, args) => {
            h.tag("term.app");
            f.stable_hash(h);
            h.write_usize(args.len());
            for arg in args {
                feed_term(h, arg, var_sorts);
            }
        }
    }
}

/// How obligations are settled: directly (cold), or against an
/// obligation store with lazy session replay (incremental).
enum Discharge<'b> {
    Direct,
    Cached(Box<CachedState<'b>>),
}

struct Exec<'a, 'b> {
    program: &'a AnnotatedProgram,
    config: &'a VerifierConfig,
    discharge: Discharge<'b>,
    /// The solver session mirroring the path condition. Facts are
    /// asserted exactly once per scope; goals are checked against it.
    session: Box<dyn SolverSession>,
    /// The raw relational hypotheses, kept in parallel with the session
    /// scopes for the falsifier (which replays them on ground values).
    facts: Vec<Term>,
    /// Statement path that asserted each live fact (parallel to `facts`)
    /// — the fact half of each obligation's dependency cone, and the site
    /// map proof cores resolve their fact indices through.
    fact_origins: Vec<StmtPath>,
    /// `unshare` sites whose abstraction-equality assumption counts as a
    /// user annotation: `(path, resource name)`. Recorded only when
    /// proof-core tracking is on; [`Exec::collect_hints`] reports the
    /// sites no proved obligation's core reached.
    annotation_sites: Vec<(StmtPath, Symbol)>,
    store: BTreeMap<Symbol, (Term, Term)>,
    /// Sorts of the symbolic variables minted so far (for countermodel
    /// search; `Sort::Unknown` disables falsification of goals that
    /// mention the variable).
    var_sorts: BTreeMap<Symbol, Sort>,
    resources: Vec<ResState>,
    fresh: usize,
    /// Per-side multipliers from enclosing low conditionals and loops.
    multipliers: Vec<(Term, Term)>,
    current_worker: Option<usize>,
    /// Statement path of the statement currently executing (see
    /// [`crate::program::StmtPath`]); used to look up source spans.
    path: Vec<u32>,
    obligations: Vec<ObligationResult>,
    errors: Vec<String>,
    /// Retroactive obligations, discharged at the end of the program with
    /// the final fact set.
    deferred: Vec<Deferred>,
    /// Discharge counters of the direct (cold) regime; the incremental
    /// regime accounts in [`CachedState::stats`] instead.
    direct_stats: DischargeStats,
    /// Wall-clock settle time per obligation, in report order (both
    /// regimes). Diagnostic payload only — never in reports or keys.
    obligation_times: Vec<Duration>,
}

impl<'a, 'b> Exec<'a, 'b> {
    fn new(program: &'a AnnotatedProgram, config: &'a VerifierConfig) -> Self {
        Exec {
            program,
            config,
            discharge: Discharge::Direct,
            session: config.backend.open_session(config.solver.clone()),
            facts: Vec::new(),
            fact_origins: Vec::new(),
            annotation_sites: Vec::new(),
            store: BTreeMap::new(),
            var_sorts: BTreeMap::new(),
            resources: vec![ResState::Idle; program.resources.len()],
            fresh: 0,
            multipliers: Vec::new(),
            current_worker: None,
            path: Vec::new(),
            obligations: Vec::new(),
            errors: Vec::new(),
            deferred: Vec::new(),
            direct_stats: DischargeStats::default(),
            obligation_times: Vec::new(),
        }
    }

    fn finish(&mut self) -> VerifierReport {
        // Retroactive obligations: proved against the final fact set, which
        // includes everything learned from later unshares.
        let deferred = std::mem::take(&mut self.deferred);
        for d in deferred {
            self.prove_with_span(d.description, d.code, d.span, d.path, d.goal);
        }
        for (i, r) in self.resources.iter().enumerate() {
            if matches!(r, ResState::Shared { .. }) {
                self.errors
                    .push(format!("resource {i} is still shared at program end"));
            }
        }
        let hints = self.collect_hints();
        VerifierReport {
            program: self.program.name.clone(),
            obligations: std::mem::take(&mut self.obligations),
            errors: std::mem::take(&mut self.errors),
            hints,
        }
    }

    /// Aggregates proof cores into "unneeded annotation" hints: `unshare`
    /// sites whose abstraction-equality assumption no proved obligation's
    /// core reaches. Emitted only for fully verified programs — on a
    /// failure or structural error the conservative reading is that every
    /// annotation may still be needed to finish the proof.
    fn collect_hints(&self) -> Vec<Lint> {
        if !self.config.proof_cores || !self.errors.is_empty() {
            return Vec::new();
        }
        if self
            .obligations
            .iter()
            .any(|o| !matches!(o.status, ObligationStatus::Proved))
        {
            return Vec::new();
        }
        let needed: BTreeSet<&StmtPath> = self
            .obligations
            .iter()
            .flat_map(|o| o.core.iter().flatten())
            .map(|c| &c.path)
            .collect();
        let mut hints: Vec<Lint> = self
            .annotation_sites
            .iter()
            .filter(|(path, _)| !needed.contains(path))
            .map(|(path, resource)| Lint {
                code: LintCode::UnneededAnnotation,
                severity: LintCode::UnneededAnnotation.severity(),
                path: path.clone(),
                span: self.program.span_at(path),
                message: format!(
                    "no proved obligation needed the abstraction equality from \
                     unsharing resource `{resource}`; the `alpha` annotation \
                     carries no proof here"
                ),
            })
            .collect();
        hints.sort_by(|a, b| a.path.cmp(&b.path));
        hints
    }

    // ------------------------------------------------------------- helpers

    fn fresh_low(&mut self, hint: &str, sort: Sort) -> (Term, Term) {
        self.fresh += 1;
        let name = Symbol::new(format!("ν{}_{hint}", self.fresh));
        self.var_sorts.insert(name.clone(), sort);
        let v = Term::Var(name);
        (v.clone(), v)
    }

    fn fresh_high(&mut self, hint: &str, sort: Sort) -> (Term, Term) {
        self.fresh += 1;
        let n1 = Symbol::new(format!("ν{}_{hint}@1", self.fresh));
        let n2 = Symbol::new(format!("ν{}_{hint}@2", self.fresh));
        self.var_sorts.insert(n1.clone(), sort.clone());
        self.var_sorts.insert(n2.clone(), sort);
        (Term::Var(n1), Term::Var(n2))
    }

    /// Records a relational fact: into the raw list (for the falsifier)
    /// and into the solver session (for proofs). In the incremental
    /// regime the session work is buffered and the fact (with its
    /// free-variable sorts and origin statement) is folded into the
    /// context digest instead.
    fn push_fact(&mut self, fact: Term) {
        self.facts.push(fact.clone());
        self.fact_origins.push(self.path.clone());
        match &mut self.discharge {
            Discharge::Direct => self.session.assert(fact),
            Discharge::Cached(state) => {
                let top = state.ctx.last_mut().expect("root context");
                top.tag("assert");
                feed_term(top, &fact, &self.var_sorts);
                state.pending.push(PendingOp::Assert(fact));
            }
        }
    }

    /// Opens a fact scope (solver session + raw list mark).
    fn begin_scope(&mut self) -> usize {
        match &mut self.discharge {
            Discharge::Direct => self.session.push(),
            Discharge::Cached(state) => {
                let mut child = state.ctx.last().expect("root context").clone();
                child.tag("push");
                state.ctx.push(child);
                state.pending_marks.push((state.replays, state.pending.len()));
                state.pending.push(PendingOp::Push);
            }
        }
        self.facts.len()
    }

    /// Closes a fact scope opened by [`Exec::begin_scope`].
    fn end_scope(&mut self, mark: usize) {
        match &mut self.discharge {
            Discharge::Direct => self.session.pop(),
            Discharge::Cached(state) => {
                state.ctx.pop();
                let (generation, pending_mark) = state
                    .pending_marks
                    .pop()
                    .expect("end_scope without begin_scope");
                if generation == state.replays {
                    // The whole scope is still buffered: cancel it without
                    // the session ever seeing it.
                    state.pending.truncate(pending_mark);
                } else {
                    // Part of the scope reached the session (a miss
                    // occurred inside): buffer the matching pop.
                    state.pending.push(PendingOp::Pop);
                }
            }
        }
        self.facts.truncate(mark);
        self.fact_origins.truncate(mark);
    }

    /// Applies every buffered session operation (incremental regime only;
    /// called when an obligation-store miss needs the real session).
    fn replay_pending(state: &mut CachedState<'_>, session: &mut dyn SolverSession) {
        for op in state.pending.drain(..) {
            match op {
                PendingOp::Push => session.push(),
                PendingOp::Pop => session.pop(),
                PendingOp::Assert(fact) => session.assert(fact),
                PendingOp::Sync => session.sync(),
            }
        }
        state.replays += 1;
    }

    /// Evaluates a program expression to its per-side symbolic terms.
    fn eval(&mut self, e: &Term) -> (Term, Term) {
        let mut bind1 = BTreeMap::new();
        let mut bind2 = BTreeMap::new();
        for x in e.free_vars() {
            match self.store.get(&x) {
                Some((t1, t2)) => {
                    bind1.insert(x.clone(), t1.clone());
                    bind2.insert(x.clone(), t2.clone());
                }
                None => {
                    self.errors
                        .push(format!("use of unbound program variable `{x}`"));
                    let (t1, t2) = self.fresh_high(x.as_str(), Sort::Unknown);
                    bind1.insert(x.clone(), t1);
                    bind2.insert(x.clone(), t2);
                }
            }
        }
        (e.subst(&bind1), e.subst(&bind2))
    }

    fn prove(&mut self, description: impl Into<String>, code: DiagnosticCode, goal: Term) {
        let span = self.program.span_at(&self.path);
        let path = self.path.clone();
        self.prove_with_span(description.into(), code, span, path, goal);
    }

    fn prove_with_span(
        &mut self,
        description: String,
        code: DiagnosticCode,
        span: Option<SourceSpan>,
        path: StmtPath,
        goal: Term,
    ) {
        let discharge = std::mem::replace(&mut self.discharge, Discharge::Direct);
        match discharge {
            Discharge::Direct => {
                let _span =
                    commcsl_telemetry::span!("symexec.obligation", index = self.obligations.len());
                let started = Instant::now();
                let status = if self.config.static_prepass && goal_statically_valid(&goal) {
                    // Statically discharged: the solver never sees the
                    // goal, but the skipped check still closes an
                    // assertion batch (an incremental backend saturates
                    // per batch), so later verdicts match a prepass-off
                    // run bit for bit.
                    self.session.sync();
                    self.direct_stats.record(ObligationVerdict::StaticallyProven);
                    ObligationStatus::Proved
                } else {
                    self.direct_stats.record(ObligationVerdict::SolverChecked);
                    self.direct_status(&goal)
                };
                let core = matches!(status, ObligationStatus::Proved)
                    .then(|| self.core_candidate(&goal))
                    .flatten();
                self.obligation_times.push(started.elapsed());
                self.obligations.push(ObligationResult {
                    description,
                    code,
                    span,
                    status,
                    core,
                });
            }
            Discharge::Cached(state) => {
                // The dependency-cone key: the live-context digest (config,
                // scoped facts, batch boundaries) plus the goal and the
                // sorts steering its falsification.
                let mut h = state.ctx.last().expect("root context").clone();
                h.tag("goal");
                feed_term(&mut h, &goal, &self.var_sorts);
                let key = ObligationKey::from_hasher(&h);
                let meta = ObligationMeta {
                    description,
                    code,
                    span,
                    path,
                };
                // The core is purely syntactic (facts + goal), so it is
                // computed up front, identically for hits, static
                // discharges, and solver checks — cache routes cannot
                // perturb report bytes.
                let core = self.core_candidate(&goal);
                self.settle_cached(
                    state,
                    key,
                    meta,
                    core,
                    true,
                    |exec| exec.config.static_prepass && goal_statically_valid(&goal),
                    |exec| exec.direct_status(&goal),
                );
            }
        }
    }

    /// The proof core of a goal about to be (or just) proved, when
    /// tracking is on: the statement paths of the facts
    /// [`assumption_core`] admits, resolved through `fact_origins`,
    /// deduplicated and sorted. `None` when the knob is off.
    fn core_candidate(&self, goal: &Term) -> Option<Vec<CoreFact>> {
        if !self.config.proof_cores {
            return None;
        }
        let mut paths: Vec<StmtPath> = assumption_core(&self.facts, goal)
            .into_iter()
            .map(|i| self.fact_origins[i].clone())
            .collect();
        paths.sort();
        paths.dedup();
        Some(
            paths
                .into_iter()
                .map(|path| {
                    let span = self.program.span_at(&path);
                    CoreFact { path, span }
                })
                .collect(),
        )
    }

    /// Settles one obligation in the incremental regime — the shared
    /// tail of every cached discharge: consult the store, compute (and
    /// record) on a miss, account, emit the event, push the result, and
    /// restore the discharge state. `session_backed` is true for path
    /// obligations, whose checks interact with the solver session (cone
    /// = the live facts; hits buffer a `Sync`, misses replay the buffer,
    /// and either way the check is a batch boundary for what follows);
    /// spec-validity obligations pass false (their checker is
    /// session-free and their cone is empty).
    ///
    /// `statically` is the pre-pass test for the goal: on a store miss it
    /// runs *before* the solver — a statically valid goal is proved
    /// without replaying the buffered session (a `Sync` stands in for the
    /// skipped check, exactly like a store hit) and its status enters the
    /// store like any other.
    #[allow(clippy::too_many_arguments)] // private discharge tail: the params are the obligation
    fn settle_cached(
        &mut self,
        mut state: Box<CachedState<'b>>,
        key: ObligationKey,
        meta: ObligationMeta,
        core: Option<Vec<CoreFact>>,
        session_backed: bool,
        statically: impl FnOnce(&mut Self) -> bool,
        compute: impl FnOnce(&mut Self) -> ObligationStatus,
    ) {
        let _span =
            commcsl_telemetry::span!("symexec.obligation", index = self.obligations.len());
        let started = Instant::now();
        let (status, verdict) = match state.store.get(key) {
            Some(status) => {
                if session_backed {
                    // The skipped check still closed an assertion batch
                    // in the cold run; a `Sync` keeps any later replay
                    // bit-identical.
                    state.pending.push(PendingOp::Sync);
                }
                (status, ObligationVerdict::Reused)
            }
            None if session_backed && statically(self) => {
                // Statically discharged: no session replay needed — the
                // solver never sees this goal — but the skipped check is
                // still a batch boundary, exactly like a store hit.
                state.pending.push(PendingOp::Sync);
                let status = ObligationStatus::Proved;
                state.store.put(key, &status);
                (status, ObligationVerdict::StaticallyProven)
            }
            None => {
                if session_backed {
                    Self::replay_pending(&mut state, self.session.as_mut());
                }
                let status = compute(self);
                state.store.put(key, &status);
                (status, ObligationVerdict::SolverChecked)
            }
        };
        if session_backed {
            // Whether skipped or checked, the obligation is a batch
            // boundary for everything after it.
            state.top().tag("flush");
        }
        state.stats.record(verdict);
        let core = matches!(status, ObligationStatus::Proved)
            .then_some(core)
            .flatten();
        let result = ObligationResult {
            description: meta.description,
            code: meta.code,
            span: meta.span,
            status,
            core,
        };
        let cone: &[StmtPath] = if session_backed {
            &self.fact_origins
        } else {
            &[]
        };
        let time = started.elapsed();
        (state.sink)(&ObligationEvent {
            index: self.obligations.len(),
            key,
            path: &meta.path,
            cone,
            result: &result,
            verdict,
            time,
        });
        self.obligation_times.push(time);
        self.obligations.push(result);
        self.discharge = Discharge::Cached(state);
    }

    /// Discharges one goal against the real session (the cold path: a
    /// solver check plus, on failure, the falsifier hunt).
    fn direct_status(&mut self, goal: &Term) -> ObligationStatus {
        match self.session.check(goal) {
            Verdict::Proved => ObligationStatus::Proved,
            _ => {
                let mut failure = Failure::new(format!("not provable: {goal:?}"));
                if let Some(env) = self.try_falsify(goal) {
                    failure = failure.with_counterexample(Counterexample::from_env(&env));
                }
                ObligationStatus::Failed(failure)
            }
        }
    }

    /// Hunts for a concrete falsifying assignment for a failed goal.
    /// Possible only when every free symbolic variable of the query has a
    /// known sort (fresh variables minted for havocs and merges do not).
    /// With [`VerifierConfig::minimize_counterexamples`] on, the found
    /// environment is delta-debugged down to a minimal fact cone before
    /// it is reported.
    fn try_falsify(&self, goal: &Term) -> Option<commcsl_pure::term::Env> {
        if !self.config.counterexamples {
            return None;
        }
        let mut vars: Vec<Symbol> = goal.free_vars().into_iter().collect();
        for fact in &self.facts {
            vars.extend(fact.free_vars());
        }
        vars.sort();
        vars.dedup();
        let mut sorts: BTreeMap<Symbol, Sort> = BTreeMap::new();
        for v in vars {
            match self.var_sorts.get(&v) {
                Some(sort) if *sort != Sort::Unknown => {
                    sorts.insert(v, sort.clone());
                }
                _ => return None,
            }
        }
        let env = find_counterexample(&self.facts, goal, &sorts, &self.config.falsify)?;
        if !self.config.minimize_counterexamples {
            return Some(env);
        }
        Some(
            minimize_counterexample(
                &self.facts,
                goal,
                &sorts,
                &self.config.falsify,
                self.config.backend,
                &self.config.solver,
                env,
            )
            .env,
        )
    }

    fn prove_low(&mut self, description: impl Into<String>, code: DiagnosticCode, e: &Term) {
        let (e1, e2) = self.eval(e);
        self.prove(description, code, Term::eq(e1, e2));
    }

    /// The per-side repetition count of an action performed at the current
    /// control point (product of enclosing multipliers).
    fn current_count(&self, extra: Option<&(Term, Term)>) -> (Term, Term) {
        let mut c1 = Term::int(1);
        let mut c2 = Term::int(1);
        for (m1, m2) in self.multipliers.iter().chain(extra) {
            c1 = Term::mul(c1, m1.clone());
            c2 = Term::mul(c2, m2.clone());
        }
        (c1, c2)
    }

    // ---------------------------------------------------------- statements

    fn run_body(&mut self, body: &[VStmt]) {
        self.run_body_at(body, 0);
    }

    /// Runs a statement list whose members live at path component
    /// `offset..offset + body.len()` under the current path (see
    /// [`crate::program::StmtPath`] for the offset conventions).
    fn run_body_at(&mut self, body: &[VStmt], offset: u32) {
        for (i, stmt) in body.iter().enumerate() {
            self.path.push(offset + i as u32);
            self.run_stmt(stmt);
            self.path.pop();
        }
    }

    fn run_stmt(&mut self, stmt: &VStmt) {
        match stmt {
            VStmt::Input { var, sort, low } => {
                let pair = if *low {
                    self.fresh_low(var.as_str(), sort.clone())
                } else {
                    self.fresh_high(var.as_str(), sort.clone())
                };
                self.store.insert(var.clone(), pair);
            }
            VStmt::Assign(x, e) => {
                let pair = self.eval(e);
                self.store.insert(x.clone(), pair);
            }
            VStmt::AssertLow(e) => {
                self.prove_low(format!("assert Low({e:?})"), DiagnosticCode::LowAssert, e)
            }
            VStmt::Output(e) => self.prove_low(
                format!("output requires Low({e:?})"),
                DiagnosticCode::LowOutput,
                e,
            ),
            VStmt::If {
                cond,
                then_b,
                else_b,
            } => self.run_if(cond, then_b, else_b),
            VStmt::For {
                var,
                from,
                to,
                body,
            } => self.run_for(var, from, to, body),
            VStmt::Share { resource, init } => self.run_share(*resource, init),
            VStmt::Par { workers } => self.run_par(workers),
            VStmt::Atomic {
                resource,
                action,
                arg,
            } => self.run_atomic(*resource, action, arg, None),
            VStmt::AtomicBatch {
                resource,
                action,
                arg,
                count,
            } => {
                let count_pair = self.eval(count);
                self.run_atomic(*resource, action, arg, Some(count_pair));
            }
            VStmt::AtomicDeferred {
                resource,
                action,
                arg,
            } => self.run_atomic_deferred(*resource, action, arg),
            VStmt::ConsumeBind {
                resource,
                action,
                var,
                index,
            } => self.run_consume_bind(*resource, action, var, index),
            VStmt::Unshare { resource, into } => self.run_unshare(*resource, into),
        }
    }

    /// Like [`Exec::run_atomic`], but queues the precondition for the end
    /// of the program (the paper's retroactive check for the pipeline).
    fn run_atomic_deferred(&mut self, resource: usize, action: &Symbol, arg: &Term) {
        // Structural bookkeeping identical to a normal atomic...
        self.run_atomic_inner(resource, action, arg, None, true);
    }

    fn run_consume_bind(
        &mut self,
        resource: usize,
        action: &Symbol,
        var: &Symbol,
        index: &Term,
    ) {
        // Structurally a normal atomic with a unit argument.
        self.run_atomic_inner(
            resource,
            action,
            &Term::Lit(commcsl_pure::Value::Unit),
            None,
            false,
        );
        let bound = self.fresh_high(var.as_str(), Sort::Unknown);
        let idx = self.eval(index);
        if let ResState::Shared { reads, .. } = &mut self.resources[resource] {
            reads.push((bound.clone(), idx));
        }
        self.store.insert(var.clone(), bound);
    }

    fn run_if(&mut self, cond: &Term, then_b: &[VStmt], else_b: &[VStmt]) {
        let (c1, c2) = self.eval(cond);
        let effectful = then_b.iter().chain(else_b).any(VStmt::has_effects);
        if effectful {
            // Lockstep conditional: the condition must be low.
            self.prove(
                format!("effectful branch condition Low({cond:?})"),
                DiagnosticCode::LowBranch,
                Term::eq(c1.clone(), c2.clone()),
            );
            // Both branches run with the appropriate multiplier; variables
            // they assign are merged by ite.
            let saved_store = self.store.clone();

            let mark = self.begin_scope();
            self.multipliers.push((
                Term::ite(c1.clone(), Term::int(1), Term::int(0)),
                Term::ite(c2.clone(), Term::int(1), Term::int(0)),
            ));
            self.push_fact(c1.clone());
            self.push_fact(c2.clone());
            self.run_body_at(then_b, 0);
            let then_store = std::mem::replace(&mut self.store, saved_store.clone());
            self.end_scope(mark);
            self.multipliers.pop();

            let mark = self.begin_scope();
            self.multipliers.push((
                Term::ite(c1.clone(), Term::int(0), Term::int(1)),
                Term::ite(c2.clone(), Term::int(0), Term::int(1)),
            ));
            self.push_fact(Term::not(c1.clone()));
            self.push_fact(Term::not(c2.clone()));
            self.run_body_at(else_b, then_b.len() as u32);
            let else_store = std::mem::replace(&mut self.store, saved_store);
            self.end_scope(mark);
            self.multipliers.pop();

            self.merge_stores(&c1, &c2, then_store, else_store);
        } else {
            // Pure branches: evaluate both and merge per side — the
            // executions may take different branches (high branching).
            let saved_store = self.store.clone();
            self.run_body_at(then_b, 0);
            let then_store = std::mem::replace(&mut self.store, saved_store.clone());
            self.run_body_at(else_b, then_b.len() as u32);
            let else_store = std::mem::replace(&mut self.store, saved_store);
            self.merge_stores(&c1, &c2, then_store, else_store);
        }
    }

    fn merge_stores(
        &mut self,
        c1: &Term,
        c2: &Term,
        then_store: BTreeMap<Symbol, (Term, Term)>,
        else_store: BTreeMap<Symbol, (Term, Term)>,
    ) {
        let mut vars: Vec<Symbol> = then_store.keys().cloned().collect();
        vars.extend(else_store.keys().cloned());
        vars.sort();
        vars.dedup();
        for x in vars {
            let base = self.store.get(&x).cloned();
            let t = then_store.get(&x).cloned().or_else(|| base.clone());
            let e = else_store.get(&x).cloned().or_else(|| base.clone());
            match (t, e) {
                (Some((t1, t2)), Some((e1, e2))) => {
                    let v1 = if t1 == e1 {
                        t1
                    } else {
                        Term::ite(c1.clone(), t1, e1)
                    };
                    let v2 = if t2 == e2 {
                        t2
                    } else {
                        Term::ite(c2.clone(), t2, e2)
                    };
                    self.store.insert(x, (v1, v2));
                }
                (Some(only), None) | (None, Some(only)) => {
                    // Assigned in one branch with no prior value: the
                    // merged value is branch-dependent and unconstrained
                    // otherwise; model with a fresh high pair refined by an
                    // ite where possible. Conservative: fresh high.
                    let _ = only;
                    let fresh = self.fresh_high(x.as_str(), Sort::Unknown);
                    self.store.insert(x, fresh);
                }
                (None, None) => {}
            }
        }
    }

    fn run_for(&mut self, var: &Symbol, from: &Term, to: &Term, body: &[VStmt]) {
        let (f1, f2) = self.eval(from);
        let (t1, t2) = self.eval(to);
        self.prove(
            format!("loop bounds Low({from:?}) and Low({to:?})"),
            DiagnosticCode::LowLoopBounds,
            Term::and([
                Term::eq(f1.clone(), f2.clone()),
                Term::eq(t1.clone(), t2.clone()),
            ]),
        );
        // One symbolic iteration at a fresh low index ι with f ≤ ι < t.
        let saved_store = self.store.clone();
        let mark = self.begin_scope();
        let (i1, i2) = self.fresh_low("iter", Sort::Int);
        self.store.insert(var.clone(), (i1.clone(), i2.clone()));
        self.push_fact(Term::le(f1.clone(), i1.clone()));
        self.push_fact(Term::lt(i1, t1.clone()));
        self.push_fact(Term::le(f2, i2.clone()));
        self.push_fact(Term::lt(i2, t2));

        let iterations = (
            Term::sub(t1.clone(), f1.clone()),
            Term::sub(t1, f1), // bounds proved low: same term is sound
        );
        self.multipliers.push(iterations);
        self.run_body(body);
        self.multipliers.pop();
        self.end_scope(mark);

        // Restore the pre-loop store; variables the body assigned (and the
        // loop variable) are havoced — their final value depends on the
        // last iteration, which the single-iteration summary does not
        // track.
        let body_store = std::mem::replace(&mut self.store, saved_store);
        let mut touched: Vec<Symbol> = body_store
            .keys()
            .filter(|x| body_store.get(*x) != self.store.get(*x))
            .cloned()
            .collect();
        touched.push(var.clone());
        touched.sort();
        touched.dedup();
        for x in touched {
            let fresh = self.fresh_high(x.as_str(), Sort::Unknown);
            self.store.insert(x, fresh);
        }
    }

    /// Discharges (or replays) the spec-validity obligation of a `share`.
    fn prove_spec_validity(&mut self, spec: &ResourceSpec) {
        let description = format!("resource spec `{}` is valid", spec.name);
        let span = self.program.span_at(&self.path);
        let path = self.path.clone();
        let discharge = std::mem::replace(&mut self.discharge, Discharge::Direct);
        match discharge {
            Discharge::Direct => {
                let _span =
                    commcsl_telemetry::span!("symexec.obligation", index = self.obligations.len());
                let started = Instant::now();
                let status = self.spec_validity_status(spec);
                self.direct_stats.record(ObligationVerdict::SolverChecked);
                self.obligation_times.push(started.elapsed());
                // Spec validity never reads the path condition: its core
                // is the empty fact set (when tracking is on at all).
                let core = (self.config.proof_cores
                    && matches!(status, ObligationStatus::Proved))
                .then(Vec::new);
                self.obligations.push(ObligationResult {
                    description,
                    code: DiagnosticCode::SpecValidity,
                    span,
                    status,
                    core,
                });
            }
            Discharge::Cached(state) => {
                // The validity check never reads the path condition, so
                // its cone is just the specification and the config — the
                // same spec shared from anywhere (any document, any edit)
                // replays one cached status.
                let mut h = StableHasher::new();
                h.tag("obligation.spec-validity");
                spec.stable_hash(&mut h);
                self.config.stable_hash(&mut h);
                let key = ObligationKey::from_hasher(&h);
                let meta = ObligationMeta {
                    description,
                    code: DiagnosticCode::SpecValidity,
                    span,
                    path,
                };
                // Spec validity quantifies over action pairs — never a
                // single goal term — so the pre-pass does not apply. Its
                // core is the empty fact set when tracking is on.
                let core = self.config.proof_cores.then(Vec::new);
                self.settle_cached(state, key, meta, core, false, |_| false, |exec| {
                    exec.spec_validity_status(spec)
                });
            }
        }
    }

    /// Runs the validity checker and shapes its outcome as an obligation
    /// status (the cold path of [`Exec::prove_spec_validity`]).
    fn spec_validity_status(&self, spec: &ResourceSpec) -> ObligationStatus {
        let report = check_validity(spec, &self.config.validity);
        if report.is_valid() {
            ObligationStatus::Proved
        } else {
            let undecided: Vec<_> = report
                .obligations
                .iter()
                .filter(|o| {
                    !matches!(
                        o.outcome,
                        commcsl_logic::validity::ObligationOutcome::Proved
                    )
                })
                .map(|o| o.obligation.clone())
                .collect();
            let mut failure =
                Failure::new(format!("invalid or undecided obligations: {undecided:?}"));
            if self.config.counterexamples {
                if let Some((_, env)) = report.first_counterexample() {
                    failure = failure.with_counterexample(Counterexample::from_env(env));
                }
            }
            ObligationStatus::Failed(failure)
        }
    }

    fn run_share(&mut self, resource: usize, init: &Term) {
        let Some(spec) = self.program.resources.get(resource) else {
            self.errors.push(format!("share of unknown resource {resource}"));
            return;
        };
        if !matches!(self.resources[resource], ResState::Idle) {
            self.errors
                .push(format!("resource {resource} shared twice"));
            return;
        }
        // Specification validity (Def. 3.1) — checked once per share, and
        // in the incremental regime cached by (spec, config) alone: the
        // check is independent of the path condition.
        self.prove_spec_validity(spec);
        // Property (1): Low(α(init)).
        let (v1, v2) = self.eval(init);
        self.prove(
            format!("initial abstraction low: Low(α({init:?}))"),
            DiagnosticCode::LowInit,
            Term::eq(spec.alpha_term(&v1), spec.alpha_term(&v2)),
        );
        self.resources[resource] = ResState::Shared {
            ledger: Vec::new(),
            owners: BTreeMap::new(),
            reads: Vec::new(),
        };
    }

    fn run_par(&mut self, workers: &[Vec<VStmt>]) {
        if self.current_worker.is_some() {
            self.errors
                .push("nested Par inside a worker is not supported".into());
            return;
        }
        let saved_store = self.store.clone();
        let mut all_assigned: Vec<Symbol> = Vec::new();
        for (w, body) in workers.iter().enumerate() {
            self.current_worker = Some(w);
            self.store = saved_store.clone();
            self.path.push(w as u32);
            self.run_body(body);
            self.path.pop();
            let worker_store = std::mem::replace(&mut self.store, saved_store.clone());
            all_assigned.extend(
                worker_store
                    .into_iter()
                    .filter(|(x, v)| saved_store.get(x) != Some(v))
                    .map(|(x, _)| x),
            );
        }
        self.current_worker = None;
        self.store = saved_store;
        // Worker-local variables are havoced at the join (their final
        // values are worker-private; cross-thread reads are data races the
        // language forbids anyway).
        all_assigned.sort();
        all_assigned.dedup();
        for x in all_assigned {
            let fresh = self.fresh_high(x.as_str(), Sort::Unknown);
            self.store.insert(x, fresh);
        }
    }

    fn run_atomic(
        &mut self,
        resource: usize,
        action: &Symbol,
        arg: &Term,
        batch_count: Option<(Term, Term)>,
    ) {
        self.run_atomic_inner(resource, action, arg, batch_count, false);
    }

    fn run_atomic_inner(
        &mut self,
        resource: usize,
        action: &Symbol,
        arg: &Term,
        batch_count: Option<(Term, Term)>,
        defer_pre: bool,
    ) {
        let Some(spec) = self.program.resources.get(resource) else {
            self.errors
                .push(format!("atomic on unknown resource {resource}"));
            return;
        };
        let Some(act) = spec.action(action.as_str()).cloned() else {
            self.errors.push(format!(
                "action `{action}` is not declared by resource `{}`",
                spec.name
            ));
            return;
        };
        let worker = self.current_worker;
        if !matches!(self.resources[resource], ResState::Shared { .. }) {
            self.errors.push(format!(
                "atomic `{action}` while resource {resource} is not shared"
            ));
            return;
        }
        let lockstep = batch_count.is_none();
        let count = self.current_count(batch_count.as_ref());
        // Guard discipline and ledger recording (scoped mutable borrow).
        {
            let ResState::Shared { ledger, owners, .. } = &mut self.resources[resource] else {
                unreachable!("checked above");
            };
            // A unique action's guard is unsplittable: one owner only.
            if act.kind == ActionKind::Unique {
                match owners.get(action) {
                    None => {
                        owners.insert(action.clone(), worker);
                    }
                    Some(owner) if *owner == worker => {}
                    Some(owner) => {
                        self.errors.push(format!(
                            "unique action `{action}` used by worker {worker:?} but owned by {owner:?}"
                        ));
                        return;
                    }
                }
            }
            ledger.push(Batch {
                action: action.clone(),
                lockstep,
                count,
            });
        }
        // Property (3a): the relational precondition of the action, proved
        // at the perform site (the lockstep bijection partner is the same
        // syntactic occurrence in the other execution) — or queued for the
        // end of the program when deferred.
        let (a1, a2) = self.eval(arg);
        let description = format!("pre of `{action}`({arg:?})");
        let goal = act.pre_term(&a1, &a2);
        if defer_pre {
            self.deferred.push(Deferred {
                description: format!("{description} [retroactive]"),
                code: DiagnosticCode::ActionPreRetro,
                span: self.program.span_at(&self.path),
                path: self.path.clone(),
                goal,
            });
        } else {
            self.prove(description, DiagnosticCode::ActionPre, goal);
        }
    }

    fn run_unshare(&mut self, resource: usize, into: &Symbol) {
        let Some(spec) = self.program.resources.get(resource) else {
            self.errors
                .push(format!("unshare of unknown resource {resource}"));
            return;
        };
        if self.current_worker.is_some() {
            self.errors
                .push("unshare inside a worker is not supported".into());
            return;
        }
        let state = std::mem::replace(&mut self.resources[resource], ResState::Consumed);
        let ResState::Shared { ledger, reads, .. } = state else {
            self.errors.push(format!(
                "unshare of resource {resource} which is not shared"
            ));
            self.resources[resource] = state;
            return;
        };
        // Property (2): the number of performed actions is low. Lockstep
        // batches have syntactically equal per-side counts (their
        // multipliers were proved low); any non-lockstep batch triggers the
        // retroactive total-count check per action.
        let mut actions: Vec<Symbol> = ledger.iter().map(|b| b.action.clone()).collect();
        actions.sort();
        actions.dedup();
        for action in actions {
            let batches: Vec<&Batch> =
                ledger.iter().filter(|b| b.action == action).collect();
            if batches.iter().all(|b| b.lockstep) {
                continue;
            }
            let sum1 = batches
                .iter()
                .map(|b| b.count.0.clone())
                .reduce(Term::add)
                .unwrap_or_else(|| Term::int(0));
            let sum2 = batches
                .iter()
                .map(|b| b.count.1.clone())
                .reduce(Term::add)
                .unwrap_or_else(|| Term::int(0));
            self.prove(
                format!("total count of `{action}` is low (retroactive)"),
                DiagnosticCode::LowBatchTotal,
                Term::eq(sum1, sum2),
            );
        }
        // The Share rule's postcondition: ∃x'. I(x') ∗ Low(α(x')). Bind the
        // final value to a fresh high pair constrained by the abstraction
        // equality.
        let (w1, w2) = self.fresh_high(&format!("{into}_final"), spec.value_sort.clone());
        if self.config.proof_cores {
            // The abstraction-equality assumption is the annotation the
            // hints audit: an unshare no proved obligation's core reaches
            // did not carry any proof.
            self.annotation_sites.push((self.path.clone(), spec.name.clone()));
        }
        self.push_fact(Term::eq(spec.alpha_term(&w1), spec.alpha_term(&w2)));
        // Consume-bindings (single-consumer FIFO): the element bound at
        // index i was the i-th element of the produced sequence (the pure
        // value's second component). These facts are what let deferred
        // preconditions conclude low-ness retroactively.
        for ((b1, b2), (i1, i2)) in reads {
            let f1 = Term::eq(
                b1,
                Term::app(
                    commcsl_pure::Func::SeqIndexOr,
                    [Term::snd(w1.clone()), i1, Term::int(0)],
                ),
            );
            let f2 = Term::eq(
                b2,
                Term::app(
                    commcsl_pure::Func::SeqIndexOr,
                    [Term::snd(w2.clone()), i2, Term::int(0)],
                ),
            );
            self.push_fact(f1);
            self.push_fact(f2);
        }
        self.store.insert(into.clone(), (w1, w2));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commcsl_logic::spec::ResourceSpec;
    use commcsl_pure::{Func, Sort};
    use commcsl_smt::BackendKind;

    fn cfg() -> VerifierConfig {
        VerifierConfig::default()
    }

    /// Every symexec test runs under both backends: the fixture suite pins
    /// them verdict-identical, and these unit programs are the smallest
    /// counterexamples if that ever regresses.
    fn both_backends(f: impl Fn(&VerifierConfig)) {
        for backend in BackendKind::ALL {
            let mut config = cfg();
            config.backend = backend;
            config.validity.backend = backend;
            f(&config);
        }
    }

    fn counter_program(output_counter: bool) -> AnnotatedProgram {
        AnnotatedProgram::new("counter")
            .with_resource(ResourceSpec::counter_add())
            .with_body([
                VStmt::input("a", Sort::Int, true),
                VStmt::input("b", Sort::Int, true),
                VStmt::Share {
                    resource: 0,
                    init: Term::int(0),
                },
                VStmt::Par {
                    workers: vec![
                        vec![VStmt::atomic(0, "Add", Term::var("a"))],
                        vec![VStmt::atomic(0, "Add", Term::var("b"))],
                    ],
                },
                VStmt::Unshare {
                    resource: 0,
                    into: "c".into(),
                },
                if output_counter {
                    VStmt::Output(Term::var("c"))
                } else {
                    VStmt::AssertLow(Term::int(0))
                },
            ])
    }

    #[test]
    fn counter_with_low_addends_verifies() {
        both_backends(|config| {
            let report = verify(&counter_program(true), config);
            assert!(report.verified(), "{report}");
        });
    }

    #[test]
    fn high_addend_fails_pre_obligation() {
        both_backends(|config| {
            let mut p = counter_program(true);
            p.body[0] = VStmt::input("a", Sort::Int, false); // high input
            let report = verify(&p, config);
            assert!(!report.verified());
            assert!(report
                .failures()
                .any(|f| f.description.contains("pre of `Add`")));
            assert!(report
                .failures()
                .all(|f| f.code == DiagnosticCode::ActionPre));
        });
    }

    #[test]
    fn direct_output_of_high_input_fails_with_counterexample() {
        both_backends(|config| {
            let p = AnnotatedProgram::new("leak").with_body([
                VStmt::input("h", Sort::Int, false),
                VStmt::Output(Term::var("h")),
            ]);
            let report = verify(&p, config);
            assert!(!report.verified());
            let failure = report
                .failures()
                .next()
                .and_then(ObligationResult::failure)
                .expect("one failure");
            // The falsifier finds a witness: h differs across executions.
            let cex = failure
                .counterexample
                .as_ref()
                .expect("counterexample for a direct leak");
            let h = cex
                .bindings
                .iter()
                .find(|b| b.var.contains("_h"))
                .expect("binding for h");
            assert_ne!(h.exec1, h.exec2, "{cex:?}");
        });
    }

    #[test]
    fn high_branch_merging_keeps_low_results_low() {
        // x := ite-shaped merge of equal values is still low; differing
        // values under a high condition are not.
        both_backends(|config| {
            let p = AnnotatedProgram::new("merge").with_body([
                VStmt::input("h", Sort::Bool, false),
                VStmt::If {
                    cond: Term::var("h"),
                    then_b: vec![VStmt::assign("x", Term::int(1))],
                    else_b: vec![VStmt::assign("x", Term::int(1))],
                },
                VStmt::Output(Term::var("x")),
            ]);
            assert!(verify(&p, config).verified());

            let p_leak = AnnotatedProgram::new("merge-leak").with_body([
                VStmt::input("h", Sort::Bool, false),
                VStmt::If {
                    cond: Term::var("h"),
                    then_b: vec![VStmt::assign("x", Term::int(1))],
                    else_b: vec![VStmt::assign("x", Term::int(2))],
                },
                VStmt::Output(Term::var("x")),
            ]);
            assert!(!verify(&p_leak, config).verified());
        });
    }

    #[test]
    fn invalid_spec_is_rejected_at_share() {
        use commcsl_logic::spec::ActionDef;
        both_backends(|config| {
            // Fig. 1: arbitrary assignment, identity abstraction.
            let set = ActionDef::shared(
                "Set",
                Sort::Int,
                Term::var(ActionDef::ARG_VAR),
                Term::eq(
                    Term::var(ActionDef::ARG1_VAR),
                    Term::var(ActionDef::ARG2_VAR),
                ),
            );
            let spec = ResourceSpec::new(
                "fig1-assign",
                Sort::Int,
                Term::var(ResourceSpec::VALUE_VAR),
                [set],
            );
            let p = AnnotatedProgram::new("fig1")
                .with_resource(spec)
                .with_body([
                    VStmt::Share {
                        resource: 0,
                        init: Term::int(0),
                    },
                    VStmt::Par {
                        workers: vec![
                            vec![VStmt::atomic(0, "Set", Term::int(3))],
                            vec![VStmt::atomic(0, "Set", Term::int(4))],
                        ],
                    },
                    VStmt::Unshare {
                        resource: 0,
                        into: "s".into(),
                    },
                    VStmt::Output(Term::var("s")),
                ]);
            let report = verify(&p, config);
            assert!(!report.verified());
            let spec_failure = report
                .failures()
                .find(|f| f.description.contains("is valid"))
                .expect("spec validity failure");
            assert_eq!(spec_failure.code, DiagnosticCode::SpecValidity);
            // The invalid spec's counterexample (two different assigned
            // values) is surfaced on the share obligation.
            let failure = spec_failure.failure().expect("failed status");
            let cex = failure.counterexample.as_ref().expect("spec counterexample");
            let x = cex.bindings.iter().find(|b| b.var == "x").expect("x binding");
            assert_ne!(x.exec1, x.exec2);
        });
    }

    #[test]
    fn unique_action_two_workers_is_a_guard_error() {
        both_backends(|config| {
            let p = AnnotatedProgram::new("unique-misuse")
                .with_resource(ResourceSpec::disjoint_put_map(2))
                .with_body([
                    VStmt::Share {
                        resource: 0,
                        init: Term::Lit(commcsl_pure::Value::map_empty()),
                    },
                    VStmt::Par {
                        workers: vec![
                            vec![VStmt::atomic(
                                0,
                                "Put0",
                                Term::pair(Term::int(0), Term::int(1)),
                            )],
                            vec![VStmt::atomic(
                                0,
                                "Put0",
                                Term::pair(Term::int(2), Term::int(1)),
                            )],
                        ],
                    },
                    VStmt::Unshare {
                        resource: 0,
                        into: "m".into(),
                    },
                ]);
            let report = verify(&p, config);
            assert!(report
                .errors
                .iter()
                .any(|e| e.contains("unique action `Put0`")), "{report}");
        });
    }

    #[test]
    fn loop_with_high_bound_fails() {
        both_backends(|config| {
            let p = AnnotatedProgram::new("high-bound")
                .with_resource(ResourceSpec::counter_add())
                .with_body([
                    VStmt::input("n", Sort::Int, false),
                    VStmt::Share {
                        resource: 0,
                        init: Term::int(0),
                    },
                    VStmt::for_range(
                        "i",
                        Term::int(0),
                        Term::var("n"),
                        [VStmt::atomic(0, "Add", Term::int(1))],
                    ),
                    VStmt::Unshare {
                        resource: 0,
                        into: "c".into(),
                    },
                    VStmt::Output(Term::var("c")),
                ]);
            let report = verify(&p, config);
            assert!(!report.verified());
            assert!(report
                .failures()
                .any(|f| f.description.contains("loop bounds")
                    && f.code == DiagnosticCode::LowLoopBounds));
        });
    }

    #[test]
    fn map_keyset_loop_program_verifies() {
        // The Fig. 3/Fig. 5 shape: workers loop over low keys with high
        // values, put into a shared map, and the sorted key list is output.
        both_backends(|config| {
            let worker = |lo: Term, hi: Term| {
                vec![VStmt::for_range(
                    "i",
                    lo,
                    hi,
                    [
                        VStmt::input("adr", Sort::Int, true),
                        VStmt::input("rsn", Sort::Int, false),
                        VStmt::atomic(0, "Put", Term::pair(Term::var("adr"), Term::var("rsn"))),
                    ],
                )]
            };
            let p = AnnotatedProgram::new("fig3-map")
                .with_resource(ResourceSpec::keyset_map())
                .with_body([
                    VStmt::input("n", Sort::Int, true),
                    VStmt::Share {
                        resource: 0,
                        init: Term::Lit(commcsl_pure::Value::map_empty()),
                    },
                    VStmt::Par {
                        workers: vec![
                            worker(
                                Term::int(0),
                                Term::app(Func::Div, [Term::var("n"), Term::int(2)]),
                            ),
                            worker(
                                Term::app(Func::Div, [Term::var("n"), Term::int(2)]),
                                Term::var("n"),
                            ),
                        ],
                    },
                    VStmt::Unshare {
                        resource: 0,
                        into: "m".into(),
                    },
                    VStmt::Output(Term::app(
                        Func::SeqSorted,
                        [Term::app(
                            Func::SetToSeq,
                            [Term::app(Func::MapDom, [Term::var("m")])],
                        )],
                    )),
                ]);
            let report = verify(&p, config);
            assert!(report.verified(), "{report}");
        });
    }

    #[test]
    fn leaking_map_values_fails() {
        // Same program, but outputs the value at key 0: not derivable from
        // the key-set abstraction.
        both_backends(|config| {
            let p = AnnotatedProgram::new("fig3-value-leak")
                .with_resource(ResourceSpec::keyset_map())
                .with_body([
                    VStmt::Share {
                        resource: 0,
                        init: Term::Lit(commcsl_pure::Value::map_empty()),
                    },
                    VStmt::Par {
                        workers: vec![
                            vec![VStmt::input("r1", Sort::Int, false), VStmt::atomic(
                                0,
                                "Put",
                                Term::pair(Term::int(0), Term::var("r1")),
                            )],
                            vec![VStmt::input("r2", Sort::Int, false), VStmt::atomic(
                                0,
                                "Put",
                                Term::pair(Term::int(1), Term::var("r2")),
                            )],
                        ],
                    },
                    VStmt::Unshare {
                        resource: 0,
                        into: "m".into(),
                    },
                    VStmt::Output(Term::app(
                        Func::MapGetOr,
                        [Term::var("m"), Term::int(0), Term::int(0)],
                    )),
                ]);
            let report = verify(&p, config);
            assert!(!report.verified(), "{report}");
        });
    }

    #[test]
    fn counted_batches_require_low_totals() {
        // Two consumers whose individual counts are high but the total sum is low.
        both_backends(|config| {
            let spec = ResourceSpec::producer_consumer(true);
            let init = Term::pair(
                Term::app(Func::MkRight, [Term::Lit(commcsl_pure::Value::seq_empty())]),
                Term::Lit(commcsl_pure::Value::seq_empty()),
            );
            let p = AnnotatedProgram::new("2p2c-counts")
                .with_resource(spec)
                .with_body([
                    VStmt::input("n", Sort::Int, true),
                    VStmt::input("k", Sort::Int, false), // schedule-dependent split
                    VStmt::Share {
                        resource: 0,
                        init: init.clone(),
                    },
                    VStmt::Par {
                        workers: vec![
                            vec![VStmt::AtomicBatch {
                                resource: 0,
                                action: "Cons".into(),
                                arg: Term::Lit(commcsl_pure::Value::Unit),
                                count: Term::var("k"),
                            }],
                            vec![VStmt::AtomicBatch {
                                resource: 0,
                                action: "Cons".into(),
                                arg: Term::Lit(commcsl_pure::Value::Unit),
                                count: Term::sub(Term::var("n"), Term::var("k")),
                            }],
                        ],
                    },
                    VStmt::Unshare {
                        resource: 0,
                        into: "q".into(),
                    },
                ]);
            let report = verify(&p, config);
            assert!(report.verified(), "{report}");

            // If the total is high, the retroactive check fails.
            let mut p_bad = p.clone();
            p_bad.body[0] = VStmt::input("n", Sort::Int, false);
            let report = verify(&p_bad, config);
            assert!(!report.verified());
            assert!(report
                .failures()
                .any(|f| f.description.contains("total count")
                    && f.code == DiagnosticCode::LowBatchTotal));
        });
    }

    #[test]
    fn spans_flow_from_program_to_obligations() {
        let p = AnnotatedProgram::new("spanned")
            .with_body([
                VStmt::input("h", Sort::Int, false),
                VStmt::Output(Term::var("h")),
            ])
            .with_span(vec![0], SourceSpan::new(2, 1))
            .with_span(vec![1], SourceSpan::new(3, 1));
        let report = verify(&p, &cfg());
        let failure = report.failures().next().expect("leak fails");
        assert_eq!(failure.span, Some(SourceSpan::new(3, 1)));
        // Span-free construction yields span-free obligations.
        let bare = AnnotatedProgram::new("spanned").with_body(p.body.clone());
        let report = verify(&bare, &cfg());
        assert_eq!(report.failures().next().unwrap().span, None);
    }
}
