//! The unified [`Verifier`] session API.
//!
//! Historically this crate exposed three separate entry points — the
//! free functions [`verify`](crate::symexec::verify) and
//! [`verify_batch`](crate::batch::verify_batch), and the
//! [`CachedVerifier`] wrapper — each with its own configuration shape.
//! [`Verifier`] unifies them behind one builder:
//!
//! ```
//! use commcsl_verifier::api::Verifier;
//! use commcsl_verifier::program::{AnnotatedProgram, VStmt};
//! use commcsl_pure::{Sort, Term};
//! use commcsl_smt::BackendKind;
//!
//! let verifier = Verifier::new()
//!     .with_backend(BackendKind::Incremental)
//!     .with_threads(2)
//!     .with_fail_fast(false);
//! let program = AnnotatedProgram::new("ok").with_body([
//!     VStmt::input("x", Sort::Int, true),
//!     VStmt::Output(Term::var("x")),
//! ]);
//! let outcome = verifier.verify(&program);
//! assert!(outcome.report.verified());
//! assert_eq!(outcome.cached, None, "no cache configured");
//! ```
//!
//! Add `.with_cache(..)` and the same calls route through the
//! content-addressed verdict cache; reports stay byte-identical either
//! way (`outcome.report.to_json()` never depends on the route). The CLI,
//! the daemon, and the benches all build their pipelines through this
//! type, so every consumer renders the same structured diagnostics.
//!
//! The old free functions remain as thin shims for existing callers and
//! tests; new code should not use them.

use std::sync::OnceLock;
use std::time::Duration;

use commcsl_smt::{BackendKind, SessionStats};

use crate::batch::{verify_batch_ref, BatchConfig, BatchResult};
use crate::cache::{CacheConfig, CacheStats, CachedResult, CachedVerifier};
use crate::hash::ProgramHash;
use crate::obligation::DischargeStats;
use crate::program::AnnotatedProgram;
use crate::report::{VerifierConfig, VerifierReport};

/// The outcome of one program verified through a [`Verifier`].
///
/// One shape whatever the route: direct, batched, or cached.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Position in the input batch (0 for single-program calls).
    pub index: usize,
    /// Program name.
    pub program: String,
    /// The verification report (a placeholder when `skipped`).
    pub report: VerifierReport,
    /// Wall-clock time for this program.
    pub time: Duration,
    /// `Some(true)` when served from the verdict cache, `Some(false)`
    /// when computed through a cache, `None` when no cache is configured.
    pub cached: Option<bool>,
    /// The content address, when a cache is configured.
    pub key: Option<ProgramHash>,
    /// How the obligations were discharged (static pre-pass vs. solver).
    /// `None` on the cached route, where whole-program verdicts are
    /// served from the store without re-running the discharge pipeline.
    pub stats: Option<DischargeStats>,
    /// Wall-clock settle time per obligation, in report order. Diagnostic
    /// payload only (nondeterministic); empty on the cached route.
    pub obligation_times: Vec<Duration>,
    /// Cumulative solver-session counters for this program's run
    /// (pushes, pops, asserts, checks, quiescence skips). `None` on the
    /// cached route, where the solver never runs. Diagnostic payload
    /// only — never enters reports or cache keys.
    pub session: Option<SessionStats>,
    /// `true` when fail-fast stopped the batch before this program ran.
    pub skipped: bool,
}

/// A configured verification pipeline: backend choice, solver budgets,
/// thread pool, fail-fast policy, and (optionally) a verdict cache, built
/// once and reused across calls.
///
/// Construction is builder-style and cheap; the cache (when configured)
/// is created lazily on first use and shared across calls, so an
/// in-memory tier warms up across batches. The type is internally
/// synchronized — share it behind an `Arc` from concurrent callers.
#[derive(Debug, Default)]
pub struct Verifier {
    batch: BatchConfig,
    cache: Option<CacheConfig>,
    cached: OnceLock<CachedVerifier>,
}

impl Verifier {
    /// A verifier with default configuration: incremental backend, one
    /// worker per CPU, no cache, no fail-fast.
    pub fn new() -> Self {
        Verifier::default()
    }

    /// Replaces the full per-program verifier configuration.
    #[must_use]
    pub fn with_config(mut self, config: VerifierConfig) -> Self {
        assert_unused(&self.cached, "with_config");
        self.batch.verifier = config;
        self
    }

    /// Selects the solver backend for *both* program obligations and
    /// specification-validity checking.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        assert_unused(&self.cached, "with_backend");
        self.batch.verifier.backend = backend;
        self.batch.verifier.validity.backend = backend;
        self
    }

    /// Sets the worker-pool size (`0` = one per available CPU).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert_unused(&self.cached, "with_threads");
        self.batch.threads = threads;
        self
    }

    /// Enables or disables fail-fast batch dispatch (see
    /// [`BatchConfig::fail_fast`]).
    #[must_use]
    pub fn with_fail_fast(mut self, fail_fast: bool) -> Self {
        assert_unused(&self.cached, "with_fail_fast");
        self.batch.fail_fast = fail_fast;
        self
    }

    /// Routes verification through a content-addressed verdict cache.
    #[must_use]
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        assert_unused(&self.cached, "with_cache");
        self.cache = Some(cache);
        self
    }

    /// Enables or disables the sound static low-ness pre-pass (on by
    /// default). Verdicts and reports are byte-identical either way; the
    /// knob only changes *how* obligations are discharged, and it is part
    /// of the content hash so cached verdicts never cross the setting.
    #[must_use]
    pub fn with_static_prepass(mut self, enabled: bool) -> Self {
        assert_unused(&self.cached, "with_static_prepass");
        self.batch.verifier.static_prepass = enabled;
        self
    }

    /// Enables delta-debugging minimization of counterexamples (off by
    /// default). When on, every falsified obligation's environment is
    /// shrunk to a minimal fact cone that still falsifies, so hovers and
    /// reports show the two or three bindings that exhibit the leak. The
    /// knob is part of the content hash — cached verdicts never cross the
    /// setting — and reports with it off stay byte-identical to builds
    /// that predate it.
    #[must_use]
    pub fn with_minimized_counterexamples(mut self, enabled: bool) -> Self {
        assert_unused(&self.cached, "with_minimized_counterexamples");
        self.batch.verifier.minimize_counterexamples = enabled;
        self
    }

    /// Enables proof-core tracking (off by default). When on, every
    /// proved obligation records which asserted facts its proof can have
    /// used, and the report aggregates per-program "unneeded annotation"
    /// hints. Part of the content hash, like
    /// [`with_minimized_counterexamples`](Self::with_minimized_counterexamples);
    /// reports with it off are byte-identical to builds that predate it.
    #[must_use]
    pub fn with_proof_cores(mut self, enabled: bool) -> Self {
        assert_unused(&self.cached, "with_proof_cores");
        self.batch.verifier.proof_cores = enabled;
        self
    }

    /// The effective per-program configuration.
    pub fn config(&self) -> &VerifierConfig {
        &self.batch.verifier
    }

    /// The effective batch configuration.
    pub fn batch_config(&self) -> &BatchConfig {
        &self.batch
    }

    /// Verifies one program.
    pub fn verify(&self, program: &AnnotatedProgram) -> Outcome {
        self.verify_batch(&[program]).remove(0)
    }

    /// Verifies a batch, in input order. Cache hits (when a cache is
    /// configured) are answered immediately; misses run through the
    /// work-stealing pool. Verdicts are byte-identical whichever route
    /// served them.
    pub fn verify_batch(&self, programs: &[&AnnotatedProgram]) -> Vec<Outcome> {
        match self.cache.as_ref() {
            None => verify_batch_ref(programs, &self.batch)
                .into_iter()
                .map(Outcome::from_batch)
                .collect(),
            Some(_) => self
                .cached_verifier()
                .verify_batch(programs)
                .into_iter()
                .map(Outcome::from_cached)
                .collect(),
        }
    }

    /// Cumulative cache counters, when a cache is configured and has been
    /// touched.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref()?;
        Some(self.cached_verifier().stats())
    }

    /// Verdicts currently held in the in-memory cache tier.
    pub fn cache_memory_entries(&self) -> Option<usize> {
        self.cache.as_ref()?;
        Some(self.cached_verifier().memory_entries())
    }

    fn cached_verifier(&self) -> &CachedVerifier {
        self.cached.get_or_init(|| {
            CachedVerifier::new(
                self.batch.clone(),
                self.cache.clone().expect("cache config present"),
            )
        })
    }
}

/// Builder methods may not run after the pipeline has been used (the
/// cache would silently keep the old configuration).
fn assert_unused(cached: &OnceLock<CachedVerifier>, method: &str) {
    assert!(
        cached.get().is_none(),
        "Verifier::{method} called after the verifier was already used"
    );
}

impl Outcome {
    fn from_batch(result: BatchResult) -> Outcome {
        Outcome {
            index: result.index,
            program: result.program,
            report: result.report,
            time: result.time,
            cached: None,
            key: None,
            stats: Some(result.stats),
            obligation_times: result.obligation_times,
            session: Some(result.session),
            skipped: result.skipped,
        }
    }

    fn from_cached(result: CachedResult) -> Outcome {
        Outcome {
            index: result.index,
            program: result.report.program.clone(),
            report: result.report,
            time: result.time,
            cached: Some(result.cached),
            key: Some(result.key),
            stats: None,
            obligation_times: Vec::new(),
            session: None,
            skipped: result.skipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use commcsl_pure::{Sort, Term};

    use super::*;
    use crate::program::VStmt;
    use crate::symexec::verify;

    fn ok_program(name: &str) -> AnnotatedProgram {
        AnnotatedProgram::new(name).with_body([
            VStmt::input("x", Sort::Int, true),
            VStmt::Output(Term::var("x")),
        ])
    }

    fn leaky_program(name: &str) -> AnnotatedProgram {
        AnnotatedProgram::new(name).with_body([
            VStmt::input("h", Sort::Int, false),
            VStmt::Output(Term::var("h")),
        ])
    }

    #[test]
    fn uncached_and_cached_routes_agree_byte_for_byte() {
        let ok = ok_program("api-ok");
        let leaky = leaky_program("api-leaky");
        let programs: Vec<&AnnotatedProgram> = vec![&ok, &leaky];

        let plain = Verifier::new().with_threads(2);
        let caching = Verifier::new()
            .with_threads(2)
            .with_cache(CacheConfig::memory_only(16));

        let direct: Vec<String> = programs
            .iter()
            .map(|p| verify(p, plain.config()).to_json())
            .collect();
        let uncached = plain.verify_batch(&programs);
        let cold = caching.verify_batch(&programs);
        let warm = caching.verify_batch(&programs);

        for (((d, u), c), w) in direct.iter().zip(&uncached).zip(&cold).zip(&warm) {
            assert_eq!(&u.report.to_json(), d);
            assert_eq!(&c.report.to_json(), d);
            assert_eq!(&w.report.to_json(), d);
        }
        assert!(uncached.iter().all(|o| o.cached.is_none() && o.key.is_none()));
        assert!(cold.iter().all(|o| o.cached == Some(false)));
        assert!(warm.iter().all(|o| o.cached == Some(true)));
        assert!(warm.iter().all(|o| o.key.is_some()));
        let stats = caching.cache_stats().expect("cache configured");
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.memory_hits, 2);
        assert_eq!(plain.cache_stats(), None);
    }

    #[test]
    fn backend_choice_flows_into_both_configs() {
        let v = Verifier::new().with_backend(commcsl_smt::BackendKind::Fresh);
        assert_eq!(v.config().backend, commcsl_smt::BackendKind::Fresh);
        assert_eq!(v.config().validity.backend, commcsl_smt::BackendKind::Fresh);
        let report = v.verify(&ok_program("fresh-backend")).report;
        assert!(report.verified());
    }

    #[test]
    fn fail_fast_flows_through_both_routes() {
        let a = leaky_program("ff-a");
        let b = ok_program("ff-b");
        let programs: Vec<&AnnotatedProgram> = vec![&a, &b];

        let plain = Verifier::new().with_threads(1).with_fail_fast(true);
        let results = plain.verify_batch(&programs);
        assert!(!results[0].skipped && !results[0].report.verified());
        assert!(results[1].skipped);

        let caching = Verifier::new()
            .with_threads(1)
            .with_fail_fast(true)
            .with_cache(CacheConfig::memory_only(16));
        let cold = caching.verify_batch(&programs);
        assert!(cold[1].skipped);
        // The skipped program was never cached: verifying it alone misses.
        let solo = caching.verify_batch(&[&b]);
        assert_eq!(solo[0].cached, Some(false), "skip must not be cached");
        assert!(solo[0].report.verified());
        // The failing program's verdict *was* cached.
        let again = caching.verify_batch(&[&a]);
        assert_eq!(again[0].cached, Some(true));
    }

    #[test]
    #[should_panic(expected = "after the verifier was already used")]
    fn builder_methods_panic_after_first_use() {
        let v = Verifier::new().with_cache(CacheConfig::memory_only(4));
        let _ = v.verify(&ok_program("used"));
        let _ = v.with_threads(3);
    }
}
