//! Content-addressed verdict caching.
//!
//! Verification verdicts are pure functions of the
//! [`program_hash`](crate::hash::program_hash) content address, so they
//! can be cached and replayed **byte-identically** without re-running
//! symbolic execution. [`VerdictCache`] is the two-tier store used by the
//! `commcsl-server` daemon and the `--daemon` CLI path:
//!
//! * an **in-memory LRU tier** (capacity-bounded, stamp-based eviction),
//! * an optional **on-disk tier** under a cache directory (conventionally
//!   `.commcsl-cache/`), one file per verdict, written atomically
//!   (temp file + rename) so a crash mid-write never leaves a readable
//!   half-verdict.
//!
//! Invalidation is structural, never temporal: a verdict file is only
//! served when its header version matches, its embedded key matches the
//! requested hash, and its body parses completely. Any mismatch —
//! including a [`HASH_FORMAT_VERSION`](crate::hash::HASH_FORMAT_VERSION)
//! bump, which changes every key and the tier directory name — is a
//! cache **miss**, never a stale verdict.
//!
//! Alongside the whole-program verdict tiers, the cache carries an
//! **obligation tier**: per-obligation [`ObligationStatus`]es addressed
//! by [`ObligationKey`] (the dependency-cone hash of
//! [`crate::obligation`]). This is the store behind
//! [`Workspace`](crate::workspace::Workspace) re-verification — an edit
//! that misses the program tier still replays every obligation whose
//! cone it left untouched. The tier follows the same rules: in-memory
//! LRU, optional on-disk persistence (`obl/` under the version
//! directory), structural validation, corrupt ⇒ miss.
//!
//! [`CachedVerifier`] wraps the pipeline end-to-end: single-program
//! lookups, and batch verification that routes only the misses through
//! the work-stealing pool of [`crate::batch`].

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::batch::{verify_batch_stored, BatchConfig};
use crate::diag::{CexBinding, Counterexample, DiagnosticCode, Failure, SourceSpan};
use crate::hash::{program_hash, ProgramHash, HASH_FORMAT_VERSION};
use crate::obligation::{ObligationKey, ObligationStore};
use crate::program::{AnnotatedProgram, StmtPath};
use crate::report::{
    CoreFact, Lint, LintCode, ObligationResult, ObligationStatus, Severity, VerifierConfig,
    VerifierReport,
};

// ---------------------------------------------------------------- verdict
// file format: a line-based, escaped, self-validating encoding.

const VERDICT_MAGIC: &str = "commcsl-verdict";

/// Escapes one field for the verdict file (tabs, newlines, backslashes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on malformed escapes (treated as a
/// corrupt file ⇒ cache miss).
fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Renders an obligation's code and optional span as the two leading
/// tab-separated fields shared by `proved`/`failed` lines (`-` = no span).
fn encode_code_span(o: &ObligationResult) -> String {
    let span = o
        .span
        .map(|s| s.to_string())
        .unwrap_or_else(|| "-".to_owned());
    format!("{}\t{}", o.code.as_str(), span)
}

fn decode_code_span(code: &str, span: &str) -> Option<(DiagnosticCode, Option<SourceSpan>)> {
    let code = code.parse::<DiagnosticCode>().ok()?;
    let span = match span {
        "-" => None,
        s => Some(s.parse::<SourceSpan>().ok()?),
    };
    Some((code, span))
}

/// Serializes a verdict to the on-disk format. The embedded `key` makes
/// the file self-validating: a file renamed or copied to the wrong
/// address is rejected on load.
///
/// Obligation lines:
///
/// ```text
/// proved <code>\t<span|->\t<description>
/// core <n>\t<path>@<span|->...       (after a proved line, when tracked)
/// failed <code>\t<span|->\t<description>\t<reason>
/// failedc <n>\t<code>\t<span|->\t<description>\t<reason>
/// cex <var>\t<exec1>\t<exec2>        (exactly n, after a failedc line)
/// hint <code>\t<severity>\t<span|->\t<path|->\t<message>
/// ```
fn encode_verdict(key: ProgramHash, report: &VerifierReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("{VERDICT_MAGIC} {HASH_FORMAT_VERSION}\n"));
    out.push_str(&format!("key {key}\n"));
    out.push_str(&format!("program {}\n", escape(&report.program)));
    for e in &report.errors {
        out.push_str(&format!("error {}\n", escape(e)));
    }
    for o in &report.obligations {
        match &o.status {
            ObligationStatus::Proved => {
                out.push_str(&format!(
                    "proved {}\t{}\n",
                    encode_code_span(o),
                    escape(&o.description)
                ));
                if let Some(core) = &o.core {
                    out.push_str(&encode_core_line(core));
                }
            }
            ObligationStatus::Failed(failure) => match &failure.counterexample {
                None => {
                    out.push_str(&format!(
                        "failed {}\t{}\t{}\n",
                        encode_code_span(o),
                        escape(&o.description),
                        escape(&failure.reason)
                    ));
                }
                Some(cex) => {
                    out.push_str(&format!(
                        "failedc {}\t{}\t{}\t{}\n",
                        cex.bindings.len(),
                        encode_code_span(o),
                        escape(&o.description),
                        escape(&failure.reason)
                    ));
                    for b in &cex.bindings {
                        out.push_str(&format!(
                            "cex {}\t{}\t{}\n",
                            escape(&b.var),
                            escape(&b.exec1),
                            escape(&b.exec2)
                        ));
                    }
                }
            },
        }
    }
    for h in &report.hints {
        out.push_str(&format!(
            "hint {}\t{}\t{}\t{}\t{}\n",
            h.code.as_str(),
            h.severity.as_str(),
            encode_opt_span(h.span),
            encode_path(&h.path),
            escape(&h.message)
        ));
    }
    out
}

/// Renders a statement path as dot-separated components (`-` = the empty
/// program-level path). Components are numeric, so no escaping is needed.
fn encode_path(path: &StmtPath) -> String {
    if path.is_empty() {
        "-".to_owned()
    } else {
        path.iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(".")
    }
}

fn decode_path(s: &str) -> Option<StmtPath> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split('.').map(|c| c.parse::<u32>().ok()).collect()
}

fn encode_opt_span(span: Option<SourceSpan>) -> String {
    span.map(|s| s.to_string()).unwrap_or_else(|| "-".to_owned())
}

fn decode_opt_span(s: &str) -> Option<Option<SourceSpan>> {
    match s {
        "-" => Some(None),
        s => Some(Some(s.parse::<SourceSpan>().ok()?)),
    }
}

/// Renders a proved obligation's tracked core as one tab-separated line:
/// the fact count, then `<path>@<span|->` per core fact.
fn encode_core_line(core: &[CoreFact]) -> String {
    let mut line = format!("core {}", core.len());
    for f in core {
        line.push_str(&format!("\t{}@{}", encode_path(&f.path), encode_opt_span(f.span)));
    }
    line.push('\n');
    line
}

const OBLIGATION_MAGIC: &str = "commcsl-obligation";

/// Serializes one obligation status for the on-disk obligation tier.
/// Statuses carry no description/code/span — those are recomputed by the
/// incremental run that replays the status, so the file stays valid
/// however the surrounding program is edited.
fn encode_obligation(key: ObligationKey, status: &ObligationStatus) -> String {
    let mut out = String::new();
    out.push_str(&format!("{OBLIGATION_MAGIC} {HASH_FORMAT_VERSION}\n"));
    out.push_str(&format!("key {key}\n"));
    match status {
        ObligationStatus::Proved => out.push_str("proved\n"),
        ObligationStatus::Failed(failure) => match &failure.counterexample {
            None => out.push_str(&format!("failed {}\n", escape(&failure.reason))),
            Some(cex) => {
                out.push_str(&format!(
                    "failedc {}\t{}\n",
                    cex.bindings.len(),
                    escape(&failure.reason)
                ));
                for b in &cex.bindings {
                    out.push_str(&format!(
                        "cex {}\t{}\t{}\n",
                        escape(&b.var),
                        escape(&b.exec1),
                        escape(&b.exec2)
                    ));
                }
            }
        },
    }
    out
}

/// Encodes one obligation status as a self-validating entry (the on-disk
/// file format, reused verbatim as the remote-cache wire payload): a
/// `commcsl-obligation <HASH_FORMAT_VERSION>` header, the embedded key,
/// and the status body. Because the entry carries both the format version
/// and its own address, any consumer can validate it with
/// [`decode_obligation_entry`] — a mismatch is a miss, never a stale
/// status.
pub fn encode_obligation_entry(key: ObligationKey, status: &ObligationStatus) -> String {
    encode_obligation(key, status)
}

/// Parses a self-validating obligation entry produced by
/// [`encode_obligation_entry`]; `None` on any version/key/format mismatch
/// (the never-stale rule: reject, never reinterpret).
pub fn decode_obligation_entry(key: ObligationKey, text: &str) -> Option<ObligationStatus> {
    decode_obligation(key, text)
}

/// Encodes one verdict as a self-validating entry (the on-disk file
/// format, reused as the `cache_get`/`cache_put` wire payload for the
/// verdict tier).
pub fn encode_verdict_entry(key: ProgramHash, report: &VerifierReport) -> String {
    encode_verdict(key, report)
}

/// Parses a self-validating verdict entry; `None` on any
/// version/key/format mismatch.
pub fn decode_verdict_entry(key: ProgramHash, text: &str) -> Option<VerifierReport> {
    decode_verdict(key, text)
}

/// Parses an obligation file; `None` on any version/key/format mismatch.
fn decode_obligation(key: ObligationKey, text: &str) -> Option<ObligationStatus> {
    let mut lines = text.lines();
    if lines.next()? != format!("{OBLIGATION_MAGIC} {HASH_FORMAT_VERSION}") {
        return None;
    }
    if lines.next()?.strip_prefix("key ")?.parse::<ObligationKey>().ok()? != key {
        return None;
    }
    let status_line = lines.next()?;
    let status = if status_line == "proved" {
        ObligationStatus::Proved
    } else if let Some(reason) = status_line.strip_prefix("failed ") {
        ObligationStatus::Failed(Failure::new(unescape(reason)?))
    } else if let Some(rest) = status_line.strip_prefix("failedc ") {
        let (count, reason) = rest.split_once('\t')?;
        let count: usize = count.parse().ok()?;
        let mut bindings = Vec::with_capacity(count);
        for _ in 0..count {
            let rest = lines.next()?.strip_prefix("cex ")?;
            let mut fields = rest.split('\t');
            bindings.push(CexBinding {
                var: unescape(fields.next()?)?,
                exec1: unescape(fields.next()?)?,
                exec2: unescape(fields.next()?)?,
            });
            if fields.next().is_some() {
                return None;
            }
        }
        ObligationStatus::Failed(
            Failure::new(unescape(reason)?)
                .with_counterexample(Counterexample { bindings }),
        )
    } else {
        return None;
    };
    if lines.next().is_some() {
        return None;
    }
    Some(status)
}

/// Parses a verdict file; `None` on any version/key/format mismatch.
fn decode_verdict(key: ProgramHash, text: &str) -> Option<VerifierReport> {
    let mut lines = text.lines();
    let header = lines.next()?;
    if header != format!("{VERDICT_MAGIC} {HASH_FORMAT_VERSION}") {
        return None;
    }
    let stored_key = lines.next()?.strip_prefix("key ")?;
    if stored_key.parse::<ProgramHash>().ok()? != key {
        return None;
    }
    let program = unescape(lines.next()?.strip_prefix("program ")?)?;
    let mut errors = Vec::new();
    let mut obligations: Vec<ObligationResult> = Vec::new();
    let mut hints: Vec<Lint> = Vec::new();
    let mut pending_cex: usize = 0;
    for line in lines {
        if let Some(rest) = line.strip_prefix("cex ") {
            if pending_cex == 0 {
                return None;
            }
            pending_cex -= 1;
            let mut fields = rest.split('\t');
            let binding = CexBinding {
                var: unescape(fields.next()?)?,
                exec1: unescape(fields.next()?)?,
                exec2: unescape(fields.next()?)?,
            };
            if fields.next().is_some() {
                return None;
            }
            match &mut obligations.last_mut()?.status {
                ObligationStatus::Failed(failure) => failure
                    .counterexample
                    .as_mut()?
                    .bindings
                    .push(binding),
                ObligationStatus::Proved => return None,
            }
            continue;
        }
        if pending_cex != 0 {
            // Fewer `cex` lines than announced ⇒ corrupt.
            return None;
        }
        if let Some(rest) = line.strip_prefix("error ") {
            // Errors precede obligations in the encoding; an error line
            // after an obligation line means the file was hand-edited.
            if !obligations.is_empty() {
                return None;
            }
            errors.push(unescape(rest)?);
        } else if let Some(rest) = line.strip_prefix("proved ") {
            let mut fields = rest.split('\t');
            let (code, span) = decode_code_span(fields.next()?, fields.next()?)?;
            let description = unescape(fields.next()?)?;
            if fields.next().is_some() {
                return None;
            }
            obligations.push(ObligationResult {
                description,
                code,
                span,
                status: ObligationStatus::Proved,
                core: None,
            });
        } else if let Some(rest) = line.strip_prefix("core ") {
            let mut fields = rest.split('\t');
            let count: usize = fields.next()?.parse().ok()?;
            let mut core = Vec::with_capacity(count);
            for _ in 0..count {
                let (path, span) = fields.next()?.split_once('@')?;
                core.push(CoreFact {
                    path: decode_path(path)?,
                    span: decode_opt_span(span)?,
                });
            }
            if fields.next().is_some() {
                return None;
            }
            // A core line annotates the proved obligation just decoded.
            let last = obligations.last_mut()?;
            if last.core.is_some() || !matches!(last.status, ObligationStatus::Proved) {
                return None;
            }
            last.core = Some(core);
        } else if let Some(rest) = line.strip_prefix("hint ") {
            let mut fields = rest.split('\t');
            let code: LintCode = fields.next()?.parse().ok()?;
            let severity = match fields.next()? {
                "note" => Severity::Note,
                "warning" => Severity::Warning,
                _ => return None,
            };
            let span = decode_opt_span(fields.next()?)?;
            let path = decode_path(fields.next()?)?;
            let message = unescape(fields.next()?)?;
            if fields.next().is_some() {
                return None;
            }
            hints.push(Lint {
                code,
                severity,
                path,
                span,
                message,
            });
        } else if let Some(rest) = line.strip_prefix("failed ") {
            let mut fields = rest.split('\t');
            let (code, span) = decode_code_span(fields.next()?, fields.next()?)?;
            let description = unescape(fields.next()?)?;
            let reason = unescape(fields.next()?)?;
            if fields.next().is_some() {
                return None;
            }
            obligations.push(ObligationResult {
                description,
                code,
                span,
                status: ObligationStatus::Failed(Failure::new(reason)),
                core: None,
            });
        } else if let Some(rest) = line.strip_prefix("failedc ") {
            let mut fields = rest.split('\t');
            let count: usize = fields.next()?.parse().ok()?;
            let (code, span) = decode_code_span(fields.next()?, fields.next()?)?;
            let description = unescape(fields.next()?)?;
            let reason = unescape(fields.next()?)?;
            if fields.next().is_some() {
                return None;
            }
            obligations.push(ObligationResult {
                description,
                code,
                span,
                status: ObligationStatus::Failed(
                    Failure::new(reason).with_counterexample(Counterexample::default()),
                ),
                core: None,
            });
            pending_cex = count;
        } else {
            return None;
        }
    }
    if pending_cex != 0 {
        return None;
    }
    Some(VerifierReport {
        program,
        obligations,
        errors,
        hints,
    })
}

// ------------------------------------------------------------------ cache

/// Configuration of a [`VerdictCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum number of verdicts held in the in-memory tier.
    pub memory_capacity: usize,
    /// Maximum number of per-obligation statuses held in the in-memory
    /// obligation tier. Obligation statuses are tiny (a status word, or a
    /// failure reason plus counterexample bindings), so the default is
    /// generous.
    pub obligation_capacity: usize,
    /// Root of the on-disk tier (`None` disables persistence). Verdicts
    /// live under `<disk_dir>/v<HASH_FORMAT_VERSION>/<hash>.verdict` and
    /// obligation statuses under
    /// `<disk_dir>/v<HASH_FORMAT_VERSION>/obl/<key>.obl`, so a
    /// format-version bump orphans (never misreads) old entries.
    pub disk_dir: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            memory_capacity: 4096,
            obligation_capacity: 65536,
            disk_dir: None,
        }
    }
}

impl CacheConfig {
    /// A memory-only cache with the given capacity.
    pub fn memory_only(capacity: usize) -> Self {
        CacheConfig {
            memory_capacity: capacity.max(1),
            disk_dir: None,
            ..Default::default()
        }
    }

    /// A two-tier cache persisting under `dir`.
    pub fn persistent(dir: impl Into<PathBuf>) -> Self {
        CacheConfig {
            disk_dir: Some(dir.into()),
            ..Default::default()
        }
    }
}

/// Cache effectiveness counters (cumulative since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the in-memory tier.
    pub memory_hits: u64,
    /// Lookups answered from the on-disk tier (and promoted to memory).
    pub disk_hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// Verdicts inserted.
    pub stores: u64,
    /// In-memory entries evicted by the LRU policy.
    pub evictions: u64,
    /// Obligation-tier lookups answered (memory or disk).
    pub obligation_hits: u64,
    /// Obligation-tier lookups answered by neither tier.
    pub obligation_misses: u64,
    /// Obligation statuses inserted.
    pub obligation_stores: u64,
    /// Obligation-tier lookups answered by the remote tier (and promoted
    /// to both local tiers).
    pub remote_hits: u64,
    /// Remote-tier lookups that came back empty (or invalid, or failed in
    /// transit — the remote tier is fail-open).
    pub remote_misses: u64,
    /// Obligation statuses published to the remote tier.
    pub remote_stores: u64,
}

impl CacheStats {
    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Fraction of lookups served from cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.lookups() as f64
        }
    }
}

/// A remote obligation-cache backend: the third tier of the obligation
/// lookup chain (memory → disk → remote), shared by many daemons and CI
/// runners in the sccache / Bazel-remote-cache style.
///
/// Implementations exchange the **self-validating entry text** of
/// [`encode_obligation_entry`] — the cache validates every fetched entry
/// against the requested key and [`HASH_FORMAT_VERSION`] before serving
/// it, so a confused or stale remote can only cause misses, never wrong
/// statuses. Both methods are fail-open: a broken transport should
/// degrade to `None` / no-op rather than error.
pub trait RemoteObligationTier: Send {
    /// Fetches the raw encoded entry for `key`; `None` on a remote miss
    /// or an unreachable backend.
    fn fetch(&mut self, key: ObligationKey) -> Option<String>;
    /// Publishes the raw encoded entry for `key` (best effort).
    fn publish(&mut self, key: ObligationKey, entry: &str);
    /// Human-readable endpoint (for `daemon status` lines).
    fn endpoint(&self) -> String;
}

/// The two-tier content-addressed verdict store (plus the obligation
/// tier — optionally chained to a [`RemoteObligationTier`]; see the
/// module docs).
pub struct VerdictCache {
    config: CacheConfig,
    /// hash → (LRU stamp, verdict).
    entries: HashMap<ProgramHash, (u64, VerifierReport)>,
    /// stamp → hash, the eviction order (oldest stamp first).
    lru: BTreeMap<u64, ProgramHash>,
    clock: u64,
    /// Obligation tier: key → (LRU stamp, status).
    obligations: HashMap<ObligationKey, (u64, ObligationStatus)>,
    /// Obligation-tier eviction order.
    obligation_lru: BTreeMap<u64, ObligationKey>,
    obligation_clock: u64,
    /// Optional remote tier behind the local obligation tiers.
    remote: Option<Box<dyn RemoteObligationTier>>,
    stats: CacheStats,
}

impl std::fmt::Debug for VerdictCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerdictCache")
            .field("config", &self.config)
            .field("entries", &self.entries.len())
            .field("obligations", &self.obligations.len())
            .field(
                "remote",
                &self.remote.as_ref().map(|r| r.endpoint()),
            )
            .field("stats", &self.stats)
            .finish()
    }
}

impl VerdictCache {
    /// Creates a cache; the disk directory is created lazily on first
    /// store.
    pub fn new(config: CacheConfig) -> Self {
        VerdictCache {
            config,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            clock: 0,
            obligations: HashMap::new(),
            obligation_lru: BTreeMap::new(),
            obligation_clock: 0,
            remote: None,
            stats: CacheStats::default(),
        }
    }

    /// Chains a remote obligation tier behind the local tiers: lookups
    /// that miss memory and disk consult it, hits are promoted to both
    /// local tiers, and every local store is published write-through.
    pub fn set_remote(&mut self, remote: Box<dyn RemoteObligationTier>) {
        self.remote = Some(remote);
    }

    /// The remote tier's endpoint, if one is configured.
    pub fn remote_endpoint(&self) -> Option<String> {
        self.remote.as_ref().map(|r| r.endpoint())
    }

    /// The directory holding this format version's verdict files.
    fn tier_dir(&self) -> Option<PathBuf> {
        self.config
            .disk_dir
            .as_ref()
            .map(|d| d.join(format!("v{HASH_FORMAT_VERSION}")))
    }

    fn verdict_path(&self, key: ProgramHash) -> Option<PathBuf> {
        self.tier_dir().map(|d| d.join(format!("{key}.verdict")))
    }

    fn obligation_path(&self, key: ObligationKey) -> Option<PathBuf> {
        self.tier_dir().map(|d| d.join("obl").join(format!("{key}.obl")))
    }

    fn touch(&mut self, key: ProgramHash) {
        if let Some((stamp, _)) = self.entries.get_mut(&key) {
            self.lru.remove(stamp);
            self.clock += 1;
            *stamp = self.clock;
            self.lru.insert(self.clock, key);
        }
    }

    /// Looks up a verdict: memory first, then disk (with promotion).
    ///
    /// Concurrent wrappers ([`CachedVerifier`]) should prefer
    /// [`VerdictCache::probe_memory`] / [`VerdictCache::admit_disk`] so
    /// the file I/O between them can run outside their lock.
    pub fn get(&mut self, key: ProgramHash) -> Option<VerifierReport> {
        let _span = commcsl_telemetry::span!("cache.get");
        match self.probe_memory(key) {
            Ok(report) => Some(report),
            Err(path) => {
                let text = path.as_deref().and_then(|p| fs::read_to_string(p).ok());
                self.admit_disk(key, text.as_deref())
            }
        }
    }

    /// Memory-tier-only lookup. A hit is counted and returned; a miss
    /// returns the disk path the caller should try (`None` inside the
    /// `Err` when the cache has no disk tier) *without* counting a miss
    /// yet — [`VerdictCache::admit_disk`] settles the statistics.
    pub fn probe_memory(
        &mut self,
        key: ProgramHash,
    ) -> Result<VerifierReport, Option<PathBuf>> {
        if self.entries.contains_key(&key) {
            self.touch(key);
            self.stats.memory_hits += 1;
            return Ok(self
                .entries
                .get(&key)
                .map(|(_, r)| r.clone())
                .expect("entry just probed"));
        }
        Err(self.verdict_path(key))
    }

    /// Completes a [`VerdictCache::probe_memory`] miss with the disk
    /// file's content (`None` when the file was absent or unreadable):
    /// a valid verdict is promoted to memory and counted as a disk hit,
    /// anything else is counted as a miss (and a corrupt file deleted so
    /// it cannot shadow a future store).
    pub fn admit_disk(
        &mut self,
        key: ProgramHash,
        text: Option<&str>,
    ) -> Option<VerifierReport> {
        if let Some(text) = text {
            match decode_verdict(key, text) {
                Some(report) => {
                    self.stats.disk_hits += 1;
                    self.insert_memory(key, report.clone());
                    return Some(report);
                }
                None => {
                    if let Some(path) = self.verdict_path(key) {
                        let _ = fs::remove_file(&path);
                    }
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Stores a verdict in both tiers.
    ///
    /// Concurrent wrappers should [`VerdictCache::insert`] under their
    /// lock and perform the [`write_verdict_file`] outside it.
    pub fn put(&mut self, key: ProgramHash, report: &VerifierReport) {
        let _span = commcsl_telemetry::span!("cache.put");
        if let Some(path) = self.verdict_path(key) {
            let _ = write_verdict_file(&path, key, report);
        }
        self.insert(key, report);
    }

    /// Stores a verdict in the memory tier only (counted as a store).
    pub fn insert(&mut self, key: ProgramHash, report: &VerifierReport) {
        self.stats.stores += 1;
        self.insert_memory(key, report.clone());
    }

    /// The disk-tier file for `key`, if this cache has a disk tier.
    pub fn disk_path(&self, key: ProgramHash) -> Option<PathBuf> {
        self.verdict_path(key)
    }

    fn insert_memory(&mut self, key: ProgramHash, report: VerifierReport) {
        if let Some((stamp, _)) = self.entries.remove(&key) {
            self.lru.remove(&stamp);
        }
        while self.entries.len() >= self.config.memory_capacity.max(1) {
            let Some((&oldest, &victim)) = self.lru.iter().next() else {
                break;
            };
            self.lru.remove(&oldest);
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
        self.clock += 1;
        self.entries.insert(key, (self.clock, report));
        self.lru.insert(self.clock, key);
    }

    /// Number of verdicts currently in memory.
    pub fn memory_len(&self) -> usize {
        self.entries.len()
    }

    /// Number of obligation statuses currently in memory.
    pub fn obligation_len(&self) -> usize {
        self.obligations.len()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    // ------------------------------------------------- obligation tier

    /// Looks up an obligation status: memory first, then disk (with
    /// promotion), then the remote tier when one is chained (remote hits
    /// are promoted to both local tiers). Corrupt disk entries are
    /// deleted and count as misses; invalid remote entries are rejected
    /// — every tier is structurally validated, never trusted.
    pub fn get_obligation(&mut self, key: ObligationKey) -> Option<ObligationStatus> {
        let _span = commcsl_telemetry::span!("cache.obligation_get");
        if self.obligations.contains_key(&key) {
            self.touch_obligation(key);
            self.stats.obligation_hits += 1;
            return self.obligations.get(&key).map(|(_, s)| s.clone());
        }
        if let Some(path) = self.obligation_path(key) {
            if let Ok(text) = fs::read_to_string(&path) {
                match decode_obligation(key, &text) {
                    Some(status) => {
                        self.stats.obligation_hits += 1;
                        self.insert_obligation_memory(key, status.clone());
                        return Some(status);
                    }
                    None => {
                        let _ = fs::remove_file(&path);
                    }
                }
            }
        }
        if let Some(remote) = self.remote.as_mut() {
            let fetched = remote.fetch(key);
            if let Some(status) = fetched
                .as_deref()
                .and_then(|text| decode_obligation(key, text))
            {
                self.stats.remote_hits += 1;
                self.stats.obligation_hits += 1;
                // Promote to both local tiers (the entry text *is* the
                // disk format) so later lookups stay local.
                if let Some(path) = self.obligation_path(key) {
                    let _ = write_atomically(&path, fetched.as_deref().unwrap_or_default());
                }
                self.insert_obligation_memory(key, status.clone());
                return Some(status);
            }
            self.stats.remote_misses += 1;
        }
        self.stats.obligation_misses += 1;
        None
    }

    /// Stores an obligation status in both local tiers and publishes it
    /// write-through to the remote tier when one is chained.
    pub fn put_obligation(&mut self, key: ObligationKey, status: &ObligationStatus) {
        let _span = commcsl_telemetry::span!("cache.obligation_put");
        let entry = encode_obligation(key, status);
        if let Some(path) = self.obligation_path(key) {
            let _ = write_atomically(&path, &entry);
        }
        if let Some(remote) = self.remote.as_mut() {
            remote.publish(key, &entry);
            self.stats.remote_stores += 1;
        }
        self.stats.obligation_stores += 1;
        self.insert_obligation_memory(key, status.clone());
    }

    // --------------------------------------------- remote-cache serving
    //
    // The `cache_get`/`cache_put` daemon ops serve raw entry texts out of
    // (and into) this cache without consulting the chained remote tier —
    // a daemon *serving* as somebody's remote must answer from its own
    // tiers, not recurse into its own upstream — and without touching the
    // hit/miss counters, which track verification traffic only.

    /// Exports the raw self-validating entry for an obligation status
    /// held in the local tiers (memory first, then disk), for serving to
    /// a remote-cache client. `None` when neither local tier has a valid
    /// entry.
    pub fn export_obligation(&mut self, key: ObligationKey) -> Option<String> {
        if let Some((_, status)) = self.obligations.get(&key) {
            return Some(encode_obligation(key, status));
        }
        let path = self.obligation_path(key)?;
        let text = fs::read_to_string(path).ok()?;
        decode_obligation(key, &text).map(|_| text)
    }

    /// Exports the raw self-validating entry for a verdict held in the
    /// local tiers. `None` when neither local tier has a valid entry.
    pub fn export_verdict(&mut self, key: ProgramHash) -> Option<String> {
        if let Some((_, report)) = self.entries.get(&key) {
            return Some(encode_verdict(key, report));
        }
        let path = self.verdict_path(key)?;
        let text = fs::read_to_string(path).ok()?;
        decode_verdict(key, &text).map(|_| text)
    }

    /// Validates and admits a remote-published obligation entry into the
    /// local tiers; `false` (and no state change) on any version/key/
    /// format mismatch.
    pub fn import_obligation(&mut self, key: ObligationKey, text: &str) -> bool {
        match decode_obligation(key, text) {
            Some(status) => {
                self.put_obligation(key, &status);
                true
            }
            None => false,
        }
    }

    /// Validates and admits a remote-published verdict entry into the
    /// local tiers; `false` on any mismatch.
    pub fn import_verdict(&mut self, key: ProgramHash, text: &str) -> bool {
        match decode_verdict(key, text) {
            Some(report) => {
                self.put(key, &report);
                true
            }
            None => false,
        }
    }

    fn touch_obligation(&mut self, key: ObligationKey) {
        if let Some((stamp, _)) = self.obligations.get_mut(&key) {
            self.obligation_lru.remove(stamp);
            self.obligation_clock += 1;
            *stamp = self.obligation_clock;
            self.obligation_lru.insert(self.obligation_clock, key);
        }
    }

    fn insert_obligation_memory(&mut self, key: ObligationKey, status: ObligationStatus) {
        if let Some((stamp, _)) = self.obligations.remove(&key) {
            self.obligation_lru.remove(&stamp);
        }
        while self.obligations.len() >= self.config.obligation_capacity.max(1) {
            let Some((&oldest, &victim)) = self.obligation_lru.iter().next() else {
                break;
            };
            self.obligation_lru.remove(&oldest);
            self.obligations.remove(&victim);
        }
        self.obligation_clock += 1;
        self.obligations.insert(key, (self.obligation_clock, status));
        self.obligation_lru.insert(self.obligation_clock, key);
    }
}

/// [`VerdictCache`] *is* an [`ObligationStore`]: the workspace plugs a
/// locked cache straight into
/// [`verify_incremental`](crate::symexec::verify_incremental).
impl ObligationStore for VerdictCache {
    fn get(&mut self, key: ObligationKey) -> Option<ObligationStatus> {
        self.get_obligation(key)
    }

    fn put(&mut self, key: ObligationKey, status: &ObligationStatus) {
        self.put_obligation(key, status);
    }
}

/// An [`ObligationStore`] view over a shared, mutex-guarded
/// [`VerdictCache`]: each lookup/store takes the lock briefly, so
/// concurrent workspace sessions (daemon connections) interleave instead
/// of serializing whole verifications.
pub struct SharedObligationStore<'c>(pub &'c Mutex<VerdictCache>);

impl ObligationStore for SharedObligationStore<'_> {
    fn get(&mut self, key: ObligationKey) -> Option<ObligationStatus> {
        self.0.lock().expect("verdict cache poisoned").get_obligation(key)
    }

    fn put(&mut self, key: ObligationKey, status: &ObligationStatus) {
        self.0
            .lock()
            .expect("verdict cache poisoned")
            .put_obligation(key, status);
    }
}

/// Encodes and writes one verdict file atomically (temp file + rename).
pub fn write_verdict_file(
    path: &Path,
    key: ProgramHash,
    report: &VerifierReport,
) -> std::io::Result<()> {
    write_atomically(path, &encode_verdict(key, report))
}

/// Writes `content` to `path` atomically: the data lands under a unique
/// temporary name first and is `rename`d into place, so readers (and
/// crash recovery) only ever see complete files.
fn write_atomically(path: &Path, content: &str) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    fs::create_dir_all(dir)?;
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, content)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

// -------------------------------------------------------- cached verifier

/// The outcome of one program in a cached batch.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Position in the input batch.
    pub index: usize,
    /// The content address of the job.
    pub key: ProgramHash,
    /// The verdict (identical whether cached or computed). A placeholder
    /// when `skipped`.
    pub report: VerifierReport,
    /// `true` when the verdict was served from cache.
    pub cached: bool,
    /// `true` when fail-fast stopped the batch before this program ran;
    /// skipped placeholders are never stored in the cache.
    pub skipped: bool,
    /// Wall-clock time for this program (lookup or verification).
    pub time: Duration,
}

/// A verifier with a content-addressed cache in front of it.
///
/// Lookups and verification results are keyed by
/// [`program_hash`](crate::hash::program_hash) over the program *and* the
/// verifier configuration, so one `CachedVerifier` always returns
/// verdicts byte-identical to running [`crate::symexec::verify`] directly
/// with its configuration. Internally synchronized; share it behind an
/// `Arc` across daemon sessions.
#[derive(Debug)]
pub struct CachedVerifier {
    batch: BatchConfig,
    cache: Arc<Mutex<VerdictCache>>,
}

impl CachedVerifier {
    /// Creates a cached verifier.
    pub fn new(batch: BatchConfig, cache: CacheConfig) -> Self {
        CachedVerifier::with_shared(batch, Arc::new(Mutex::new(VerdictCache::new(cache))))
    }

    /// Creates a cached verifier over an existing shared cache — the
    /// daemon hands the same cache to its batch pipeline and to every
    /// session's [`Workspace`](crate::workspace::Workspace), so a
    /// program verified through one surface answers the other.
    pub fn with_shared(batch: BatchConfig, cache: Arc<Mutex<VerdictCache>>) -> Self {
        CachedVerifier { batch, cache }
    }

    /// The shared cache handle (for wiring workspaces to the same tiers).
    pub fn shared_cache(&self) -> Arc<Mutex<VerdictCache>> {
        Arc::clone(&self.cache)
    }

    /// The verifier configuration used for cache misses (and for keys).
    pub fn verifier_config(&self) -> &VerifierConfig {
        &self.batch.verifier
    }

    /// Verifies one program through the cache.
    pub fn verify(&self, program: &AnnotatedProgram) -> CachedResult {
        self.verify_batch(&[program]).remove(0)
    }

    /// Verifies a batch: cache hits are answered immediately, misses are
    /// routed through the parallel pipeline of [`crate::batch`], stored,
    /// and merged back **in input order**.
    ///
    /// The cache lock is held only for the in-memory tier; disk reads,
    /// disk writes, and verification itself run outside it, so
    /// concurrent callers (daemon sessions) do not serialize on file
    /// I/O.
    pub fn verify_batch(&self, programs: &[&AnnotatedProgram]) -> Vec<CachedResult> {
        self.verify_batch_opts(programs, self.batch.fail_fast)
    }

    /// [`CachedVerifier::verify_batch`] with an explicit fail-fast
    /// override (the daemon protocol carries the flag per request).
    ///
    /// Fail-fast semantics through a cache: hits are always answered
    /// (they cost nothing); once a *hit* is known to fail, misses later
    /// in the batch are skipped without dispatch, and the dispatched
    /// misses themselves run under fail-fast. Skipped placeholders are
    /// never stored.
    pub fn verify_batch_opts(
        &self,
        programs: &[&AnnotatedProgram],
        fail_fast: bool,
    ) -> Vec<CachedResult> {
        let keys: Vec<ProgramHash> = programs
            .iter()
            .map(|p| program_hash(p, &self.batch.verifier))
            .collect();

        // Memory probes, under one short lock hold. Misses keep their
        // disk path (if any) for the unlocked read below.
        let mut results: Vec<Option<CachedResult>> = Vec::with_capacity(programs.len());
        let mut disk_probes: Vec<(usize, Option<PathBuf>)> = Vec::new();
        {
            let mut cache = self.cache.lock().expect("verdict cache poisoned");
            for (index, &key) in keys.iter().enumerate() {
                let start = Instant::now();
                match cache.probe_memory(key) {
                    Ok(report) => results.push(Some(CachedResult {
                        index,
                        key,
                        report,
                        cached: true,
                        skipped: false,
                        time: start.elapsed(),
                    })),
                    Err(path) => {
                        results.push(None);
                        disk_probes.push((index, path));
                    }
                }
            }
        }

        // Disk reads with the lock released; then settle hits/misses.
        let loaded: Vec<(usize, Instant, Option<String>)> = disk_probes
            .iter()
            .map(|(index, path)| {
                let start = Instant::now();
                let text = path.as_deref().and_then(|p| fs::read_to_string(p).ok());
                (*index, start, text)
            })
            .collect();
        let mut misses: Vec<usize> = Vec::new();
        {
            let mut cache = self.cache.lock().expect("verdict cache poisoned");
            for (index, start, text) in loaded {
                match cache.admit_disk(keys[index], text.as_deref()) {
                    Some(report) => {
                        results[index] = Some(CachedResult {
                            index,
                            key: keys[index],
                            report,
                            cached: true,
                            skipped: false,
                            time: start.elapsed(),
                        })
                    }
                    None => misses.push(index),
                }
            }
        }

        // With fail-fast, a failing cache *hit* already stops dispatch:
        // every miss after the first failing hit is answered with a
        // skipped placeholder instead of being verified.
        if fail_fast {
            let first_failed_hit = results
                .iter()
                .flatten()
                .filter(|r| !r.skipped && !r.report.verified())
                .map(|r| r.index)
                .min();
            if let Some(stop) = first_failed_hit {
                for &slot in misses.iter().filter(|&&s| s > stop) {
                    results[slot] = Some(CachedResult {
                        index: slot,
                        key: keys[slot],
                        report: crate::batch::skipped_report(&programs[slot].name),
                        cached: false,
                        skipped: true,
                        time: Duration::ZERO,
                    });
                }
                misses.retain(|&s| s < stop);
            }
        }

        // Verify the misses in parallel, lock released. Duplicate keys
        // within one batch are verified once; the extra occurrences are
        // served from the freshly computed verdicts (NOT from the cache,
        // whose LRU may already have evicted them).
        if !misses.is_empty() {
            let disk_paths: HashMap<usize, Option<PathBuf>> =
                disk_probes.into_iter().collect();
            let mut unique: Vec<usize> = Vec::new();
            let mut seen: HashSet<ProgramHash> = HashSet::new();
            for &slot in &misses {
                if seen.insert(keys[slot]) {
                    unique.push(slot);
                }
            }
            let miss_programs: Vec<&AnnotatedProgram> =
                unique.iter().map(|&i| programs[i]).collect();
            let mut batch_config = self.batch.clone();
            batch_config.fail_fast = fail_fast;
            // Misses run against the shared obligation tier: statuses
            // whose cones earlier traffic (batch or workspace, local or
            // remote) already settled replay instead of re-solving, and
            // every freshly computed status is recorded for both
            // surfaces. Reports stay byte-identical either way.
            let verified = verify_batch_stored(&miss_programs, &batch_config, &self.cache);

            let mut fresh: HashMap<ProgramHash, VerifierReport> = HashMap::new();
            for (slot, result) in unique.iter().zip(verified) {
                let key = keys[*slot];
                if result.skipped {
                    // Fail-fast placeholder: surfaced to the caller but
                    // never written to either cache tier — it is not a
                    // verdict.
                    results[*slot] = Some(CachedResult {
                        index: *slot,
                        key,
                        report: result.report,
                        cached: false,
                        skipped: true,
                        time: result.time,
                    });
                    continue;
                }
                // Disk write outside the lock; a failed write only means
                // the verdict will be recomputed after a restart.
                if let Some(Some(path)) = disk_paths.get(slot) {
                    let _ = write_verdict_file(path, key, &result.report);
                }
                fresh.insert(key, result.report.clone());
                results[*slot] = Some(CachedResult {
                    index: *slot,
                    key,
                    report: result.report,
                    cached: false,
                    skipped: false,
                    time: result.time,
                });
            }
            {
                let mut cache = self.cache.lock().expect("verdict cache poisoned");
                for (&key, report) in &fresh {
                    cache.insert(key, report);
                }
            }
            for &slot in &misses {
                if results[slot].is_none() {
                    let key = keys[slot];
                    match fresh.get(&key) {
                        Some(report) => {
                            results[slot] = Some(CachedResult {
                                index: slot,
                                key,
                                report: report.clone(),
                                cached: true,
                                skipped: false,
                                time: Duration::ZERO,
                            });
                        }
                        None => {
                            // The duplicate's representative was skipped
                            // by fail-fast; this slot is skipped too.
                            results[slot] = Some(CachedResult {
                                index: slot,
                                key,
                                report: crate::batch::skipped_report(&programs[slot].name),
                                cached: false,
                                skipped: true,
                                time: Duration::ZERO,
                            });
                        }
                    }
                }
            }
        }

        results
            .into_iter()
            .map(|r| r.expect("every slot is a hit or a verified miss"))
            .collect()
    }

    /// Cumulative cache counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.lock().expect("verdict cache poisoned").stats()
    }

    /// Number of verdicts currently in the in-memory tier.
    pub fn memory_entries(&self) -> usize {
        self.cache
            .lock()
            .expect("verdict cache poisoned")
            .memory_len()
    }
}

#[cfg(test)]
mod tests {
    use commcsl_pure::{Sort, Term};

    use super::*;
    use crate::program::VStmt;
    use crate::symexec::verify;

    fn ok_program(name: &str) -> AnnotatedProgram {
        AnnotatedProgram::new(name).with_body([
            VStmt::input("x", Sort::Int, true),
            VStmt::Output(Term::var("x")),
        ])
    }

    fn leaky_program(name: &str) -> AnnotatedProgram {
        AnnotatedProgram::new(name).with_body([
            VStmt::input("h", Sort::Int, false),
            VStmt::Output(Term::var("h")),
        ])
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "commcsl-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn verdict_encoding_roundtrips_nasty_strings() {
        let report = VerifierReport {
            program: "tab\there \"and\" newline\nand \\backslash\\".into(),
            obligations: vec![
                ObligationResult {
                    description: "pre of Put\tat worker 1".into(),
                    code: DiagnosticCode::ActionPre,
                    span: Some(SourceSpan::new(4, 11)),
                    status: ObligationStatus::Proved,
                    core: Some(vec![
                        CoreFact {
                            path: vec![],
                            span: None,
                        },
                        CoreFact {
                            path: vec![3, 0, 1],
                            span: Some(SourceSpan::new(9, 2)),
                        },
                    ]),
                },
                ObligationResult {
                    description: "Low(out)".into(),
                    code: DiagnosticCode::LowOutput,
                    span: None,
                    status: ObligationStatus::Failed(
                        Failure::new("ctr\r\nmodel").with_counterexample(Counterexample {
                            bindings: vec![
                                CexBinding {
                                    var: "h\twith tab".into(),
                                    exec1: "Int(0)".into(),
                                    exec2: "Int(\n1)".into(),
                                },
                                CexBinding {
                                    var: "k".into(),
                                    exec1: "Seq([])".into(),
                                    exec2: "Seq([])".into(),
                                },
                            ],
                        }),
                    ),
                    core: None,
                },
                ObligationResult {
                    description: "empty cex stays Some".into(),
                    code: DiagnosticCode::LowAssert,
                    span: None,
                    status: ObligationStatus::Failed(
                        Failure::new("no witness").with_counterexample(Counterexample::default()),
                    ),
                    core: None,
                },
            ],
            errors: vec!["guard \\ misuse".into()],
            hints: vec![Lint {
                code: LintCode::UnneededAnnotation,
                severity: Severity::Note,
                path: vec![4],
                span: Some(SourceSpan::new(12, 1)),
                message: "tab\there and \\slash".into(),
            }],
        };
        let key = ProgramHash(42);
        let decoded = decode_verdict(key, &encode_verdict(key, &report)).unwrap();
        assert_eq!(decoded.program, report.program);
        assert_eq!(decoded.errors, report.errors);
        assert_eq!(decoded.obligations, report.obligations);
        assert_eq!(decoded.hints, report.hints);
        // Byte-identical JSON rendering — the cache's core guarantee.
        assert_eq!(decoded.to_json(), report.to_json());
    }

    #[test]
    fn verdict_decoding_rejects_mismatches() {
        let report = VerifierReport {
            program: "p".into(),
            obligations: vec![],
            errors: vec![],
            hints: vec![],
        };
        let good = encode_verdict(ProgramHash(7), &report);
        // Wrong key.
        assert!(decode_verdict(ProgramHash(8), &good).is_none());
        // Wrong version.
        let bumped = good.replace(
            &format!("{VERDICT_MAGIC} {HASH_FORMAT_VERSION}"),
            &format!("{VERDICT_MAGIC} {}", HASH_FORMAT_VERSION + 1),
        );
        assert!(decode_verdict(ProgramHash(7), &bumped).is_none());
        // Truncation and garbage.
        assert!(decode_verdict(ProgramHash(7), "").is_none());
        assert!(decode_verdict(ProgramHash(7), &good[..good.len() / 2]).is_none());
        assert!(decode_verdict(ProgramHash(7), &format!("{good}garbage\n")).is_none());

        // A counterexample announcing more bindings than present, and
        // stray `cex` lines, are corrupt.
        let with_cex = VerifierReport {
            program: "p".into(),
            obligations: vec![ObligationResult {
                description: "d".into(),
                code: DiagnosticCode::LowOutput,
                span: None,
                status: ObligationStatus::Failed(
                    Failure::new("r").with_counterexample(Counterexample {
                        bindings: vec![
                            CexBinding {
                                var: "a".into(),
                                exec1: "1".into(),
                                exec2: "2".into(),
                            },
                            CexBinding {
                                var: "b".into(),
                                exec1: "1".into(),
                                exec2: "1".into(),
                            },
                        ],
                    }),
                ),
                core: None,
            }],
            errors: vec![],
            hints: vec![],
        };
        let encoded = encode_verdict(ProgramHash(7), &with_cex);
        assert!(decode_verdict(ProgramHash(7), &encoded).is_some());
        let truncated: String = encoded
            .lines()
            .take(encoded.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(decode_verdict(ProgramHash(7), &truncated).is_none());
        let stray = format!("{encoded}cex z\t0\t0\n");
        assert!(decode_verdict(ProgramHash(7), &stray).is_none());
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        let mut cache = VerdictCache::new(CacheConfig::memory_only(2));
        let r = VerifierReport {
            program: "p".into(),
            obligations: vec![],
            errors: vec![],
            hints: vec![],
        };
        cache.put(ProgramHash(1), &r);
        cache.put(ProgramHash(2), &r);
        assert!(cache.get(ProgramHash(1)).is_some()); // 1 is now fresher than 2
        cache.put(ProgramHash(3), &r); // evicts 2
        assert_eq!(cache.memory_len(), 2);
        assert!(cache.get(ProgramHash(2)).is_none());
        assert!(cache.get(ProgramHash(1)).is_some());
        assert!(cache.get(ProgramHash(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.memory_hits, 3);
    }

    #[test]
    fn disk_tier_survives_a_fresh_cache() {
        let dir = temp_dir("disk");
        let program = ok_program("disk-tier");
        let config = VerifierConfig::default();
        let key = program_hash(&program, &config);
        let report = verify(&program, &config);

        {
            let mut cache = VerdictCache::new(CacheConfig::persistent(&dir));
            cache.put(key, &report);
        }
        // A fresh cache (fresh process, conceptually) hits via disk.
        let mut cache = VerdictCache::new(CacheConfig::persistent(&dir));
        let loaded = cache.get(key).expect("disk hit");
        assert_eq!(loaded.to_json(), report.to_json());
        assert_eq!(cache.stats().disk_hits, 1);
        // Promotion: the second lookup is a memory hit.
        assert!(cache.get(key).is_some());
        assert_eq!(cache.stats().memory_hits, 1);

        // Corrupt the file: the next fresh cache treats it as a miss and
        // removes it.
        let path = cache.verdict_path(key).unwrap();
        fs::write(&path, "commcsl-verdict 999\nnot a verdict").unwrap();
        let mut fresh = VerdictCache::new(CacheConfig::persistent(&dir));
        assert!(fresh.get(key).is_none());
        assert!(!path.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_verifier_hits_and_verdicts_are_identical() {
        let verifier =
            CachedVerifier::new(BatchConfig::with_threads(2), CacheConfig::memory_only(64));
        let ok = ok_program("cv-ok");
        let leaky = leaky_program("cv-leaky");
        let programs: Vec<&AnnotatedProgram> = vec![&ok, &leaky];

        let cold = verifier.verify_batch(&programs);
        assert!(cold.iter().all(|r| !r.cached));
        let warm = verifier.verify_batch(&programs);
        assert!(warm.iter().all(|r| r.cached));
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.key, w.key);
            assert_eq!(c.report.to_json(), w.report.to_json());
        }
        // Cached verdicts equal direct verification byte-for-byte.
        let direct = verify(&leaky, verifier.verifier_config());
        assert_eq!(warm[1].report.to_json(), direct.to_json());

        let stats = verifier.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.memory_hits, 2);
        assert_eq!(stats.stores, 2);
    }

    #[test]
    fn duplicate_keys_survive_immediate_lru_eviction() {
        // Regression: with a capacity-1 memory tier and no disk tier,
        // verifying [A, B, A] evicts A's fresh verdict before the
        // duplicate slot is served; the duplicate must be answered from
        // the batch's own results, not the (already-evicted) cache.
        let verifier = CachedVerifier::new(
            BatchConfig::with_threads(1),
            CacheConfig::memory_only(1),
        );
        let a = ok_program("dup-a");
        let b = ok_program("dup-b");
        let results = verifier.verify_batch(&[&a, &b, &a]);
        assert_eq!(results.len(), 3);
        assert!(!results[0].cached && !results[1].cached);
        assert!(results[2].cached, "duplicate slot is served, not recomputed");
        assert_eq!(results[0].key, results[2].key);
        assert_eq!(results[0].report.to_json(), results[2].report.to_json());
    }

    #[test]
    fn backend_config_change_is_a_cache_miss_never_stale() {
        use commcsl_smt::BackendKind;

        let program = ok_program("backend-miss");
        let incremental_config = VerifierConfig::default();
        let fresh_config = VerifierConfig {
            backend: BackendKind::Fresh,
            ..Default::default()
        };
        let dir = temp_dir("backend-miss");
        let mut cache = VerdictCache::new(CacheConfig::persistent(&dir));

        let incremental_key = program_hash(&program, &incremental_config);
        cache.put(incremental_key, &verify(&program, &incremental_config));

        // A different backend (or counterexample knob) is a different
        // address: the stored verdict is never served for it.
        let fresh_key = program_hash(&program, &fresh_config);
        assert_ne!(incremental_key, fresh_key);
        assert!(cache.get(fresh_key).is_none(), "must miss, never stale");
        assert!(cache.get(incremental_key).is_some());

        let nocex_key = program_hash(
            &program,
            &VerifierConfig {
                counterexamples: false,
                ..Default::default()
            },
        );
        assert_ne!(incremental_key, nocex_key);
        assert!(cache.get(nocex_key).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obligation_statuses_roundtrip_all_shapes_and_reject_mismatches() {
        let statuses = [
            ObligationStatus::Proved,
            ObligationStatus::Failed(Failure::new("tab\there \nand \\slash")),
            ObligationStatus::Failed(
                Failure::new("with cex").with_counterexample(Counterexample {
                    bindings: vec![
                        CexBinding {
                            var: "h\t".into(),
                            exec1: "Int(0)".into(),
                            exec2: "Int(\n1)".into(),
                        },
                        CexBinding {
                            var: "k".into(),
                            exec1: "Seq([])".into(),
                            exec2: "Seq([])".into(),
                        },
                    ],
                }),
            ),
            ObligationStatus::Failed(
                Failure::new("empty cex").with_counterexample(Counterexample::default()),
            ),
        ];
        let key = ObligationKey(99);
        for status in &statuses {
            let encoded = encode_obligation(key, status);
            assert_eq!(decode_obligation(key, &encoded).as_ref(), Some(status));
            // Wrong key, wrong version, truncation, trailing garbage: miss.
            assert!(decode_obligation(ObligationKey(98), &encoded).is_none());
            let bumped = encoded.replace(
                &format!("{OBLIGATION_MAGIC} {HASH_FORMAT_VERSION}"),
                &format!("{OBLIGATION_MAGIC} {}", HASH_FORMAT_VERSION + 1),
            );
            assert!(decode_obligation(key, &bumped).is_none());
            assert!(decode_obligation(key, &encoded[..encoded.len() / 2]).is_none());
            assert!(decode_obligation(key, &format!("{encoded}junk\n")).is_none());
        }
    }

    #[test]
    fn obligation_tier_lru_disk_and_corruption_behave_like_the_program_tier() {
        let dir = temp_dir("obl");
        let status = ObligationStatus::Failed(Failure::new("nope"));
        {
            let mut cache = VerdictCache::new(CacheConfig {
                obligation_capacity: 2,
                ..CacheConfig::persistent(&dir)
            });
            cache.put_obligation(ObligationKey(1), &ObligationStatus::Proved);
            cache.put_obligation(ObligationKey(2), &status);
            cache.put_obligation(ObligationKey(3), &ObligationStatus::Proved);
            // Capacity 2: key 1 was evicted from memory...
            assert_eq!(cache.obligation_len(), 2);
            // ...but survives on disk, and promotes back on lookup.
            assert_eq!(
                cache.get_obligation(ObligationKey(1)),
                Some(ObligationStatus::Proved)
            );
            assert_eq!(cache.get_obligation(ObligationKey(2)), Some(status.clone()));
            let stats = cache.stats();
            assert_eq!(stats.obligation_stores, 3);
            assert_eq!(stats.obligation_hits, 2);
        }
        // A fresh cache (restart) hits via disk; a corrupt file is a miss
        // and is deleted.
        let mut cache = VerdictCache::new(CacheConfig::persistent(&dir));
        assert_eq!(cache.get_obligation(ObligationKey(2)), Some(status));
        let path = cache.obligation_path(ObligationKey(3)).unwrap();
        fs::write(&path, "commcsl-obligation 999\ngarbage").unwrap();
        assert_eq!(cache.get_obligation(ObligationKey(3)), None);
        assert!(!path.exists(), "corrupt obligation file deleted");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remote_tier_chains_behind_local_tiers_and_validates() {
        /// A toy remote backend: a shared in-memory map of raw entries.
        struct SharedRemote(Arc<Mutex<HashMap<ObligationKey, String>>>);

        impl RemoteObligationTier for SharedRemote {
            fn fetch(&mut self, key: ObligationKey) -> Option<String> {
                self.0.lock().unwrap().get(&key).cloned()
            }
            fn publish(&mut self, key: ObligationKey, entry: &str) {
                self.0.lock().unwrap().insert(key, entry.to_owned());
            }
            fn endpoint(&self) -> String {
                "test://shared".into()
            }
        }

        let backing = Arc::new(Mutex::new(HashMap::new()));
        let mut a = VerdictCache::new(CacheConfig::memory_only(8));
        a.set_remote(Box::new(SharedRemote(Arc::clone(&backing))));
        assert_eq!(a.remote_endpoint().as_deref(), Some("test://shared"));
        let status = ObligationStatus::Failed(Failure::new("nope"));
        a.put_obligation(ObligationKey(5), &status);
        assert_eq!(a.stats().remote_stores, 1);

        // A shared-nothing cache pointed at the same remote hits it and
        // promotes the status locally.
        let mut b = VerdictCache::new(CacheConfig::memory_only(8));
        b.set_remote(Box::new(SharedRemote(Arc::clone(&backing))));
        assert_eq!(b.get_obligation(ObligationKey(5)), Some(status.clone()));
        let stats = b.stats();
        assert_eq!((stats.remote_hits, stats.obligation_hits), (1, 1));
        assert_eq!(b.get_obligation(ObligationKey(5)), Some(status));
        assert_eq!(b.stats().remote_hits, 1, "second lookup is local");

        // Garbage and wrong-key remote entries are misses, never stale.
        backing.lock().unwrap().insert(ObligationKey(6), "garbage".into());
        assert_eq!(b.get_obligation(ObligationKey(6)), None);
        assert_eq!(b.stats().remote_misses, 1);
        let wrong = encode_obligation(ObligationKey(7), &ObligationStatus::Proved);
        backing.lock().unwrap().insert(ObligationKey(8), wrong);
        assert_eq!(b.get_obligation(ObligationKey(8)), None);
        assert_eq!(b.stats().remote_misses, 2);
    }

    #[test]
    fn export_and_import_roundtrip_raw_entries_between_caches() {
        let mut server = VerdictCache::new(CacheConfig::memory_only(8));
        let status = ObligationStatus::Failed(Failure::new("leak"));
        server.put_obligation(ObligationKey(11), &status);
        let report = VerifierReport {
            program: "p".into(),
            obligations: vec![],
            errors: vec![],
            hints: vec![],
        };
        server.put(ProgramHash(12), &report);

        // Export serves the raw entry text; absent keys export nothing.
        let obl_entry = server.export_obligation(ObligationKey(11)).unwrap();
        let verdict_entry = server.export_verdict(ProgramHash(12)).unwrap();
        assert!(server.export_obligation(ObligationKey(99)).is_none());
        assert!(server.export_verdict(ProgramHash(99)).is_none());

        // Import validates and admits into a shared-nothing cache.
        let mut client = VerdictCache::new(CacheConfig::memory_only(8));
        assert!(client.import_obligation(ObligationKey(11), &obl_entry));
        assert!(client.import_verdict(ProgramHash(12), &verdict_entry));
        assert_eq!(client.get_obligation(ObligationKey(11)), Some(status));
        assert_eq!(
            client.get(ProgramHash(12)).map(|r| r.to_json()),
            Some(report.to_json())
        );
        // Wrong-key and garbage entries are refused with no state change.
        assert!(!client.import_obligation(ObligationKey(13), &obl_entry));
        assert!(!client.import_verdict(ProgramHash(13), &verdict_entry));
        assert!(!client.import_obligation(ObligationKey(13), "garbage"));
        assert_eq!(client.get_obligation(ObligationKey(13)), None);
    }

    #[test]
    fn same_body_different_name_is_a_different_address() {
        let verifier =
            CachedVerifier::new(BatchConfig::default(), CacheConfig::memory_only(64));
        let a = verifier.verify(&ok_program("name-a"));
        let b = verifier.verify(&ok_program("name-b"));
        assert_ne!(a.key, b.key);
        assert!(!b.cached, "a renamed program must not hit a's verdict");
    }
}
