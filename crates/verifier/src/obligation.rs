//! Obligation-level content addressing: the unit of incremental
//! re-verification.
//!
//! A whole-program verdict is addressed by
//! [`program_hash`](crate::hash::program_hash); this module addresses the
//! *individual proof obligations* inside it. Every obligation the
//! symbolic execution discharges — a statement's `Low(..)` goal, an
//! action precondition, a retroactive batch-count check, a resource
//! specification's validity — is a pure function of its **dependency
//! cone**:
//!
//! * the goal term (derived from the statement and the resource specs it
//!   references),
//! * the relational path facts in scope at the check, *with their scope
//!   and batching structure* (facts of popped scopes are excluded; batch
//!   boundaries are included because the incremental solver backend
//!   saturates facts per batch),
//! * the sorts of every symbolic variable the goal and facts mention
//!   (they gate and steer the falsifier), and
//! * every verdict-relevant configuration knob (solver budgets,
//!   falsifier budgets, backend choice, counterexample search).
//!
//! [`ObligationKey`] is a stable 128-bit hash of exactly that cone, so
//! two obligations with the same key have **byte-identical**
//! [`ObligationStatus`] outcomes — which is what lets a
//! [`Workspace`](crate::workspace::Workspace) re-verify an edited program
//! by re-discharging only the obligations whose cones the edit dirtied
//! and replaying cached statuses for the rest, while keeping the final
//! report byte-identical to a cold run.
//!
//! [`ObligationGraph`] exposes the same structure declaratively: one node
//! per obligation, keyed, carrying the statement path that generated it
//! and the statement paths its fact cone depends on.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::str::FromStr;

use crate::hash::StableHasher;
use crate::program::{AnnotatedProgram, StmtPath};
use crate::report::{ObligationResult, ObligationStatus, VerifierConfig};

/// A 128-bit content hash of one proof obligation's dependency cone.
///
/// Displayed (and parsed) as 32 lowercase hex digits, like
/// [`ProgramHash`](crate::hash::ProgramHash). Two obligations with equal
/// keys have byte-identical statuses; the converse is not required (the
/// key may over-distinguish, which only costs cache hits, never
/// correctness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObligationKey(pub u128);

impl fmt::Display for ObligationKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for ObligationKey {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 {
            return Err(format!(
                "obligation key must be 32 hex digits, got {}",
                s.len()
            ));
        }
        u128::from_str_radix(s, 16)
            .map(ObligationKey)
            .map_err(|e| format!("bad obligation key: {e}"))
    }
}

impl ObligationKey {
    /// Finalizes a hasher into a key.
    pub fn from_hasher(h: &StableHasher) -> ObligationKey {
        ObligationKey(h.finish().0)
    }
}

/// A store of per-obligation statuses, keyed by [`ObligationKey`].
///
/// [`verify_incremental`](crate::symexec::verify_incremental) consults
/// the store before discharging each obligation and records every status
/// it computes. Implementations must return exactly what was stored
/// (byte-identical statuses) or nothing — a lossy store silently breaks
/// the workspace's byte-identity guarantee.
pub trait ObligationStore {
    /// Looks up a cached status.
    fn get(&mut self, key: ObligationKey) -> Option<ObligationStatus>;
    /// Records a freshly computed status.
    fn put(&mut self, key: ObligationKey, status: &ObligationStatus);
}

/// An [`ObligationStore`] that never hits and never records: running the
/// incremental verifier with it reproduces a cold run while still
/// enumerating keys and events (used by [`obligation_graph`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObligationStore;

impl ObligationStore for NullObligationStore {
    fn get(&mut self, _key: ObligationKey) -> Option<ObligationStatus> {
        None
    }
    fn put(&mut self, _key: ObligationKey, _status: &ObligationStatus) {}
}

/// A plain in-memory [`ObligationStore`] (unbounded; tests and the
/// obligation benches use it — the production store is the obligation
/// tier of [`VerdictCache`](crate::cache::VerdictCache)).
#[derive(Debug, Default, Clone)]
pub struct MemoryObligationStore {
    entries: HashMap<ObligationKey, ObligationStatus>,
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups the store could not answer.
    pub misses: u64,
}

impl ObligationStore for MemoryObligationStore {
    fn get(&mut self, key: ObligationKey) -> Option<ObligationStatus> {
        let found = self.entries.get(&key).cloned();
        match found {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        found
    }

    fn put(&mut self, key: ObligationKey, status: &ObligationStatus) {
        self.entries.insert(key, status.clone());
    }
}

impl MemoryObligationStore {
    /// Number of stored statuses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Per-run reuse counters of one incremental verification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DischargeStats {
    /// Obligations the run produced
    /// (`reused + checked + statically_proven`).
    pub total: usize,
    /// Obligations answered from the obligation store.
    pub reused: usize,
    /// Obligations discharged by the solver (and recorded).
    pub checked: usize,
    /// Obligations discharged by the static pre-pass without touching the
    /// solver (and recorded, so later runs reuse them like any other
    /// status).
    pub statically_proven: usize,
}

impl DischargeStats {
    /// Folds one settled obligation into the counters.
    pub(crate) fn record(&mut self, verdict: ObligationVerdict) {
        self.total += 1;
        match verdict {
            ObligationVerdict::Reused => self.reused += 1,
            ObligationVerdict::SolverChecked => self.checked += 1,
            ObligationVerdict::StaticallyProven => self.statically_proven += 1,
        }
    }
}

/// How one obligation's status was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObligationVerdict {
    /// Discharged by the static pre-pass; the solver was never consulted.
    StaticallyProven,
    /// Discharged by the solver.
    SolverChecked,
    /// Replayed from the obligation store (whatever engine produced it
    /// originally).
    Reused,
}

impl ObligationVerdict {
    /// The stable string form used in streaming events.
    pub fn as_str(self) -> &'static str {
        match self {
            ObligationVerdict::StaticallyProven => "static",
            ObligationVerdict::SolverChecked => "solver",
            ObligationVerdict::Reused => "reused",
        }
    }
}

/// One obligation as it settles during an incremental run — the payload
/// of the event callback of
/// [`verify_incremental`](crate::symexec::verify_incremental), streamed
/// by the daemon's protocol-v2 `obligation_done` events.
#[derive(Debug)]
pub struct ObligationEvent<'a> {
    /// Position in the report's obligation list.
    pub index: usize,
    /// The obligation's dependency-cone key.
    pub key: ObligationKey,
    /// Statement path of the proving site (empty for program-end checks).
    pub path: &'a [u32],
    /// Statement paths whose facts are in the obligation's cone (raw, in
    /// assertion order; may repeat).
    pub cone: &'a [StmtPath],
    /// The settled obligation (description, code, span, status).
    pub result: &'a ObligationResult,
    /// How the status was obtained (store hit, solver, or the static
    /// pre-pass).
    pub verdict: ObligationVerdict,
    /// Wall-clock time spent settling this obligation. Diagnostic payload
    /// only: nondeterministic, never part of reports or keys.
    pub time: std::time::Duration,
}

impl ObligationEvent<'_> {
    /// `true` when the status came from the obligation store.
    pub fn reused(&self) -> bool {
        self.verdict == ObligationVerdict::Reused
    }
}

/// One node of an [`ObligationGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObligationNode {
    /// The obligation's dependency-cone key.
    pub key: ObligationKey,
    /// Human-readable description (as it appears in reports).
    pub description: String,
    /// Stable obligation kind.
    pub code: crate::diag::DiagnosticCode,
    /// Source position, when known.
    pub span: Option<crate::diag::SourceSpan>,
    /// Statement path of the proving site.
    pub path: StmtPath,
    /// Statement paths the obligation's fact cone depends on (sorted,
    /// deduplicated; includes `path` itself).
    pub cone: Vec<StmtPath>,
}

/// The per-program obligation DAG: one node per proof obligation, each
/// keyed by the structural hash of its dependency cone. Edges are
/// implicit — a node depends on every statement in its `cone` — so an
/// edit dirties exactly the nodes whose cone contains an edited
/// statement (plus any node whose own key changed).
#[derive(Debug, Clone, Default)]
pub struct ObligationGraph {
    /// Nodes in report (generation) order.
    pub nodes: Vec<ObligationNode>,
}

impl ObligationGraph {
    /// Nodes whose dependency cone contains `path` (i.e. the obligations
    /// an edit of the statement at `path` can dirty).
    pub fn dependents_of(&self, path: &[u32]) -> impl Iterator<Item = &ObligationNode> {
        let path = path.to_vec();
        self.nodes
            .iter()
            .filter(move |n| n.cone.contains(&path))
    }
}

/// Enumerates a program's obligation DAG by running the incremental
/// symbolic execution against a [`NullObligationStore`] and collecting
/// every obligation event. The returned nodes carry exactly the keys a
/// [`Workspace`](crate::workspace::Workspace) would use, so the graph is
/// the ground truth for "what does this edit dirty".
pub fn obligation_graph(
    program: &AnnotatedProgram,
    config: &VerifierConfig,
) -> ObligationGraph {
    let mut nodes = Vec::new();
    let mut store = NullObligationStore;
    let _ = crate::symexec::verify_incremental(program, config, &mut store, &mut |e| {
        let mut cone: BTreeSet<StmtPath> = e.cone.iter().cloned().collect();
        cone.insert(e.path.to_vec());
        nodes.push(ObligationNode {
            key: e.key,
            description: e.result.description.clone(),
            code: e.result.code,
            span: e.result.span,
            path: e.path.to_vec(),
            cone: cone.into_iter().collect(),
        });
    });
    ObligationGraph { nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::VStmt;
    use commcsl_logic::spec::ResourceSpec;
    use commcsl_pure::{Sort, Term};

    #[test]
    fn keys_render_and_parse() {
        let key = ObligationKey(0xDEADBEEF);
        let hex = key.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(hex.parse::<ObligationKey>().unwrap(), key);
        assert!("short".parse::<ObligationKey>().is_err());
    }

    fn counter_program() -> AnnotatedProgram {
        AnnotatedProgram::new("graph-counter")
            .with_resource(ResourceSpec::counter_add())
            .with_body([
                VStmt::input("a", Sort::Int, true),
                VStmt::Share {
                    resource: 0,
                    init: Term::int(0),
                },
                VStmt::Par {
                    workers: vec![
                        vec![VStmt::atomic(0, "Add", Term::var("a"))],
                        vec![VStmt::atomic(0, "Add", Term::int(2))],
                    ],
                },
                VStmt::Unshare {
                    resource: 0,
                    into: "c".into(),
                },
                VStmt::Output(Term::var("c")),
            ])
    }

    #[test]
    fn graph_enumerates_every_obligation_with_distinct_keys() {
        let config = VerifierConfig::default();
        let program = counter_program();
        let graph = obligation_graph(&program, &config);
        let report = crate::symexec::verify(&program, &config);
        assert_eq!(graph.nodes.len(), report.obligations.len());
        for (node, o) in graph.nodes.iter().zip(&report.obligations) {
            assert_eq!(node.description, o.description);
            assert_eq!(node.code, o.code);
            assert!(node.cone.contains(&node.path));
        }
        let keys: BTreeSet<ObligationKey> =
            graph.nodes.iter().map(|n| n.key).collect();
        assert_eq!(keys.len(), graph.nodes.len(), "keys must be distinct here");
        // The graph is deterministic.
        let again = obligation_graph(&program, &config);
        assert_eq!(graph.nodes, again.nodes);
    }

    #[test]
    fn output_obligation_depends_on_the_unshare() {
        let config = VerifierConfig::default();
        let graph = obligation_graph(&counter_program(), &config);
        let output = graph
            .nodes
            .iter()
            .find(|n| n.code == crate::diag::DiagnosticCode::LowOutput)
            .expect("output obligation");
        // The unshare (path [3]) feeds the abstraction-equality fact the
        // output check relies on.
        assert!(
            output.cone.contains(&vec![3]),
            "cone {:?} must include the unshare",
            output.cone
        );
        assert_eq!(output.path, vec![4]);
        assert!(graph
            .dependents_of(&[3])
            .any(|n| n.code == crate::diag::DiagnosticCode::LowOutput));
    }
}
