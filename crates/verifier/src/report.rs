//! Verification reports with structured diagnostics.
//!
//! A [`VerifierReport`] lists every proof obligation the symbolic
//! execution generated, each carrying a stable
//! [`DiagnosticCode`], an optional [`SourceSpan`] (threaded from the
//! `commcsl-front` lowering), and — on failure — a [`Failure`] with the
//! reason and an optional falsifying [`Counterexample`]. The JSON shape
//! produced by [`VerifierReport::to_json`] is the single wire format:
//! the CLI `--json` mode embeds it verbatim, the daemon protocol streams
//! it byte-identically, and the verdict cache round-trips it losslessly.

use std::fmt;

use commcsl_logic::validity::ValidityConfig;
use commcsl_smt::falsify::FalsifyConfig;
use commcsl_smt::{BackendKind, SolverConfig};

pub use crate::diag::{CexBinding, Counterexample, DiagnosticCode, Failure, SourceSpan};
pub use commcsl_analysis::lint::{Lint, LintCode, Severity};

use crate::program::StmtPath;

/// Version of the report JSON shape emitted by
/// [`VerifierReport::to_json`] (and therefore by the CLI's `--json`
/// output and the daemon protocol). Bumped whenever a field is added,
/// removed, or reinterpreted, so machine consumers can detect documents
/// they do not understand. Independent of
/// [`HASH_FORMAT_VERSION`](crate::hash::HASH_FORMAT_VERSION) (the cache
/// address version), though a schema bump implies a hash bump — the
/// bytes change.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Configuration for the verifier.
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// Solver budgets for program obligations.
    pub solver: SolverConfig,
    /// Budgets for specification validity checking at `share` (including
    /// the validity checker's own backend choice).
    pub validity: ValidityConfig,
    /// Countermodel search budgets for failed obligations.
    pub falsify: FalsifyConfig,
    /// Which solver backend discharges program obligations. The symbolic
    /// execution opens one session per program and mirrors its path
    /// condition into solver scopes, so an incremental backend saturates
    /// each path fact once however many goals are checked against it.
    pub backend: BackendKind,
    /// Whether failed obligations hunt for a concrete falsifying
    /// assignment (surfaced as [`Counterexample`] in reports). Part of
    /// the content hash: toggling it changes report bytes.
    pub counterexamples: bool,
    /// Whether the static pre-pass may discharge obligations whose goal
    /// normalizes to `true` without consulting the solver. Verdicts are
    /// byte-identical either way (the pre-pass only claims goals the
    /// solver's own rewriter proves in its first saturation round), but
    /// the knob is still part of the content hash — cached timings and
    /// discharge counters are only comparable within one setting.
    pub static_prepass: bool,
    /// Whether falsified obligations delta-debug their path-fact cone
    /// down to a minimal falsifying environment (see
    /// [`crate::minimize`]). Off by default: minimization re-checks
    /// shrunk fact subsets through a scratch solver session, so it costs
    /// extra solver/falsifier work per failure. Part of the content hash;
    /// with the knob off, report bytes are identical to a build without
    /// the feature.
    pub minimize_counterexamples: bool,
    /// Whether proved obligations record their *proof core* — the subset
    /// of path facts the proof can have used (see
    /// [`commcsl_smt::assume`]) — and reports aggregate the cores into
    /// per-program unneeded-annotation hints. Off by default; part of the
    /// content hash; with the knob off, report bytes are identical to a
    /// build without the feature.
    pub proof_cores: bool,
}

impl VerifierConfig {
    /// The default configuration (incremental backend, counterexample
    /// search enabled).
    pub fn new() -> Self {
        VerifierConfig::default()
    }
}

// `Default` must enable counterexample search; deriving would pick `false`.
impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            solver: SolverConfig::default(),
            validity: ValidityConfig::default(),
            falsify: FalsifyConfig::default(),
            backend: BackendKind::default(),
            counterexamples: true,
            static_prepass: true,
            minimize_counterexamples: false,
            proof_cores: false,
        }
    }
}

/// The status of one proof obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObligationStatus {
    /// Proved by the solver.
    Proved,
    /// Could not be proved; carries the structured failure.
    Failed(Failure),
}

impl ObligationStatus {
    /// Convenience constructor for a reason-only failure.
    pub fn failed(reason: impl Into<String>) -> ObligationStatus {
        ObligationStatus::Failed(Failure::new(reason))
    }
}

/// One fact site contributing to an obligation's proof core: the
/// statement that asserted the fact, identified by its [`StmtPath`] and —
/// when the program came through the frontend — its source position.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CoreFact {
    /// Statement path of the asserting site.
    pub path: StmtPath,
    /// Source position of the asserting site, when known.
    pub span: Option<SourceSpan>,
}

/// One discharged (or failed) obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObligationResult {
    /// A human-readable description (e.g. `"pre of Put at worker 1"`).
    pub description: String,
    /// Stable machine-readable obligation kind.
    pub code: DiagnosticCode,
    /// Source position of the generating statement, when the program was
    /// compiled from `.csl` source.
    pub span: Option<SourceSpan>,
    /// The outcome.
    pub status: ObligationStatus,
    /// The proof core — fact sites the proof can have used, deduplicated
    /// by path and sorted. `Some` only for proved obligations of a run
    /// with [`VerifierConfig::proof_cores`] enabled, so reports with the
    /// knob off render byte-identically to builds without the field.
    pub core: Option<Vec<CoreFact>>,
}

impl ObligationResult {
    /// The failure, if any.
    pub fn failure(&self) -> Option<&Failure> {
        match &self.status {
            ObligationStatus::Proved => None,
            ObligationStatus::Failed(failure) => Some(failure),
        }
    }
}

/// The result of verifying one annotated program.
#[derive(Debug, Clone)]
pub struct VerifierReport {
    /// Program name.
    pub program: String,
    /// Every obligation, in order of generation.
    pub obligations: Vec<ObligationResult>,
    /// Structural errors (guard misuse, malformed program) that prevent
    /// verification regardless of the solver.
    pub errors: Vec<String>,
    /// Lint-style notes aggregated from the proof cores: annotation sites
    /// whose facts no proved obligation needed (see
    /// [`LintCode::UnneededAnnotation`]). Empty — and absent from the
    /// JSON — unless [`VerifierConfig::proof_cores`] is enabled.
    pub hints: Vec<Lint>,
}

impl VerifierReport {
    /// `true` when the program verified: no structural errors and every
    /// obligation proved.
    pub fn verified(&self) -> bool {
        self.errors.is_empty()
            && self
                .obligations
                .iter()
                .all(|o| o.status == ObligationStatus::Proved)
    }

    /// The failed obligations.
    pub fn failures(&self) -> impl Iterator<Item = &ObligationResult> {
        self.obligations
            .iter()
            .filter(|o| o.status != ObligationStatus::Proved)
    }

    /// Number of obligations discharged.
    pub fn proved_count(&self) -> usize {
        self.obligations
            .iter()
            .filter(|o| o.status == ObligationStatus::Proved)
            .count()
    }
}

/// Escapes a string for inclusion in a JSON document (quotes included).
///
/// The workspace's vendored `serde` stub derives marker impls only, so the
/// machine-readable outputs (the `commcsl` CLI's `--json` mode, the
/// `table1` bench snapshots) are rendered by hand through this helper.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl VerifierReport {
    /// Renders the report as one JSON object (no trailing newline).
    ///
    /// Field order and spelling are part of the tool's machine interface:
    /// the daemon protocol (`commcsl_server::protocol::report_to_json`)
    /// and the verdict cache reproduce these bytes exactly.
    pub fn to_json(&self) -> String {
        let obligations: Vec<String> = self
            .obligations
            .iter()
            .map(|o| {
                let mut fields = vec![
                    format!("\"description\":{}", json_string(&o.description)),
                    format!("\"code\":{}", json_string(o.code.as_str())),
                ];
                if let Some(span) = &o.span {
                    fields.push(format!("\"span\":{}", json_string(&span.to_string())));
                }
                fields.push(format!(
                    "\"proved\":{}",
                    o.status == ObligationStatus::Proved
                ));
                if let ObligationStatus::Failed(failure) = &o.status {
                    fields.push(format!("\"reason\":{}", json_string(&failure.reason)));
                    if let Some(cex) = &failure.counterexample {
                        let bindings: Vec<String> = cex
                            .bindings
                            .iter()
                            .map(|b| {
                                format!(
                                    "{{\"var\":{},\"exec1\":{},\"exec2\":{}}}",
                                    json_string(&b.var),
                                    json_string(&b.exec1),
                                    json_string(&b.exec2)
                                )
                            })
                            .collect();
                        fields.push(format!(
                            "\"counterexample\":[{}]",
                            bindings.join(",")
                        ));
                    }
                }
                if let Some(core) = &o.core {
                    let facts: Vec<String> =
                        core.iter().map(core_fact_json).collect();
                    fields.push(format!("\"core\":[{}]", facts.join(",")));
                }
                format!("{{{}}}", fields.join(","))
            })
            .collect();
        let errors: Vec<String> =
            self.errors.iter().map(|e| json_string(e)).collect();
        let hints = if self.hints.is_empty() {
            String::new()
        } else {
            let rendered: Vec<String> = self.hints.iter().map(hint_json).collect();
            format!(",\"hints\":[{}]", rendered.join(","))
        };
        format!(
            "{{\"schema_version\":{REPORT_SCHEMA_VERSION},\"program\":{},\"verified\":{},\
             \"proved\":{},\"obligations\":[{}],\"errors\":[{}]{hints}}}",
            json_string(&self.program),
            self.verified(),
            self.proved_count(),
            obligations.join(","),
            errors.join(","),
        )
    }
}

/// Renders one [`CoreFact`] for the report JSON (`span` omitted when
/// absent, matching the obligation's own span field).
fn core_fact_json(fact: &CoreFact) -> String {
    let path: Vec<String> = fact.path.iter().map(u32::to_string).collect();
    match &fact.span {
        Some(span) => format!(
            "{{\"path\":[{}],\"span\":{}}}",
            path.join(","),
            json_string(&span.to_string())
        ),
        None => format!("{{\"path\":[{}]}}", path.join(",")),
    }
}

/// Renders one aggregated hint for the report JSON, in the same field
/// shape the daemon protocol uses for lint findings.
fn hint_json(hint: &Lint) -> String {
    let mut fields = vec![
        format!("\"code\":{}", json_string(hint.code.as_str())),
        format!("\"severity\":{}", json_string(hint.severity.as_str())),
    ];
    if let Some(span) = &hint.span {
        fields.push(format!("\"span\":{}", json_string(&span.to_string())));
    }
    let path: Vec<String> = hint.path.iter().map(u32::to_string).collect();
    fields.push(format!("\"path\":[{}]", path.join(",")));
    fields.push(format!("\"message\":{}", json_string(&hint.message)));
    format!("{{{}}}", fields.join(","))
}

impl fmt::Display for VerifierReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {}: {}/{} obligations proved",
            if self.verified() { "OK" } else { "FAIL" },
            self.program,
            self.proved_count(),
            self.obligations.len()
        )?;
        for e in &self.errors {
            writeln!(f, "  error: {e}")?;
        }
        for o in self.failures() {
            if let ObligationStatus::Failed(failure) = &o.status {
                let at = o
                    .span
                    .map(|s| format!(" at {s}"))
                    .unwrap_or_default();
                writeln!(
                    f,
                    "  failed [{}]{at}: {} — {}",
                    o.code, o.description, failure.reason
                )?;
                if let Some(cex) = &failure.counterexample {
                    for b in &cex.bindings {
                        if b.exec1 == b.exec2 {
                            writeln!(f, "    where {} = {}", b.var, b.exec1)?;
                        } else {
                            writeln!(
                                f,
                                "    where {} = {} vs {}",
                                b.var, b.exec1, b.exec2
                            )?;
                        }
                    }
                }
            }
        }
        for hint in &self.hints {
            writeln!(f, "  {hint}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proved(description: &str) -> ObligationResult {
        ObligationResult {
            description: description.into(),
            code: DiagnosticCode::LowOutput,
            span: None,
            status: ObligationStatus::Proved,
            core: None,
        }
    }

    #[test]
    fn verified_requires_all_proved_and_no_errors() {
        let mut r = VerifierReport {
            program: "p".into(),
            obligations: vec![proved("d")],
            errors: vec![],
            hints: vec![],
        };
        assert!(r.verified());
        r.errors.push("structural".into());
        assert!(!r.verified());
        r.errors.clear();
        r.obligations.push(ObligationResult {
            description: "bad".into(),
            code: DiagnosticCode::ActionPre,
            span: Some(SourceSpan::new(3, 1)),
            status: ObligationStatus::failed("nope"),
            core: None,
        });
        assert!(!r.verified());
        assert_eq!(r.failures().count(), 1);
        let shown = r.to_string();
        assert!(shown.contains("FAIL"));
        assert!(shown.contains("bad"));
        assert!(shown.contains("[action-pre]"));
        assert!(shown.contains("at 3:1"));
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_escaping_edge_cases() {
        // Every C0 control character must come out escaped; the named
        // short forms win where JSON defines them.
        for c in (0u32..0x20).map(|c| char::from_u32(c).unwrap()) {
            let rendered = json_string(&c.to_string());
            let expected = match c {
                '\n' => "\"\\n\"".to_owned(),
                '\r' => "\"\\r\"".to_owned(),
                '\t' => "\"\\t\"".to_owned(),
                _ => format!("\"\\u{:04x}\"", c as u32),
            };
            assert_eq!(rendered, expected, "control char {:#x}", c as u32);
        }
        // Backslash runs and quote/backslash adjacency do not collapse.
        assert_eq!(json_string("\\\\"), "\"\\\\\\\\\"");
        assert_eq!(json_string("\\\""), "\"\\\\\\\"\"");
        // Non-ASCII passes through raw (JSON strings are UTF-8).
        assert_eq!(json_string("αβ 中 🦀"), "\"αβ 中 🦀\"");
        // DEL (0x7f) is not a C0 control and needs no escape.
        assert_eq!(json_string("\u{7f}"), "\"\u{7f}\"");
    }

    #[test]
    fn report_json_with_nasty_program_names_stays_balanced() {
        for name in [
            "quotes \"inside\" the name",
            "back\\slash \\\" combo",
            "newline\nand\ttab and \u{0}null",
            "trailing backslash \\",
        ] {
            let r = VerifierReport {
                program: name.into(),
                obligations: vec![ObligationResult {
                    description: format!("pre of {name}"),
                    code: DiagnosticCode::ActionPre,
                    span: None,
                    status: ObligationStatus::Failed(
                        Failure::new(format!("why: {name}")).with_counterexample(
                            Counterexample {
                                bindings: vec![CexBinding {
                                    var: name.into(),
                                    exec1: "Int(0)".into(),
                                    exec2: name.into(),
                                }],
                            },
                        ),
                    ),
                    core: None,
                }],
                errors: vec![name.into()],
                hints: vec![],
            };
            let json = r.to_json();
            // No raw control characters or unescaped quotes survive.
            assert!(json.chars().all(|c| (c as u32) >= 0x20), "{json}");
            for (open, close) in [('{', '}'), ('[', ']')] {
                assert_eq!(
                    json.matches(open).count(),
                    json.matches(close).count(),
                    "{json}"
                );
            }
        }
    }

    #[test]
    fn report_json_is_well_formed() {
        let r = VerifierReport {
            program: "p \"q\"".into(),
            obligations: vec![
                ObligationResult {
                    description: "pre of Put".into(),
                    code: DiagnosticCode::ActionPre,
                    span: Some(SourceSpan::new(7, 5)),
                    status: ObligationStatus::Proved,
                    core: None,
                },
                ObligationResult {
                    description: "Low(output)".into(),
                    code: DiagnosticCode::LowOutput,
                    span: None,
                    status: ObligationStatus::Failed(
                        Failure::new("countermodel").with_counterexample(Counterexample {
                            bindings: vec![CexBinding {
                                var: "h".into(),
                                exec1: "Int(0)".into(),
                                exec2: "Int(1)".into(),
                            }],
                        }),
                    ),
                    core: None,
                },
            ],
            errors: vec!["guard misuse".into()],
            hints: vec![],
        };
        let json = r.to_json();
        assert!(json.starts_with(&format!(
            "{{\"schema_version\":{REPORT_SCHEMA_VERSION},\"program\":\"p \\\"q\\\"\""
        )));
        assert!(json.contains("\"verified\":false"));
        assert!(json.contains("\"proved\":1"));
        assert!(json.contains("\"code\":\"action-pre\""));
        assert!(json.contains("\"span\":\"7:5\""));
        assert!(json.contains("\"reason\":\"countermodel\""));
        assert!(json.contains(
            "\"counterexample\":[{\"var\":\"h\",\"exec1\":\"Int(0)\",\"exec2\":\"Int(1)\"}]"
        ));
        assert!(json.contains("\"errors\":[\"guard misuse\"]"));
        // Balanced braces/brackets (cheap well-formedness check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count()
            );
        }
    }
}
