//! Verification reports.

use std::fmt;

use commcsl_logic::validity::ValidityConfig;
use commcsl_smt::falsify::FalsifyConfig;
use commcsl_smt::SolverConfig;

/// Configuration for the verifier.
#[derive(Debug, Clone, Default)]
pub struct VerifierConfig {
    /// Solver budgets for program obligations.
    pub solver: SolverConfig,
    /// Budgets for specification validity checking at `share`.
    pub validity: ValidityConfig,
    /// Countermodel search budgets for failed obligations.
    pub falsify: FalsifyConfig,
}

/// The status of one proof obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObligationStatus {
    /// Proved by the solver.
    Proved,
    /// Could not be proved (with an explanation; a countermodel when one
    /// was found).
    Failed(String),
}

/// One discharged (or failed) obligation.
#[derive(Debug, Clone)]
pub struct ObligationResult {
    /// A human-readable description (e.g. `"pre of Put at worker 1"`).
    pub description: String,
    /// The outcome.
    pub status: ObligationStatus,
}

/// The result of verifying one annotated program.
#[derive(Debug, Clone)]
pub struct VerifierReport {
    /// Program name.
    pub program: String,
    /// Every obligation, in order of generation.
    pub obligations: Vec<ObligationResult>,
    /// Structural errors (guard misuse, malformed program) that prevent
    /// verification regardless of the solver.
    pub errors: Vec<String>,
}

impl VerifierReport {
    /// `true` when the program verified: no structural errors and every
    /// obligation proved.
    pub fn verified(&self) -> bool {
        self.errors.is_empty()
            && self
                .obligations
                .iter()
                .all(|o| o.status == ObligationStatus::Proved)
    }

    /// The failed obligations.
    pub fn failures(&self) -> impl Iterator<Item = &ObligationResult> {
        self.obligations
            .iter()
            .filter(|o| o.status != ObligationStatus::Proved)
    }

    /// Number of obligations discharged.
    pub fn proved_count(&self) -> usize {
        self.obligations
            .iter()
            .filter(|o| o.status == ObligationStatus::Proved)
            .count()
    }
}

impl fmt::Display for VerifierReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {}: {}/{} obligations proved",
            if self.verified() { "OK" } else { "FAIL" },
            self.program,
            self.proved_count(),
            self.obligations.len()
        )?;
        for e in &self.errors {
            writeln!(f, "  error: {e}")?;
        }
        for o in self.failures() {
            if let ObligationStatus::Failed(why) = &o.status {
                writeln!(f, "  failed: {} — {}", o.description, why)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verified_requires_all_proved_and_no_errors() {
        let mut r = VerifierReport {
            program: "p".into(),
            obligations: vec![ObligationResult {
                description: "d".into(),
                status: ObligationStatus::Proved,
            }],
            errors: vec![],
        };
        assert!(r.verified());
        r.errors.push("structural".into());
        assert!(!r.verified());
        r.errors.clear();
        r.obligations.push(ObligationResult {
            description: "bad".into(),
            status: ObligationStatus::Failed("nope".into()),
        });
        assert!(!r.verified());
        assert_eq!(r.failures().count(), 1);
        let shown = r.to_string();
        assert!(shown.contains("FAIL"));
        assert!(shown.contains("bad"));
    }
}
