//! Parallel batch verification.
//!
//! Verifying the Table 1 evaluation suite (and any future corpus of
//! annotated programs) is embarrassingly parallel: every program's
//! obligations are discharged independently, the verifier allocates its
//! solver state per call, and all inputs are immutable. This module
//! exploits that: [`verify_batch`] fans a batch of programs out over a
//! configurable pool of OS threads (work-stealing via a shared atomic
//! cursor, so long-running programs do not stall the queue) and returns
//! per-program reports with wall-clock timings, **in input order**.
//!
//! Determinism: the verifier is a pure function of `(program, config)`,
//! so batch results are identical to sequential [`verify`] results
//! regardless of thread count or scheduling — a property pinned by unit
//! tests here and by the fixture-wide integration test
//! (`tests/batch_parallel.rs` at the workspace root).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use commcsl_smt::SessionStats;

use crate::obligation::DischargeStats;
use crate::program::AnnotatedProgram;
use crate::report::{VerifierConfig, VerifierReport};
use crate::symexec::verify_with_stats;

/// Configuration for a batch run.
#[derive(Debug, Clone, Default)]
pub struct BatchConfig {
    /// Worker threads. `0` (the default) means one per available CPU.
    pub threads: usize,
    /// The per-program verifier configuration.
    pub verifier: VerifierConfig,
    /// Stop dispatching new programs once one has *failed* verification.
    /// Programs already in flight on other workers still finish;
    /// never-dispatched programs come back with
    /// [`BatchResult::skipped`] set. With `threads: 1` the cut is
    /// deterministic: everything after the first failure is skipped.
    pub fail_fast: bool,
}

impl BatchConfig {
    /// A batch configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        BatchConfig { threads, ..Default::default() }
    }

    /// The effective pool size for a batch of `jobs` programs: never
    /// zero, never more threads than jobs.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        let requested = if self.threads == 0 {
            thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        };
        requested.min(jobs).max(1)
    }
}

/// The outcome of verifying one program of a batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Position of the program in the input batch.
    pub index: usize,
    /// Program name (copied from the input for convenient reporting).
    pub program: String,
    /// The full verification report. For a skipped program this is a
    /// placeholder (no obligations, one explanatory error) that never
    /// counts as verified and must never be cached.
    pub report: VerifierReport,
    /// Wall-clock time spent verifying this program.
    pub time: Duration,
    /// How the obligations were discharged (solver vs. static pre-pass).
    /// Zeroed for skipped programs.
    pub stats: DischargeStats,
    /// Wall-clock settle time per obligation, in report order. Diagnostic
    /// payload only (nondeterministic); empty for skipped programs.
    pub obligation_times: Vec<Duration>,
    /// Cumulative solver-session counters for this program's run
    /// (pushes, pops, asserts, checks, quiescence skips). Diagnostic
    /// payload only — never enters reports or cache keys. Zeroed for
    /// skipped programs.
    pub session: SessionStats,
    /// `true` when fail-fast stopped the batch before this program was
    /// dispatched; its `report` is a placeholder, not a verdict.
    pub skipped: bool,
}

/// The placeholder report for a program skipped by fail-fast.
pub(crate) fn skipped_report(name: &str) -> VerifierReport {
    VerifierReport {
        program: name.to_owned(),
        obligations: Vec::new(),
        errors: vec!["skipped: fail-fast stopped the batch after an earlier failure".into()],
        hints: Vec::new(),
    }
}

/// Verifies every program of `programs` across a thread pool and returns
/// one [`BatchResult`] per program, in input order.
///
/// Results are bit-identical to calling [`verify`] sequentially with
/// `config.verifier` (only the `time` field varies run to run).
///
/// # Example
///
/// ```
/// use commcsl_verifier::batch::{verify_batch, BatchConfig};
/// use commcsl_verifier::program::AnnotatedProgram;
///
/// let programs = vec![AnnotatedProgram::new("a"), AnnotatedProgram::new("b")];
/// let results = verify_batch(&programs, &BatchConfig::with_threads(2));
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].program, "a");
/// assert_eq!(results[1].program, "b");
/// ```
pub fn verify_batch(
    programs: &[AnnotatedProgram],
    config: &BatchConfig,
) -> Vec<BatchResult> {
    verify_batch_ref(&programs.iter().collect::<Vec<_>>(), config)
}

/// [`verify_batch`] over borrowed programs, for callers whose programs
/// live inside larger structures (e.g. fixtures).
pub fn verify_batch_ref(
    programs: &[&AnnotatedProgram],
    config: &BatchConfig,
) -> Vec<BatchResult> {
    run_pool(programs, config, |program| {
        verify_with_stats(program, &config.verifier)
    })
}

/// [`verify_batch_ref`] with a shared [`VerdictCache`] threaded through
/// the pool as an [`ObligationStore`](crate::obligation::ObligationStore):
/// each worker discharges its programs via
/// [`verify_incremental`](crate::symexec::verify_incremental), replaying
/// statuses whose dependency-cone keys hit the cache's obligation tier
/// (memory, disk, or a chained remote tier) and recording every status it
/// computes. Reports are **byte-identical** to [`verify_batch_ref`] —
/// the incremental engine's core guarantee — whatever mix of hits and
/// misses served them; only `session` counters are zeroed (the
/// incremental path does not expose them).
pub fn verify_batch_stored(
    programs: &[&AnnotatedProgram],
    config: &BatchConfig,
    cache: &Mutex<crate::cache::VerdictCache>,
) -> Vec<BatchResult> {
    run_pool(programs, config, |program| {
        let mut store = crate::cache::SharedObligationStore(cache);
        let mut obligation_times = Vec::new();
        let (report, stats) = crate::symexec::verify_incremental(
            program,
            &config.verifier,
            &mut store,
            &mut |event| obligation_times.push(event.time),
        );
        (report, stats, obligation_times, SessionStats::default())
    })
}

/// The shared work-stealing pool behind [`verify_batch_ref`] and
/// [`verify_batch_stored`]: `job` verifies one program and returns the
/// report plus its diagnostic payloads.
fn run_pool(
    programs: &[&AnnotatedProgram],
    config: &BatchConfig,
    job: impl Fn(&AnnotatedProgram) -> (VerifierReport, DischargeStats, Vec<Duration>, SessionStats)
        + Sync,
) -> Vec<BatchResult> {
    let jobs = programs.len();
    if jobs == 0 {
        return Vec::new();
    }
    let threads = config.effective_threads(jobs);

    // Work-stealing over a shared cursor: each worker claims the next
    // unclaimed index until the batch is drained. Slots are filled by
    // input index, so output order is input order whatever the
    // interleaving was.
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<BatchResult>>> =
        (0..jobs).map(|_| Mutex::new(None)).collect();

    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= jobs {
                    break;
                }
                let program = programs[index];
                if config.fail_fast && stop.load(Ordering::Relaxed) {
                    *slots[index].lock().expect("batch slot poisoned") = Some(BatchResult {
                        index,
                        program: program.name.clone(),
                        report: skipped_report(&program.name),
                        time: Duration::ZERO,
                        stats: DischargeStats::default(),
                        obligation_times: Vec::new(),
                        session: SessionStats::default(),
                        skipped: true,
                    });
                    continue;
                }
                let start = Instant::now();
                let (report, stats, obligation_times, session) = job(program);
                let time = start.elapsed();
                if config.fail_fast && !report.verified() {
                    stop.store(true, Ordering::Relaxed);
                }
                *slots[index].lock().expect("batch slot poisoned") = Some(BatchResult {
                    index,
                    program: program.name.clone(),
                    report,
                    time,
                    stats,
                    obligation_times,
                    session,
                    skipped: false,
                });
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("batch slot poisoned")
                .expect("every claimed index is filled before scope exit")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use commcsl_pure::{Sort, Term};

    use super::*;
    use crate::program::VStmt;
    use crate::symexec::verify;

    /// A small, genuinely verifying program (low inputs into a shared
    /// counter), plus a failing one (outputs a high input directly).
    fn sample_programs() -> Vec<AnnotatedProgram> {
        let ok = AnnotatedProgram::new("batch-ok")
            .with_resource(commcsl_logic::spec::ResourceSpec::counter_add())
            .with_body([
                VStmt::input("a", Sort::Int, true),
                VStmt::Share { resource: 0, init: Term::int(0) },
                VStmt::Par {
                    workers: vec![
                        vec![VStmt::atomic(0, "Add", Term::var("a"))],
                        vec![VStmt::atomic(0, "Add", Term::int(2))],
                    ],
                },
                VStmt::Unshare { resource: 0, into: "total".into() },
                VStmt::Output(Term::var("total")),
            ]);
        let leaky = AnnotatedProgram::new("batch-leaky")
            .with_body([
                VStmt::input("h", Sort::Int, false),
                VStmt::Output(Term::var("h")),
            ]);
        vec![ok, leaky, ok_clone_with_name()]
    }

    fn ok_clone_with_name() -> AnnotatedProgram {
        AnnotatedProgram::new("batch-trivial").with_body([
            VStmt::input("x", Sort::Int, true),
            VStmt::Output(Term::var("x")),
        ])
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(verify_batch(&[], &BatchConfig::default()).is_empty());
    }

    #[test]
    fn batch_results_preserve_input_order() {
        let programs = sample_programs();
        let results = verify_batch(&programs, &BatchConfig::with_threads(3));
        let names: Vec<&str> = results.iter().map(|r| r.program.as_str()).collect();
        assert_eq!(names, vec!["batch-ok", "batch-leaky", "batch-trivial"]);
        assert_eq!(
            results.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn batch_agrees_with_sequential_for_any_thread_count() {
        let programs = sample_programs();
        let sequential: Vec<VerifierReport> = programs
            .iter()
            .map(|p| verify(p, &VerifierConfig::default()))
            .collect();
        for threads in [1, 2, 3, 8] {
            let results = verify_batch(&programs, &BatchConfig::with_threads(threads));
            assert_eq!(results.len(), sequential.len());
            for (batch, seq) in results.iter().zip(&sequential) {
                assert_eq!(batch.report.verified(), seq.verified(), "threads={threads}");
                assert_eq!(
                    batch.report.obligations.len(),
                    seq.obligations.len(),
                    "threads={threads}"
                );
                assert_eq!(batch.report.errors, seq.errors, "threads={threads}");
            }
        }
    }

    #[test]
    fn effective_threads_is_clamped() {
        assert_eq!(BatchConfig::with_threads(16).effective_threads(3), 3);
        assert_eq!(BatchConfig::with_threads(2).effective_threads(3), 2);
        assert!(BatchConfig::with_threads(0).effective_threads(100) >= 1);
        assert_eq!(BatchConfig::with_threads(4).effective_threads(0), 1);
    }

    #[test]
    fn fail_fast_skips_programs_after_the_first_failure() {
        let programs = sample_programs(); // [ok, leaky, trivial]
        let mut config = BatchConfig::with_threads(1);
        config.fail_fast = true;
        let results = verify_batch(&programs, &config);
        assert!(!results[0].skipped && results[0].report.verified());
        assert!(!results[1].skipped && !results[1].report.verified());
        assert!(results[2].skipped, "third program is never dispatched");
        assert!(
            !results[2].report.verified(),
            "skipped programs never count as verified"
        );
        assert!(results[2].report.errors[0].contains("fail-fast"));

        // Without fail-fast everything runs.
        let results = verify_batch(&programs, &BatchConfig::with_threads(1));
        assert!(results.iter().all(|r| !r.skipped));
        assert!(results[2].report.verified());
    }

    #[test]
    fn stored_batch_is_byte_identical_and_replays_on_the_second_run() {
        use crate::cache::{CacheConfig, VerdictCache};

        let programs = sample_programs();
        let refs: Vec<&AnnotatedProgram> = programs.iter().collect();
        let plain = verify_batch_ref(&refs, &BatchConfig::with_threads(2));
        let cache = Mutex::new(VerdictCache::new(CacheConfig::memory_only(64)));
        let stored = verify_batch_stored(&refs, &BatchConfig::with_threads(2), &cache);
        for (p, s) in plain.iter().zip(&stored) {
            assert_eq!(
                p.report.to_json(),
                s.report.to_json(),
                "stored pool must not change report bytes"
            );
        }
        // A second stored run replays every obligation from the tier.
        let again = verify_batch_stored(&refs, &BatchConfig::with_threads(1), &cache);
        for (p, s) in plain.iter().zip(&again) {
            assert_eq!(p.report.to_json(), s.report.to_json());
            assert_eq!(s.stats.reused, s.stats.total, "{}", s.program);
            assert_eq!(s.stats.checked, 0, "{}", s.program);
        }
        let stats = cache.lock().unwrap().stats();
        assert!(stats.obligation_stores > 0);
        assert!(stats.obligation_hits > 0);
        assert_eq!(stats.remote_hits, 0, "no remote tier chained");
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let programs = sample_programs();
        let results = verify_batch(&programs, &BatchConfig::with_threads(64));
        assert_eq!(results.len(), programs.len());
        assert!(results[0].report.verified());
        assert!(!results[1].report.verified());
    }
}
