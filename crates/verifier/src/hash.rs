//! Stable structural hashing of verifier inputs.
//!
//! Verification is a pure function of the lowered [`AnnotatedProgram`]
//! (including its [`ResourceSpec`]s) and the [`VerifierConfig`], which
//! makes verdicts **content-addressable**: two inputs with the same
//! structural hash have byte-identical reports. This module computes that
//! address — a 128-bit FNV-1a hash over a canonical byte encoding of the
//! whole input tree — for the result cache ([`crate::cache`]) and the
//! `commcsl-server` verification daemon.
//!
//! Stability contract:
//!
//! * The hash is **deterministic across processes, platforms, and runs**
//!   (no pointer values, no `std::hash::Hasher` randomization, no
//!   iteration-order dependence: every container in the input tree is
//!   ordered).
//! * Every node is encoded as a tag (a stable name, *not* a Rust
//!   discriminant index) followed by its children, and variable-length
//!   sequences are length-prefixed, so distinct trees cannot collide by
//!   concatenation ambiguity.
//! * [`HASH_FORMAT_VERSION`] is folded into every hash. Bump it whenever
//!   the encoding *or the meaning of a verdict* changes (new obligation
//!   kinds, solver semantics changes, …); a bump invalidates every
//!   previously cached verdict, which is always safe — a stale verdict
//!   never is.

use std::fmt;
use std::str::FromStr;

use commcsl_logic::spec::{ActionDef, ActionKind, ResourceSpec};
use commcsl_pure::{Func, Sort, Symbol, Term, Value};

use crate::program::{AnnotatedProgram, VStmt};
use crate::report::VerifierConfig;

/// Version of the hash encoding *and* of verdict semantics. Bumping this
/// invalidates all cached verdicts (they key on the hash).
///
/// v2: reports grew structured diagnostics (stable codes, source spans,
/// per-execution counterexamples), the solver backend became pluggable,
/// and the backend/counterexample knobs joined the hashed configuration —
/// any v1 verdict would replay without those fields.
///
/// v3: the cache grew an **obligation tier**
/// ([`ObligationKey`](crate::obligation::ObligationKey)-addressed
/// per-obligation statuses for workspace re-verification), report JSON
/// gained a leading `schema_version` field, and this version seeds the
/// obligation-key hasher too — v2 verdicts would replay the old report
/// shape.
///
/// v4: the static pre-pass joined the discharge pipeline — obligations
/// whose goal normalizes to `true` skip the solver — and its knob
/// ([`static_prepass`](crate::report::VerifierConfig::static_prepass))
/// joined the hashed configuration. Verdicts are byte-identical across
/// the knob, but v3 verdicts were produced by a binary that did not hash
/// it, so they must not replay against one that does.
///
/// v5: reports grew editor-facing payloads — delta-debugged *minimized*
/// counterexamples on failures and *proof cores* (the facts each proved
/// obligation needed) with their aggregated unneeded-annotation hints —
/// and both knobs
/// ([`minimize_counterexamples`](crate::report::VerifierConfig::minimize_counterexamples),
/// [`proof_cores`](crate::report::VerifierConfig::proof_cores)) joined
/// the hashed configuration. With both knobs off the report bytes are
/// unchanged from v4, but a v4 verdict must not answer for a
/// configuration that can carry the new fields.
pub const HASH_FORMAT_VERSION: u32 = 5;

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit content hash of a verification input.
///
/// Displayed (and parsed) as 32 lowercase hex digits; used as the cache
/// key in memory, the file name on disk, and the `key` field of the
/// daemon protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProgramHash(pub u128);

impl fmt::Display for ProgramHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for ProgramHash {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 {
            return Err(format!("program hash must be 32 hex digits, got {}", s.len()));
        }
        u128::from_str_radix(s, 16)
            .map(ProgramHash)
            .map_err(|e| format!("bad program hash: {e}"))
    }
}

/// An incremental FNV-1a (128-bit) hasher over a canonical byte stream.
///
/// Unlike `std::hash::Hasher` implementations, the result is specified:
/// the same byte feed produces the same value on every platform and in
/// every process.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl StableHasher {
    /// A fresh hasher, already seeded with [`HASH_FORMAT_VERSION`].
    pub fn new() -> Self {
        let mut h = StableHasher { state: FNV128_OFFSET };
        h.write_u32(HASH_FORMAT_VERSION);
        h
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, n: u32) {
        self.write(&n.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    /// Feeds an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, n: i64) {
        self.write(&n.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64` so 32- and 64-bit platforms agree.
    pub fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    /// Feeds a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Feeds a node tag (a short stable name such as `"term.app"`).
    /// Tags are deliberately strings, not discriminant indices, so
    /// reordering an enum in source never silently changes hashes.
    pub fn tag(&mut self, t: &str) {
        self.write_str(t);
    }

    /// Finalizes the hash.
    pub fn finish(&self) -> ProgramHash {
        ProgramHash(self.state)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// Types with a canonical, cross-process-stable hash encoding.
pub trait StableHash {
    /// Feeds `self`'s canonical encoding into the hasher.
    fn stable_hash(&self, h: &mut StableHasher);
}

fn hash_slice<T: StableHash>(items: &[T], h: &mut StableHasher) {
    h.write_usize(items.len());
    for item in items {
        item.stable_hash(h);
    }
}

impl StableHash for Symbol {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self.as_str());
    }
}

impl StableHash for Sort {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Sort::Unknown => h.tag("sort.unknown"),
            Sort::Unit => h.tag("sort.unit"),
            Sort::Int => h.tag("sort.int"),
            Sort::Bool => h.tag("sort.bool"),
            Sort::Str => h.tag("sort.str"),
            Sort::Pair(a, b) => {
                h.tag("sort.pair");
                a.stable_hash(h);
                b.stable_hash(h);
            }
            Sort::Either(a, b) => {
                h.tag("sort.either");
                a.stable_hash(h);
                b.stable_hash(h);
            }
            Sort::Seq(e) => {
                h.tag("sort.seq");
                e.stable_hash(h);
            }
            Sort::Set(e) => {
                h.tag("sort.set");
                e.stable_hash(h);
            }
            Sort::Multiset(e) => {
                h.tag("sort.multiset");
                e.stable_hash(h);
            }
            Sort::Map(k, v) => {
                h.tag("sort.map");
                k.stable_hash(h);
                v.stable_hash(h);
            }
        }
    }
}

impl StableHash for Value {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Value::Unit => h.tag("val.unit"),
            Value::Int(n) => {
                h.tag("val.int");
                h.write_i64(*n);
            }
            Value::Bool(b) => {
                h.tag("val.bool");
                h.write(&[u8::from(*b)]);
            }
            Value::Str(s) => {
                h.tag("val.str");
                s.stable_hash(h);
            }
            Value::Pair(a, b) => {
                h.tag("val.pair");
                a.stable_hash(h);
                b.stable_hash(h);
            }
            Value::Left(v) => {
                h.tag("val.left");
                v.stable_hash(h);
            }
            Value::Right(v) => {
                h.tag("val.right");
                v.stable_hash(h);
            }
            Value::Seq(xs) => {
                h.tag("val.seq");
                hash_slice(xs, h);
            }
            // Ordered containers iterate deterministically (BTree-backed).
            Value::Set(s) => {
                h.tag("val.set");
                h.write_usize(s.len());
                for v in s {
                    v.stable_hash(h);
                }
            }
            Value::Multiset(m) => {
                h.tag("val.multiset");
                h.write_usize(m.iter().count());
                for (v, n) in m.iter() {
                    v.stable_hash(h);
                    h.write_usize(n);
                }
            }
            Value::Map(m) => {
                h.tag("val.map");
                h.write_usize(m.len());
                for (k, v) in m {
                    k.stable_hash(h);
                    v.stable_hash(h);
                }
            }
        }
    }
}

impl StableHash for Func {
    fn stable_hash(&self, h: &mut StableHasher) {
        let name = match self {
            Func::Add => "add",
            Func::Sub => "sub",
            Func::Mul => "mul",
            Func::Div => "div",
            Func::Mod => "mod",
            Func::Neg => "neg",
            Func::Max => "max",
            Func::Min => "min",
            Func::Eq => "eq",
            Func::Lt => "lt",
            Func::Le => "le",
            Func::Not => "not",
            Func::And => "and",
            Func::Or => "or",
            Func::Implies => "implies",
            Func::Iff => "iff",
            Func::Ite => "ite",
            Func::MkPair => "mkpair",
            Func::Fst => "fst",
            Func::Snd => "snd",
            Func::MkLeft => "mkleft",
            Func::MkRight => "mkright",
            Func::IsLeft => "isleft",
            Func::FromLeft => "fromleft",
            Func::FromRight => "fromright",
            Func::SeqAppend => "seqappend",
            Func::SeqConcat => "seqconcat",
            Func::SeqLen => "seqlen",
            Func::SeqIndex => "seqindex",
            Func::SeqIndexOr => "seqindexor",
            Func::SeqTail => "seqtail",
            Func::SeqHeadOr => "seqheador",
            Func::SeqSum => "seqsum",
            Func::SeqMean => "seqmean",
            Func::SeqSorted => "seqsorted",
            Func::SeqToMultiset => "seqtomultiset",
            Func::SeqToSet => "seqtoset",
            Func::SetAdd => "setadd",
            Func::SetUnion => "setunion",
            Func::SetCard => "setcard",
            Func::SetContains => "setcontains",
            Func::SetToSeq => "settoseq",
            Func::MsAdd => "msadd",
            Func::MsUnion => "msunion",
            Func::MsCard => "mscard",
            Func::MsContains => "mscontains",
            Func::MsToSortedSeq => "mstosortedseq",
            Func::MapPut => "mapput",
            Func::MapGetOr => "mapgetor",
            Func::MapDom => "mapdom",
            Func::MapContains => "mapcontains",
            Func::MapLen => "maplen",
            Func::Uninterpreted(sym) => {
                h.tag("func.uninterpreted");
                sym.stable_hash(h);
                return;
            }
        };
        h.tag("func");
        h.write_str(name);
    }
}

impl StableHash for Term {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Term::Var(x) => {
                h.tag("term.var");
                x.stable_hash(h);
            }
            Term::Lit(v) => {
                h.tag("term.lit");
                v.stable_hash(h);
            }
            Term::App(f, args) => {
                h.tag("term.app");
                f.stable_hash(h);
                hash_slice(args, h);
            }
        }
    }
}

impl StableHash for ActionKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.tag(match self {
            ActionKind::Shared => "action.shared",
            ActionKind::Unique => "action.unique",
        });
    }
}

impl StableHash for ActionDef {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.tag("actiondef");
        self.name.stable_hash(h);
        self.kind.stable_hash(h);
        self.arg_sort.stable_hash(h);
        self.body.stable_hash(h);
        self.pre.stable_hash(h);
    }
}

impl StableHash for ResourceSpec {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.tag("resourcespec");
        self.name.stable_hash(h);
        self.value_sort.stable_hash(h);
        self.alpha.stable_hash(h);
        hash_slice(&self.actions, h);
    }
}

impl StableHash for VStmt {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            VStmt::Input { var, sort, low } => {
                h.tag("stmt.input");
                var.stable_hash(h);
                sort.stable_hash(h);
                h.write(&[u8::from(*low)]);
            }
            VStmt::Assign(var, e) => {
                h.tag("stmt.assign");
                var.stable_hash(h);
                e.stable_hash(h);
            }
            VStmt::If { cond, then_b, else_b } => {
                h.tag("stmt.if");
                cond.stable_hash(h);
                hash_slice(then_b, h);
                hash_slice(else_b, h);
            }
            VStmt::For { var, from, to, body } => {
                h.tag("stmt.for");
                var.stable_hash(h);
                from.stable_hash(h);
                to.stable_hash(h);
                hash_slice(body, h);
            }
            VStmt::Share { resource, init } => {
                h.tag("stmt.share");
                h.write_usize(*resource);
                init.stable_hash(h);
            }
            VStmt::Par { workers } => {
                h.tag("stmt.par");
                h.write_usize(workers.len());
                for w in workers {
                    hash_slice(w, h);
                }
            }
            VStmt::Atomic { resource, action, arg } => {
                h.tag("stmt.atomic");
                h.write_usize(*resource);
                action.stable_hash(h);
                arg.stable_hash(h);
            }
            VStmt::AtomicBatch { resource, action, arg, count } => {
                h.tag("stmt.atomicbatch");
                h.write_usize(*resource);
                action.stable_hash(h);
                arg.stable_hash(h);
                count.stable_hash(h);
            }
            VStmt::ConsumeBind { resource, action, var, index } => {
                h.tag("stmt.consumebind");
                h.write_usize(*resource);
                action.stable_hash(h);
                var.stable_hash(h);
                index.stable_hash(h);
            }
            VStmt::AtomicDeferred { resource, action, arg } => {
                h.tag("stmt.atomicdeferred");
                h.write_usize(*resource);
                action.stable_hash(h);
                arg.stable_hash(h);
            }
            VStmt::Unshare { resource, into } => {
                h.tag("stmt.unshare");
                h.write_usize(*resource);
                into.stable_hash(h);
            }
            VStmt::AssertLow(e) => {
                h.tag("stmt.assertlow");
                e.stable_hash(h);
            }
            VStmt::Output(e) => {
                h.tag("stmt.output");
                e.stable_hash(h);
            }
        }
    }
}

impl StableHash for AnnotatedProgram {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.tag("program");
        h.write_str(&self.name);
        hash_slice(&self.resources, h);
        hash_slice(&self.body, h);
        // Source spans are report payload (failed obligations embed them),
        // so they address the verdict even though program *equality*
        // ignores them: a reformatted source must not replay a cached
        // report carrying the old positions.
        h.tag("spans");
        h.write_usize(self.spans.len());
        for (path, span) in &self.spans {
            h.write_usize(path.len());
            for component in path {
                h.write_u32(*component);
            }
            h.write_u32(span.line);
            h.write_u32(span.col);
        }
    }
}

impl StableHash for VerifierConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.tag("config");
        // Every budget knob that can change a verdict (a bigger budget can
        // flip Failed("unknown") to Proved) is part of the key.
        for solver in [&self.solver, &self.validity.solver] {
            h.write_usize(solver.max_depth);
            h.write_usize(solver.max_branches);
            h.write_usize(solver.normalize_rounds);
            h.write_usize(solver.lia.max_constraints);
        }
        for falsify in [&self.falsify, &self.validity.falsify] {
            h.write_u64(falsify.seed);
            h.write_usize(falsify.random_tries);
            h.write_i64(falsify.enum_int_bound);
            h.write_usize(falsify.enum_max_len);
            h.write_usize(falsify.enum_budget);
            h.write_i64(falsify.gen.int_bound);
            h.write_usize(falsify.gen.max_len);
            h.write_usize(falsify.gen.max_depth);
        }
        // Backend choices and diagnostic knobs: backends are pinned
        // verdict-identical on the corpus, but the cache must never bet on
        // that — a backend (or counterexample-search) change is always a
        // different address, a miss, never a stale verdict.
        h.tag("backend");
        h.write_str(self.backend.name());
        h.tag("validity-backend");
        h.write_str(self.validity.backend.name());
        h.tag("counterexamples");
        h.write(&[u8::from(self.counterexamples)]);
        h.tag("static-prepass");
        h.write(&[u8::from(self.static_prepass)]);
        h.tag("minimize-counterexamples");
        h.write(&[u8::from(self.minimize_counterexamples)]);
        h.tag("proof-cores");
        h.write(&[u8::from(self.proof_cores)]);
    }
}

/// The content address of one verification job: a stable structural hash
/// of the lowered program (with its resource specifications) and the
/// verifier configuration, under [`HASH_FORMAT_VERSION`].
pub fn program_hash(program: &AnnotatedProgram, config: &VerifierConfig) -> ProgramHash {
    let mut h = StableHasher::new();
    program.stable_hash(&mut h);
    config.stable_hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use commcsl_logic::spec::ResourceSpec;
    use commcsl_pure::{Sort, Term};

    use super::*;

    fn sample() -> AnnotatedProgram {
        AnnotatedProgram::new("sample")
            .with_resource(ResourceSpec::counter_add())
            .with_body([
                VStmt::input("a", Sort::Int, true),
                VStmt::Share { resource: 0, init: Term::int(0) },
                VStmt::Par {
                    workers: vec![
                        vec![VStmt::atomic(0, "Add", Term::var("a"))],
                        vec![VStmt::atomic(0, "Add", Term::int(2))],
                    ],
                },
                VStmt::Unshare { resource: 0, into: "c".into() },
                VStmt::Output(Term::var("c")),
            ])
    }

    #[test]
    fn hash_is_deterministic_and_hex_roundtrips() {
        let config = VerifierConfig::default();
        let h1 = program_hash(&sample(), &config);
        let h2 = program_hash(&sample(), &config);
        assert_eq!(h1, h2);
        let hex = h1.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(hex.parse::<ProgramHash>().unwrap(), h1);
    }

    #[test]
    fn hash_separates_programs_and_configs() {
        let config = VerifierConfig::default();
        let base = program_hash(&sample(), &config);

        // Change the program body.
        let mut renamed = sample();
        renamed.name = "other".into();
        assert_ne!(program_hash(&renamed, &config), base);

        let mut tweaked = sample();
        tweaked.body.pop();
        assert_ne!(program_hash(&tweaked, &config), base);

        // Change a low-ness flag only.
        let mut high = sample();
        high.body[0] = VStmt::input("a", Sort::Int, false);
        assert_ne!(program_hash(&high, &config), base);

        // Change a solver budget only.
        let mut deep = VerifierConfig::default();
        deep.solver.max_depth += 1;
        assert_ne!(program_hash(&sample(), &deep), base);
    }

    #[test]
    fn backend_and_diagnostic_knobs_address_the_verdict() {
        use commcsl_smt::BackendKind;

        let config = VerifierConfig::default();
        let base = program_hash(&sample(), &config);

        let fresh = VerifierConfig {
            backend: BackendKind::Fresh,
            ..Default::default()
        };
        assert_ne!(program_hash(&sample(), &fresh), base);

        let mut vfresh = VerifierConfig::default();
        vfresh.validity.backend = BackendKind::Fresh;
        assert_ne!(program_hash(&sample(), &vfresh), base);

        let nocex = VerifierConfig {
            counterexamples: false,
            ..Default::default()
        };
        assert_ne!(program_hash(&sample(), &nocex), base);

        // Spans address the verdict even though program equality ignores
        // them (reports embed the positions).
        let spanned = sample().with_span(vec![0], crate::diag::SourceSpan::new(1, 1));
        assert_eq!(spanned, sample(), "equality ignores spans");
        assert_ne!(program_hash(&spanned, &config), base, "hash does not");
    }

    #[test]
    fn length_prefixing_prevents_concatenation_ambiguity() {
        // ["ab"] vs ["a", "b"] as successive worker bodies.
        let p1 = AnnotatedProgram::new("p").with_body([VStmt::Par {
            workers: vec![
                vec![VStmt::assign("ab", Term::int(1))],
                vec![],
            ],
        }]);
        let p2 = AnnotatedProgram::new("p").with_body([VStmt::Par {
            workers: vec![
                vec![VStmt::assign("a", Term::int(1))],
                vec![VStmt::assign("b", Term::int(1))],
            ],
        }]);
        let config = VerifierConfig::default();
        assert_ne!(program_hash(&p1, &config), program_hash(&p2, &config));
    }

    #[test]
    fn fixture_like_values_hash_without_panics() {
        // Exercise every Value constructor through a literal-heavy term.
        use commcsl_pure::Value;
        let v = Value::map([
            (
                Value::pair(Value::Int(1), Value::str("k")),
                Value::seq([Value::left(Value::Unit), Value::right(Value::Bool(true))]),
            ),
            (
                Value::set([Value::Int(3)]),
                Value::multiset([Value::Int(1), Value::Int(1)]),
            ),
        ]);
        let p = AnnotatedProgram::new("vals").with_body([VStmt::Output(Term::Lit(v))]);
        let h = program_hash(&p, &VerifierConfig::default());
        assert_eq!(h, program_hash(&p, &VerifierConfig::default()));
    }
}
