//! The evaluation suite of the CommCSL paper (Table 1).
//!
//! Every row of Table 1 is reproduced as a [`Fixture`]: an annotated
//! program for the verifier (`commcsl-verifier`), the Table 1 metadata
//! (data structure, abstraction), and — where the example has an
//! interesting dynamic behaviour — an executable `commcsl-lang` program
//! with input assignments for the *empirical* non-interference harness.
//!
//! [`all`] returns the 18 fixtures in the paper's order; [`rejected`]
//! collects the known-insecure variants (Fig. 1's assignments, leaking map
//! values, the literal-mean abstraction) that the verifier must reject and
//! for which the harness exhibits actual leaks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rejected;
pub mod rows;

use commcsl_lang::ast::Cmd;
use commcsl_pure::{Symbol, Value};
use commcsl_verifier::AnnotatedProgram;

/// Inputs for the empirical non-interference check of a fixture.
#[derive(Debug, Clone)]
pub struct NiSetup {
    /// The executable program.
    pub program: Cmd,
    /// Low inputs (identical in all runs).
    pub low_inputs: Vec<(Symbol, Value)>,
    /// High input assignments (pairwise compared).
    pub high_inputs: Vec<Vec<(Symbol, Value)>>,
    /// Low output variables (the output log is always observed).
    pub low_outputs: Vec<Symbol>,
}

/// One evaluation example (a row of Table 1).
#[derive(Debug, Clone)]
pub struct Fixture {
    /// Row name as in Table 1.
    pub name: &'static str,
    /// "Data structure" column.
    pub data_structure: &'static str,
    /// "Abstraction" column.
    pub abstraction: &'static str,
    /// The annotated program verified by HyperViper's analogue.
    pub program: AnnotatedProgram,
    /// Optional executable setup for the empirical harness.
    pub ni: Option<NiSetup>,
}

/// All 18 fixtures, in Table 1 order.
pub fn all() -> Vec<Fixture> {
    vec![
        rows::count_vaccinated(),
        rows::figure2(),
        rows::count_sick_days(),
        rows::figure1(),
        rows::mean_salary(),
        rows::email_metadata(),
        rows::patient_statistic(),
        rows::debt_sum(),
        rows::sick_employee_names(),
        rows::website_visitor_ips(),
        rows::figure3(),
        rows::sales_by_region(),
        rows::salary_histogram(),
        rows::count_purchases(),
        rows::most_valuable_purchase(),
        rows::producer_consumer_1x1(),
        rows::pipeline(),
        rows::producers_consumers_2x2(),
    ]
}

/// Looks up a fixture by Table 1 row name (`"Figure 3"`) or by annotated
/// program name (`"figure3-map-keyset"`) — the latter is what frontend
/// tooling sees after parsing a `.csl` file. Program names are unique
/// across the suite (pinned by a test here).
pub fn find(name: &str) -> Option<Fixture> {
    all()
        .into_iter()
        .find(|f| f.name == name || f.program.name == name)
}

/// For a name [`find`] does not know, the closest known name (row or
/// program name, case-insensitively) — the "did you mean …?" candidate
/// for CLI error paths. `None` when nothing is plausibly close (edit
/// distance more than half the query length).
pub fn suggest(name: &str) -> Option<String> {
    let query = name.to_lowercase();
    let mut best: Option<(usize, String)> = None;
    for f in all() {
        for candidate in [f.name.to_owned(), f.program.name.clone()] {
            let d = edit_distance(&query, &candidate.to_lowercase());
            if best.as_ref().is_none_or(|(b, _)| d < *b) {
                best = Some((d, candidate));
            }
        }
    }
    let (distance, candidate) = best?;
    (distance <= name.chars().count().div_ceil(2)).then_some(candidate)
}

/// Levenshtein distance over characters (two-row dynamic program).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut row = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            row[j + 1] = subst.min(prev[j + 1] + 1).min(row[j] + 1);
        }
        std::mem::swap(&mut prev, &mut row);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use super::*;
    use commcsl_lang::nicheck::{check_non_interference, NiConfig};
    use commcsl_verifier::verify;

    #[test]
    fn all_eighteen_rows_present_in_order() {
        let names: Vec<&str> = all().iter().map(|f| f.name).collect();
        assert_eq!(
            names,
            vec![
                "Count-Vaccinated",
                "Figure 2",
                "Count-Sick-Days",
                "Figure 1",
                "Mean-Salary",
                "Email-Metadata",
                "Patient-Statistic",
                "Debt-Sum",
                "Sick-Employee-Names",
                "Website-Visitor-IPs",
                "Figure 3",
                "Sales-By-Region",
                "Salary-Histogram",
                "Count-Purchases",
                "Most-Valuable-Purchase",
                "1-Producer-1-Consumer",
                "Pipeline",
                "2-Producers-2-Consumers",
            ]
        );
    }

    #[test]
    fn program_names_are_unique_and_findable() {
        let fixtures = all();
        let names: BTreeSet<&str> =
            fixtures.iter().map(|f| f.program.name.as_str()).collect();
        assert_eq!(names.len(), fixtures.len(), "program names must be unique");
        for f in &fixtures {
            assert_eq!(find(f.name).unwrap().name, f.name);
            assert_eq!(find(&f.program.name).unwrap().name, f.name);
        }
        assert!(find("no-such-example").is_none());
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("figure3", "figure2"), 1);
    }

    #[test]
    fn suggestions_catch_typos_but_not_noise() {
        // Typos in row names and program names both resolve.
        assert_eq!(suggest("Figure 33").as_deref(), Some("Figure 3"));
        assert_eq!(suggest("figure 2").as_deref(), Some("Figure 2"));
        assert_eq!(
            suggest("mean-salery").as_deref(),
            Some("Mean-Salary")
        );
        assert_eq!(
            suggest("pipelin").as_deref(),
            Some("Pipeline")
        );
        // Exact names suggest themselves (callers only consult `suggest`
        // after `find` failed, so this is harmless).
        assert_eq!(suggest("Pipeline").as_deref(), Some("Pipeline"));
        // Garbage is not "corrected".
        assert_eq!(suggest("zzzzzzzzzzzzzzzzzzzzzz"), None);
    }

    #[test]
    fn every_fixture_verifies() {
        for f in all() {
            let report = verify(&f.program, &Default::default());
            assert!(report.verified(), "fixture {}:\n{report}", f.name);
        }
    }

    #[test]
    fn empirical_ni_holds_for_fixtures_with_executables() {
        let config = NiConfig {
            random_seeds: 3,
            fuel: 200_000,
        };
        for f in all() {
            let Some(ni) = &f.ni else { continue };
            let report = check_non_interference(
                &ni.program,
                &ni.low_inputs,
                &ni.high_inputs,
                &ni.low_outputs,
                &config,
            );
            assert_eq!(report.aborted, 0, "{}: aborted executions", f.name);
            assert!(report.executions > 0, "{}: nothing ran", f.name);
            assert!(
                report.holds(),
                "{}: verifier accepted but harness observed a leak: {:?}",
                f.name,
                report.violation
            );
        }
    }

    #[test]
    fn rejected_variants_fail_verification() {
        for (name, program) in rejected::all_programs() {
            let report = verify(&program, &Default::default());
            assert!(!report.verified(), "{name} must be rejected");
        }
    }

    #[test]
    fn figure1_rejected_variant_actually_leaks() {
        let (prog, low, high, outs) = rejected::figure1_assignments_executable();
        let report = check_non_interference(
            &prog,
            &low,
            &high,
            &outs,
            &NiConfig {
                random_seeds: 4,
                fuel: 100_000,
            },
        );
        assert!(
            !report.holds(),
            "the Fig. 1 internal timing channel must be observable"
        );
    }
}
