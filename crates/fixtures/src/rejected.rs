//! Known-insecure variants that the verifier must reject.
//!
//! These are the negative controls of the evaluation: Fig. 1's racy
//! assignments *with the value leaked*, the Fig. 3 map when the client
//! leaks a value instead of the key set, and the literal-mean abstraction
//! (whose invalidity motivates the (sum, length) pair).

use commcsl_lang::ast::Cmd;
use commcsl_lang::parser::parse_program;
use commcsl_logic::spec::{ActionDef, ResourceSpec};
use commcsl_pure::{Func, Sort, Symbol, Term, Value};
use commcsl_verifier::program::{AnnotatedProgram, VStmt};

/// Fig. 1 with the *identity* abstraction (the value of `s` is leaked):
/// the assignments do not commute and the spec is invalid.
pub fn figure1_assignments() -> AnnotatedProgram {
    let set = ActionDef::shared(
        "Set",
        Sort::Int,
        Term::var(ActionDef::ARG_VAR),
        Term::eq(
            Term::var(ActionDef::ARG1_VAR),
            Term::var(ActionDef::ARG2_VAR),
        ),
    );
    let spec = ResourceSpec::new(
        "fig1-identity",
        Sort::Int,
        Term::var(ResourceSpec::VALUE_VAR),
        [set],
    );
    AnnotatedProgram::new("figure1-leaky")
        .with_resource(spec)
        .with_body([
            VStmt::Share {
                resource: 0,
                init: Term::int(0),
            },
            VStmt::Par {
                workers: vec![
                    vec![VStmt::atomic(0, "Set", Term::int(3))],
                    vec![VStmt::atomic(0, "Set", Term::int(4))],
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: "s".into(),
            },
            VStmt::Output(Term::var("s")),
        ])
}

/// An executable insecure program for the empirical harness: the
/// command, its low inputs, the high input assignments to compare, and
/// the observed low output variables.
pub type ExecutableCase = (
    Cmd,
    Vec<(Symbol, Value)>,
    Vec<Vec<(Symbol, Value)>>,
    Vec<Symbol>,
);

/// The executable Fig. 1 (assignments, value printed): exhibits the
/// internal timing channel under the scheduler battery.
pub fn figure1_assignments_executable() -> ExecutableCase {
    let prog = parse_program(
        "par {
             t1 := 0; while (t1 < 20) { t1 := t1 + 1 };
             atomic { s := 3 }
         } {
             t2 := 0; while (t2 < h) { t2 := t2 + 1 };
             atomic { s := 4 }
         };
         output(s)",
    )
    .expect("figure1 leak executable parses");
    (
        prog,
        vec![],
        vec![
            vec![(Symbol::new("h"), Value::Int(0))],
            vec![(Symbol::new("h"), Value::Int(200))],
        ],
        vec![],
    )
}

/// Fig. 3's map where the client outputs a *value* (high) instead of the
/// key set: the key-set abstraction does not justify the output.
pub fn figure3_value_leak() -> AnnotatedProgram {
    AnnotatedProgram::new("figure3-value-leak")
        .with_resource(ResourceSpec::keyset_map())
        .with_body([
            VStmt::Share {
                resource: 0,
                init: Term::Lit(Value::map_empty()),
            },
            VStmt::Par {
                workers: vec![
                    vec![
                        VStmt::input("r1", Sort::Int, false),
                        VStmt::atomic(0, "Put", Term::pair(Term::int(0), Term::var("r1"))),
                    ],
                    vec![
                        VStmt::input("r2", Sort::Int, false),
                        VStmt::atomic(0, "Put", Term::pair(Term::int(1), Term::var("r2"))),
                    ],
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: "m".into(),
            },
            VStmt::Output(Term::app(
                Func::MapGetOr,
                [Term::var("m"), Term::int(0), Term::int(0)],
            )),
        ])
}

/// The literal-mean abstraction: `α(l) = mean(l)` is not preserved by
/// appends (means can agree while sums and lengths differ), so validity
/// fails with a concrete counterexample.
pub fn literal_mean() -> AnnotatedProgram {
    AnnotatedProgram::new("literal-mean")
        .with_resource(ResourceSpec::list_mean_literal())
        .with_body([
            VStmt::input("x", Sort::Int, true),
            VStmt::Share {
                resource: 0,
                init: Term::Lit(Value::seq_empty()),
            },
            VStmt::Par {
                workers: vec![
                    vec![VStmt::atomic(0, "Append", Term::var("x"))],
                    vec![VStmt::atomic(0, "Append", Term::var("x"))],
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: "l".into(),
            },
            VStmt::Output(Term::app(Func::SeqMean, [Term::var("l")])),
        ])
}

/// A unique action used from two workers (guard discipline violation).
pub fn unique_guard_violation() -> AnnotatedProgram {
    AnnotatedProgram::new("unique-guard-violation")
        .with_resource(ResourceSpec::disjoint_put_map(2))
        .with_body([
            VStmt::Share {
                resource: 0,
                init: Term::Lit(Value::map_empty()),
            },
            VStmt::Par {
                workers: vec![
                    vec![VStmt::atomic(
                        0,
                        "Put0",
                        Term::pair(Term::int(0), Term::int(1)),
                    )],
                    vec![VStmt::atomic(
                        0,
                        "Put0",
                        Term::pair(Term::int(2), Term::int(2)),
                    )],
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: "m".into(),
            },
            VStmt::Output(Term::var("m")),
        ])
}

/// A high input flows to the output from inside branches guarded by
/// *unrelated* low conditions. The leak is independent of `a` and `b`,
/// so this is the canonical workload for counterexample minimization:
/// the unminimized witness binds all three inputs (the guard facts are
/// in the obligation's cone), the minimized one binds only `h`.
pub fn unused_low_leak() -> AnnotatedProgram {
    AnnotatedProgram::new("unused-low-leak").with_body([
        VStmt::input("h", Sort::Int, false),
        VStmt::input("a", Sort::Int, true),
        VStmt::input("b", Sort::Int, true),
        VStmt::If {
            cond: Term::le(Term::var("a"), Term::int(3)),
            then_b: vec![VStmt::If {
                cond: Term::le(Term::var("b"), Term::int(5)),
                then_b: vec![VStmt::Output(Term::var("h"))],
                else_b: vec![],
            }],
            else_b: vec![],
        },
    ])
}

/// All rejected annotated programs, with names for reporting.
pub fn all_programs() -> Vec<(&'static str, AnnotatedProgram)> {
    vec![
        ("figure1-assignments", figure1_assignments()),
        ("figure3-value-leak", figure3_value_leak()),
        ("literal-mean", literal_mean()),
        ("unique-guard-violation", unique_guard_violation()),
        ("unused-low-leak", unused_low_leak()),
    ]
}
