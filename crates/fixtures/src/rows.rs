//! The 18 rows of Table 1, as annotated programs plus (where dynamic
//! behaviour is interesting) executable non-interference setups.
//!
//! All executable programs include *secret-dependent spin loops* before
//! their shared-data operations: this is the internal-timing adversary of
//! the paper's Fig. 1 — the schedule at the shared data structure depends
//! on high data, and only commutativity (modulo abstraction) keeps the low
//! outputs stable.

use commcsl_lang::parser::parse_program;
use commcsl_logic::spec::ResourceSpec;
use commcsl_pure::{Func, Sort, Symbol, Term, Value};
use commcsl_verifier::program::{AnnotatedProgram, VStmt};

use crate::{Fixture, NiSetup};

fn sym(s: &str) -> Symbol {
    Symbol::new(s)
}

/// High-input pairs used by the executable setups: two assignments of `h`
/// that differ a lot (so timing-dependent schedules actually differ).
fn h_pair() -> Vec<Vec<(Symbol, Value)>> {
    vec![
        vec![(sym("h"), Value::Int(0))],
        vec![(sym("h"), Value::Int(40))],
    ]
}

/// A two-worker annotated program where each worker loops over half of a
/// low-sized input and performs `action` with the given argument
/// expression after reading the given per-iteration inputs.
#[allow(clippy::too_many_arguments)] // private fixture builder mirroring the paper's table columns
fn two_worker_loop(
    name: &str,
    spec: ResourceSpec,
    init: Term,
    iter_inputs: &[(&str, Sort, bool)],
    action: &str,
    arg: Term,
    into: &str,
    output: Term,
) -> AnnotatedProgram {
    let worker = |lo: Term, hi: Term| {
        let mut body: Vec<VStmt> = iter_inputs
            .iter()
            .map(|(v, s, low)| VStmt::input(*v, s.clone(), *low))
            .collect();
        body.push(VStmt::atomic(0, action, arg.clone()));
        vec![VStmt::for_range("i", lo, hi, body)]
    };
    let half = Term::app(Func::Div, [Term::var("n"), Term::int(2)]);
    AnnotatedProgram::new(name)
        .with_resource(spec)
        .with_body([
            VStmt::input("n", Sort::Int, true),
            VStmt::Share { resource: 0, init },
            VStmt::Par {
                workers: vec![
                    worker(Term::int(0), half.clone()),
                    worker(half, Term::var("n")),
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: into.into(),
            },
            VStmt::Output(output),
        ])
}

/// Row 1: Count-Vaccinated — workers count vaccinated household members;
/// the per-person vaccinated flag is low, the rest of the record is not.
pub fn count_vaccinated() -> Fixture {
    let worker = |lo: Term, hi: Term| {
        vec![VStmt::for_range(
            "i",
            lo,
            hi,
            [
                VStmt::input("vaccinated", Sort::Bool, true),
                VStmt::input("record", Sort::Int, false),
                VStmt::If {
                    cond: Term::var("vaccinated"),
                    then_b: vec![VStmt::atomic(0, "Add", Term::int(1))],
                    else_b: vec![],
                },
            ],
        )]
    };
    let half = Term::app(Func::Div, [Term::var("n"), Term::int(2)]);
    let program = AnnotatedProgram::new("count-vaccinated")
        .with_resource(ResourceSpec::counter_add())
        .with_body([
            VStmt::input("n", Sort::Int, true),
            VStmt::Share {
                resource: 0,
                init: Term::int(0),
            },
            VStmt::Par {
                workers: vec![
                    worker(Term::int(0), half.clone()),
                    worker(half, Term::var("n")),
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: "c".into(),
            },
            VStmt::Output(Term::var("c")),
        ]);
    Fixture {
        name: "Count-Vaccinated",
        data_structure: "Counter, increment",
        abstraction: "None",
        program,
        ni: None,
    }
}

/// Row 2: Figure 2 — the paper's `targetSize`: workers add low
/// per-household target counts to a shared counter; the look-up time
/// depends on high data (hash collisions), modeled by a spin loop.
pub fn figure2() -> Fixture {
    let program = two_worker_loop(
        "figure2-target-size",
        ResourceSpec::counter_add(),
        Term::int(0),
        &[("targets", Sort::Int, true), ("household", Sort::Int, false)],
        "Add",
        Term::var("targets"),
        "c",
        Term::var("c"),
    );
    let exec = parse_program(
        "par {
             t1 := 0; while (t1 < h) { t1 := t1 + 1 };
             atomic { c := c + 1 };
             atomic { c := c + 2 }
         } {
             atomic { c := c + 3 };
             atomic { c := c + 4 }
         };
         output(c)",
    )
    .expect("figure2 executable parses");
    Fixture {
        name: "Figure 2",
        data_structure: "Integer, add",
        abstraction: "None",
        program,
        ni: Some(NiSetup {
            program: exec,
            low_inputs: vec![],
            high_inputs: h_pair(),
            low_outputs: vec![],
        }),
    }
}

/// Row 3: Count-Sick-Days — like Fig. 2 with per-employee sick-day counts
/// (low), while processing time depends on the (high) illness records.
pub fn count_sick_days() -> Fixture {
    let program = two_worker_loop(
        "count-sick-days",
        ResourceSpec::counter_add(),
        Term::int(0),
        &[("days", Sort::Int, true), ("illness", Sort::Int, false)],
        "Add",
        Term::var("days"),
        "total",
        Term::var("total"),
    );
    Fixture {
        name: "Count-Sick-Days",
        data_structure: "Integer, add",
        abstraction: "None",
        program,
        ni: None,
    }
}

/// Row 4: Figure 1 — the motivating example, with the *constant*
/// abstraction: the racy assignments are fine because `s` is never leaked.
pub fn figure1() -> Fixture {
    let program = AnnotatedProgram::new("figure1-constant")
        .with_resource(ResourceSpec::opaque_int())
        .with_body([
            VStmt::input("h", Sort::Int, false),
            VStmt::Share {
                resource: 0,
                init: Term::int(0),
            },
            VStmt::Par {
                workers: vec![
                    vec![VStmt::atomic(0, "Set", Term::int(3))],
                    vec![VStmt::atomic(0, "Set", Term::int(4))],
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: "s".into(),
            },
            // s is NOT output; only a constant is.
            VStmt::Output(Term::int(0)),
        ]);
    let exec = parse_program(
        "par {
             t1 := 0; while (t1 < 20) { t1 := t1 + 1 };
             atomic { s := 3 }
         } {
             t2 := 0; while (t2 < h) { t2 := t2 + 1 };
             atomic { s := 4 }
         };
         output(0)",
    )
    .expect("figure1 executable parses");
    Fixture {
        name: "Figure 1",
        data_structure: "Integer, arbitrary",
        abstraction: "Constant",
        program,
        ni: Some(NiSetup {
            program: exec,
            low_inputs: vec![],
            high_inputs: h_pair(),
            low_outputs: vec![],
        }),
    }
}

/// Row 5: Mean-Salary — appends low salaries, leaks only the mean. The
/// abstraction is the (sum, length) pair, of which the mean is a function
/// (the literal mean is *invalid*; see `rejected::literal_mean`).
pub fn mean_salary() -> Fixture {
    let program = two_worker_loop(
        "mean-salary",
        ResourceSpec::list_mean(),
        Term::Lit(Value::seq_empty()),
        &[("salary", Sort::Int, true), ("name", Sort::Int, false)],
        "Append",
        Term::var("salary"),
        "l",
        Term::app(Func::SeqMean, [Term::var("l")]),
    );
    let exec = parse_program(
        "l := empty_seq;
         par {
             t1 := 0; while (t1 < h) { t1 := t1 + 1 };
             atomic { l := append(l, 10) }
         } {
             atomic { l := append(l, 20) }
         };
         output(mean(l))",
    )
    .expect("mean-salary executable parses");
    Fixture {
        name: "Mean-Salary",
        data_structure: "List, append",
        abstraction: "Mean",
        program,
        ni: Some(NiSetup {
            program: exec,
            low_inputs: vec![],
            high_inputs: h_pair(),
            low_outputs: vec![],
        }),
    }
}

/// Row 6: Email-Metadata — appends low metadata records whose *order* is
/// tainted by secret-dependent processing time; the multiset abstraction
/// allows leaking the sorted list.
pub fn email_metadata() -> Fixture {
    let program = two_worker_loop(
        "email-metadata",
        ResourceSpec::list_multiset(),
        Term::Lit(Value::seq_empty()),
        &[("meta", Sort::Int, true), ("body", Sort::Int, false)],
        "Append",
        Term::var("meta"),
        "l",
        Term::app(Func::SeqSorted, [Term::var("l")]),
    );
    let exec = parse_program(
        "l := empty_seq;
         par {
             t1 := 0; while (t1 < h) { t1 := t1 + 1 };
             atomic { l := append(l, 10) }
         } {
             atomic { l := append(l, 20) }
         };
         output(sorted(l))",
    )
    .expect("email-metadata executable parses");
    Fixture {
        name: "Email-Metadata",
        data_structure: "List, append",
        abstraction: "Multiset",
        program,
        ni: Some(NiSetup {
            program: exec,
            low_inputs: vec![],
            high_inputs: h_pair(),
            low_outputs: vec![],
        }),
    }
}

/// Row 7: Patient-Statistic — appends whole (high) patient records; only
/// the *number* of records is leaked.
pub fn patient_statistic() -> Fixture {
    let program = two_worker_loop(
        "patient-statistic",
        ResourceSpec::list_length(),
        Term::Lit(Value::seq_empty()),
        &[("patient", Sort::Int, false)],
        "Append",
        Term::var("patient"),
        "l",
        Term::app(Func::SeqLen, [Term::var("l")]),
    );
    let exec = parse_program(
        "l := empty_seq;
         par {
             t1 := 0; while (t1 < h) { t1 := t1 + 1 };
             atomic { l := append(l, h) }
         } {
             atomic { l := append(l, 7) }
         };
         output(len(l))",
    )
    .expect("patient-statistic executable parses");
    Fixture {
        name: "Patient-Statistic",
        data_structure: "List, append",
        abstraction: "Length",
        program,
        ni: Some(NiSetup {
            program: exec,
            low_inputs: vec![],
            high_inputs: h_pair(),
            low_outputs: vec![],
        }),
    }
}

/// Row 8: Debt-Sum — appends individual (low) debt amounts; leaks only
/// their sum.
pub fn debt_sum() -> Fixture {
    let program = two_worker_loop(
        "debt-sum",
        ResourceSpec::list_sum(),
        Term::Lit(Value::seq_empty()),
        &[("amount", Sort::Int, true), ("creditor", Sort::Int, false)],
        "Append",
        Term::var("amount"),
        "l",
        Term::app(Func::SeqSum, [Term::var("l")]),
    );
    Fixture {
        name: "Debt-Sum",
        data_structure: "List, append",
        abstraction: "Sum",
        program,
        ni: None,
    }
}

/// Row 9: Sick-Employee-Names — adds low names to a (tree-)set; the
/// identity abstraction suffices because set insertion commutes.
pub fn sick_employee_names() -> Fixture {
    let program = two_worker_loop(
        "sick-employee-names",
        ResourceSpec::set_insert(),
        Term::Lit(Value::set_empty()),
        &[("name", Sort::Int, true), ("diagnosis", Sort::Int, false)],
        "Insert",
        Term::var("name"),
        "s",
        Term::app(
            Func::SeqSorted,
            [Term::app(Func::SetToSeq, [Term::var("s")])],
        ),
    );
    Fixture {
        name: "Sick-Employee-Names",
        data_structure: "Treeset, add",
        abstraction: "None",
        program,
        ni: None,
    }
}

/// Row 10: Website-Visitor-IPs — the *same* resource specification as
/// Sick-Employee-Names over a different set implementation (list-backed):
/// resource specs abstract over implementations (Sec. 5).
pub fn website_visitor_ips() -> Fixture {
    let program = two_worker_loop(
        "website-visitor-ips",
        ResourceSpec::set_insert(),
        Term::Lit(Value::set_empty()),
        &[("ip", Sort::Int, true), ("activity", Sort::Int, false)],
        "Insert",
        Term::var("ip"),
        "s",
        Term::app(Func::SetCard, [Term::var("s")]),
    );
    let exec = parse_program(
        "s := empty_set;
         par {
             t1 := 0; while (t1 < h) { t1 := t1 + 1 };
             atomic { s := set_add(s, 8) }
         } {
             atomic { s := set_add(s, 9) }
         };
         output(sorted(set_to_seq(s)))",
    )
    .expect("website-visitor-ips executable parses");
    Fixture {
        name: "Website-Visitor-IPs",
        data_structure: "Listset, add",
        abstraction: "None",
        program,
        ni: Some(NiSetup {
            program: exec,
            low_inputs: vec![],
            high_inputs: h_pair(),
            low_outputs: vec![],
        }),
    }
}

/// Row 11: Figure 3 — the map example: low keys, high values, key-set
/// abstraction, sorted key list output (the paper's running example,
/// verified in Fig. 5).
pub fn figure3() -> Fixture {
    let program = two_worker_loop(
        "figure3-map-keyset",
        ResourceSpec::keyset_map(),
        Term::Lit(Value::map_empty()),
        &[("adr", Sort::Int, true), ("rsn", Sort::Int, false)],
        "Put",
        Term::pair(Term::var("adr"), Term::var("rsn")),
        "m",
        Term::app(
            Func::SeqSorted,
            [Term::app(
                Func::SetToSeq,
                [Term::app(Func::MapDom, [Term::var("m")])],
            )],
        ),
    );
    let exec = parse_program(
        "m := empty_map;
         par {
             t1 := 0; while (t1 < h) { t1 := t1 + 1 };
             atomic { m := put(m, 1, h) }
         } {
             atomic { m := put(m, 2, 5) }
         };
         output(sorted(set_to_seq(dom(m))))",
    )
    .expect("figure3 executable parses");
    Fixture {
        name: "Figure 3",
        data_structure: "HashMap, put",
        abstraction: "Key set",
        program,
        ni: Some(NiSetup {
            program: exec,
            low_inputs: vec![],
            high_inputs: h_pair(),
            low_outputs: vec![],
        }),
    }
}

/// Row 12: Sales-By-Region — Fig. 4 (right): two *unique* put actions on
/// disjoint key ranges (keys ≡ worker mod 2); identity abstraction, so the
/// whole final map is low.
pub fn sales_by_region() -> Fixture {
    let worker = |idx: i64| {
        vec![VStmt::for_range(
            "j",
            Term::int(0),
            Term::var("n"),
            [
                VStmt::input("sales", Sort::Int, true),
                VStmt::assign(
                    "k",
                    Term::add(
                        Term::mul(Term::int(2), Term::var("j")),
                        Term::int(idx),
                    ),
                ),
                VStmt::atomic(
                    0,
                    format!("Put{idx}").as_str(),
                    Term::pair(Term::var("k"), Term::var("sales")),
                ),
            ],
        )]
    };
    let program = AnnotatedProgram::new("sales-by-region")
        .with_resource(ResourceSpec::disjoint_put_map(2))
        .with_body([
            VStmt::input("n", Sort::Int, true),
            VStmt::Share {
                resource: 0,
                init: Term::Lit(Value::map_empty()),
            },
            VStmt::Par {
                workers: vec![worker(0), worker(1)],
            },
            VStmt::Unshare {
                resource: 0,
                into: "m".into(),
            },
            VStmt::Output(Term::var("m")),
        ]);
    Fixture {
        name: "Sales-By-Region",
        data_structure: "HashMap, disjoint put",
        abstraction: "None",
        program,
        ni: None,
    }
}

/// Row 13: Salary-Histogram — increments the count of a salary *bucket*
/// (the bucket is low, the exact salary is not); increments commute, so
/// the identity abstraction works.
pub fn salary_histogram() -> Fixture {
    let program = two_worker_loop(
        "salary-histogram",
        ResourceSpec::histogram(),
        Term::Lit(Value::map_empty()),
        &[("bucket", Sort::Int, true), ("salary", Sort::Int, false)],
        "IncBucket",
        Term::var("bucket"),
        "m",
        Term::var("m"),
    );
    let exec = parse_program(
        "m := empty_map;
         par {
             t1 := 0; while (t1 < h) { t1 := t1 + 1 };
             atomic { m := put(m, 3, get_or(m, 3, 0) + 1) }
         } {
             atomic { m := put(m, 3, get_or(m, 3, 0) + 1) }
         };
         output(get_or(m, 3, 0))",
    )
    .expect("salary-histogram executable parses");
    Fixture {
        name: "Salary-Histogram",
        data_structure: "HashMap, increment value",
        abstraction: "None",
        program,
        ni: Some(NiSetup {
            program: exec,
            low_inputs: vec![],
            high_inputs: h_pair(),
            low_outputs: vec![],
        }),
    }
}

/// Row 14: Count-Purchases — adds a (low) purchase count to the (low)
/// per-user tally; additions at a key commute.
pub fn count_purchases() -> Fixture {
    let program = two_worker_loop(
        "count-purchases",
        ResourceSpec::map_add_value(),
        Term::Lit(Value::map_empty()),
        &[("user", Sort::Int, true), ("cnt", Sort::Int, true)],
        "AddAt",
        Term::pair(Term::var("user"), Term::var("cnt")),
        "m",
        Term::var("m"),
    );
    Fixture {
        name: "Count-Purchases",
        data_structure: "HashMap, add value",
        abstraction: "None",
        program,
        ni: None,
    }
}

/// Row 15: Most-Valuable-Purchase — keeps the per-user maximum price via a
/// conditional put (encoded as put-of-max, which commutes).
pub fn most_valuable_purchase() -> Fixture {
    let program = two_worker_loop(
        "most-valuable-purchase",
        ResourceSpec::map_max_value(),
        Term::Lit(Value::map_empty()),
        &[("user", Sort::Int, true), ("price", Sort::Int, true)],
        "MaxAt",
        Term::pair(Term::var("user"), Term::var("price")),
        "m",
        Term::var("m"),
    );
    let exec = parse_program(
        "m := empty_map;
         par {
             t1 := 0; while (t1 < h) { t1 := t1 + 1 };
             atomic { m := put(m, 1, max(get_or(m, 1, 0), 10)) }
         } {
             atomic { m := put(m, 1, max(get_or(m, 1, 0), 30)) }
         };
         output(get_or(m, 1, 0))",
    )
    .expect("most-valuable-purchase executable parses");
    Fixture {
        name: "Most-Valuable-Purchase",
        data_structure: "HashMap, conditional put",
        abstraction: "None",
        program,
        ni: Some(NiSetup {
            program: exec,
            low_inputs: vec![],
            high_inputs: h_pair(),
            low_outputs: vec![],
        }),
    }
}

/// The Fig. 12 initial queue value: empty buffer, nothing produced.
fn empty_queue() -> Term {
    Term::pair(
        Term::app(Func::MkRight, [Term::Lit(Value::seq_empty())]),
        Term::Lit(Value::seq_empty()),
    )
}

/// Row 16: 1-Producer-1-Consumer — both roles are unique actions, so the
/// full produced sequence (hence the consumed sequence) is low.
pub fn producer_consumer_1x1() -> Fixture {
    let program = AnnotatedProgram::new("producer-consumer-1x1")
        .with_resource(ResourceSpec::producer_consumer(false))
        .with_body([
            VStmt::input("n", Sort::Int, true),
            VStmt::Share {
                resource: 0,
                init: empty_queue(),
            },
            VStmt::Par {
                workers: vec![
                    vec![VStmt::for_range(
                        "i",
                        Term::int(0),
                        Term::var("n"),
                        [
                            VStmt::input("item", Sort::Int, true),
                            VStmt::atomic(0, "Prod", Term::var("item")),
                        ],
                    )],
                    vec![VStmt::for_range(
                        "i",
                        Term::int(0),
                        Term::var("n"),
                        [VStmt::atomic(0, "Cons", Term::Lit(Value::Unit))],
                    )],
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: "q".into(),
            },
            // The consumed sequence equals the produced sequence here.
            VStmt::Output(Term::snd(Term::var("q"))),
        ]);
    Fixture {
        name: "1-Producer-1-Consumer",
        data_structure: "Queue",
        abstraction: "Consumed sequence",
        program,
        ni: None,
    }
}

/// Row 17: Pipeline — two 1-1 queues; the middle stage consumes from the
/// first, transforms, and produces into the second. While running, the
/// middle stage cannot know its data is low; the producing action's
/// precondition is proved *retroactively* once the first queue is
/// unshared (the paper's deferred-PRE idiom).
pub fn pipeline() -> Fixture {
    let program = AnnotatedProgram::new("pipeline")
        .with_resource(ResourceSpec::producer_consumer(false))
        .with_resource(ResourceSpec::producer_consumer(false))
        .with_body([
            VStmt::input("n", Sort::Int, true),
            VStmt::Share {
                resource: 0,
                init: empty_queue(),
            },
            VStmt::Share {
                resource: 1,
                init: empty_queue(),
            },
            VStmt::Par {
                workers: vec![
                    // Source: produces low items into queue 0.
                    vec![VStmt::for_range(
                        "i",
                        Term::int(0),
                        Term::var("n"),
                        [
                            VStmt::input("item", Sort::Int, true),
                            VStmt::atomic(0, "Prod", Term::var("item")),
                        ],
                    )],
                    // Middle: consumes from queue 0 (value x is high while
                    // queue 0 is shared!), transforms, produces into queue
                    // 1 — with the precondition deferred.
                    vec![VStmt::for_range(
                        "i",
                        Term::int(0),
                        Term::var("n"),
                        [
                            VStmt::ConsumeBind {
                                resource: 0,
                                action: "Cons".into(),
                                var: "x".into(),
                                index: Term::var("i"),
                            },
                            VStmt::AtomicDeferred {
                                resource: 1,
                                action: "Prod".into(),
                                arg: Term::mul(Term::int(2), Term::var("x")),
                            },
                        ],
                    )],
                    // Sink: consumes from queue 1.
                    vec![VStmt::for_range(
                        "i",
                        Term::int(0),
                        Term::var("n"),
                        [VStmt::atomic(1, "Cons", Term::Lit(Value::Unit))],
                    )],
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: "q1".into(),
            },
            VStmt::Unshare {
                resource: 1,
                into: "q2".into(),
            },
            VStmt::Output(Term::snd(Term::var("q2"))),
        ]);
    Fixture {
        name: "Pipeline",
        data_structure: "Two queues",
        abstraction: "Consumed sequences",
        program,
        ni: None,
    }
}

/// Row 18: 2-Producers-2-Consumers — with shared roles only the produced
/// *multiset* is low, and the per-consumer counts are schedule-dependent:
/// their total is checked retroactively at unshare.
pub fn producers_consumers_2x2() -> Fixture {
    let producer = |_: usize| {
        vec![VStmt::for_range(
            "i",
            Term::int(0),
            Term::var("n"),
            [
                VStmt::input("item", Sort::Int, true),
                VStmt::atomic(0, "Prod", Term::var("item")),
            ],
        )]
    };
    let program = AnnotatedProgram::new("producers-consumers-2x2")
        .with_resource(ResourceSpec::producer_consumer(true))
        .with_body([
            VStmt::input("n", Sort::Int, true),
            // The split of consumption between the two consumers is
            // schedule-dependent (high); only the total (2n) is low.
            VStmt::input("k", Sort::Int, false),
            VStmt::Share {
                resource: 0,
                init: empty_queue(),
            },
            VStmt::Par {
                workers: vec![
                    producer(0),
                    producer(1),
                    vec![VStmt::AtomicBatch {
                        resource: 0,
                        action: "Cons".into(),
                        arg: Term::Lit(Value::Unit),
                        count: Term::var("k"),
                    }],
                    vec![VStmt::AtomicBatch {
                        resource: 0,
                        action: "Cons".into(),
                        arg: Term::Lit(Value::Unit),
                        count: Term::sub(
                            Term::mul(Term::int(2), Term::var("n")),
                            Term::var("k"),
                        ),
                    }],
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: "q".into(),
            },
            VStmt::Output(Term::app(Func::SeqToMultiset, [Term::snd(Term::var("q"))])),
        ]);
    Fixture {
        name: "2-Producers-2-Consumers",
        data_structure: "Queue",
        abstraction: "Produced multiset",
        program,
        ni: None,
    }
}
