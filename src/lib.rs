//! Workspace-level crate hosting the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`); the library API lives in
//! the [`commcsl`] facade.

pub use commcsl;
