#!/usr/bin/env bash
# Cluster smoke test: start a 2-shard TCP daemon, push the corpus
# through it twice (cold then warm), then start a *second* daemon that
# chains the first as its remote obligation-cache tier, push the same
# corpus through it, and assert (a) the second daemon's reports are
# byte-identical to the first's, (b) >=90% of its obligation lookups
# were served by the remote tier, (c) both daemons shut down cleanly.
#
# Usage: scripts/cluster_smoke.sh [path-to-commcsl-binary]
set -euo pipefail

BIN=${1:-./target/release/commcsl}
WORK=$(mktemp -d)

cleanup() {
    kill "$POOL_PID" "$EDGE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
POOL_PID=""
EDGE_PID=""
trap cleanup EXIT

# Waits for a daemon's readiness line in its log and prints the actual
# host:port it bound (port 0 = ephemeral).
wait_addr() {
    local log=$1 addr=""
    for _ in $(seq 1 200); do
        addr=$(sed -n 's|.*daemon listening on tcp://\([^ ]*\) .*|\1|p' "$log")
        [ -n "$addr" ] && break
        sleep 0.05
    done
    [ -n "$addr" ] || { echo "cluster smoke: no readiness line in $log" >&2; exit 1; }
    echo "$addr"
}

"$BIN" serve --tcp 127.0.0.1:0 --shards 2 --cache-dir "$WORK/pool-cache" \
    > "$WORK/pool.log" 2>&1 &
POOL_PID=$!
ADDR1=$(wait_addr "$WORK/pool.log")
echo "cluster smoke: 2-shard pool on tcp://$ADDR1"

# Two passes through the pool: cold, then warm from the shard caches.
run_pool() {
    "$BIN" verify --daemon --tcp "$ADDR1" --json "$@"
}
run_pool examples/programs > "$WORK/pool_pass1.json"
run_pool examples/programs > "$WORK/pool_pass2.json"
run_pool --expect rejected examples/rejected > "$WORK/pool_rejected.json"

STATUS1=$("$BIN" daemon status --tcp "$ADDR1" --json)
echo "cluster smoke: pool status = $STATUS1"
python3 - "$STATUS1" "$WORK/pool_pass1.json" "$WORK/pool_pass2.json" <<'EOF'
import json, sys
s = json.loads(sys.argv[1])
assert s["transport"] == "tcp", s
assert s["shards"] == 2, s
assert len(s["per_shard"]) == 2, s
assert sum(sh["programs"] for sh in s["per_shard"]) >= 18, s["per_shard"]
p1 = json.loads(open(sys.argv[2]).read())
p2 = json.loads(open(sys.argv[3]).read())
assert p1["summary"]["engine"] == "daemon", p1["summary"]
assert p2["summary"]["engine"] == "daemon", p2["summary"]
reports1 = {r["file"]: r["report"] for r in p1["results"]}
reports2 = {r["file"]: r["report"] for r in p2["results"]}
assert reports1 == reports2, "warm pool pass changed a report"
assert all(r["cached"] for r in p2["results"]), "second pass not cached"
EOF

# The edge daemon: fresh caches, the pool chained in as its remote
# obligation tier over cache_get/cache_put.
"$BIN" serve --tcp 127.0.0.1:0 --cache-dir "$WORK/edge-cache" --remote-cache "$ADDR1" \
    > "$WORK/edge.log" 2>&1 &
EDGE_PID=$!
ADDR2=$(wait_addr "$WORK/edge.log")
echo "cluster smoke: edge daemon on tcp://$ADDR2 (remote cache tcp://$ADDR1)"

"$BIN" verify --daemon --tcp "$ADDR2" --json examples/programs > "$WORK/edge_pass.json"
"$BIN" verify --daemon --tcp "$ADDR2" --json --expect rejected examples/rejected > "$WORK/edge_rejected.json"

STATUS2=$("$BIN" daemon status --tcp "$ADDR2" --json)
echo "cluster smoke: edge status = $STATUS2"
python3 - "$STATUS2" "$ADDR1" "$WORK/pool_pass1.json" "$WORK/edge_pass.json" \
    "$WORK/pool_rejected.json" "$WORK/edge_rejected.json" <<'EOF'
import json, sys
s = json.loads(sys.argv[1])
assert s["remote"] == f"tcp://{sys.argv[2]}", s
hits, misses = s["remote_hits"], s["remote_misses"]
assert hits > 0, s
assert hits >= 0.9 * (hits + misses), \
    f"remote tier served {hits}/{hits + misses} obligation lookups"
for pool_path, edge_path in [(sys.argv[3], sys.argv[4]), (sys.argv[5], sys.argv[6])]:
    pool = json.loads(open(pool_path).read())
    edge = json.loads(open(edge_path).read())
    assert edge["summary"]["engine"] == "daemon", edge["summary"]
    pool_reports = {r["file"]: r["report"] for r in pool["results"]}
    edge_reports = {r["file"]: r["report"] for r in edge["results"]}
    assert pool_reports == edge_reports, \
        f"remote-hit verdicts differ from the pool's ({edge_path})"
EOF

"$BIN" daemon stop --tcp "$ADDR2"
wait "$EDGE_PID"
EDGE_PID=""
"$BIN" daemon stop --tcp "$ADDR1"
wait "$POOL_PID"
POOL_PID=""
echo "cluster smoke: OK (clean shutdown)"
