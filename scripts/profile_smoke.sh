#!/usr/bin/env bash
# Profiler smoke test: run `commcsl profile` over the accepted corpus and
# structurally validate both exporter outputs — the Chrome trace is a
# JSON array of metadata + complete events naming spans from >=5 pipeline
# layers, and the folded stacks are well-formed `frames weight` lines.
# A second single-threaded deterministic run must reproduce the folded
# file byte-for-byte.
#
# Usage: scripts/profile_smoke.sh [path-to-commcsl-binary]
set -euo pipefail

BIN=${1:-./target/release/commcsl}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

"$BIN" profile examples/programs \
    --trace-out "$WORK/trace.json" --folded-out "$WORK/stacks.folded" \
    > "$WORK/summary.txt"
cat "$WORK/summary.txt"

grep -q "profiled 18 program(s) (18 verified)" "$WORK/summary.txt" \
    || { echo "profile smoke: corpus not fully verified" >&2; exit 1; }

python3 - "$WORK/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "trace must be a non-empty array"
phases = {e["ph"] for e in events}
assert "M" in phases, "metadata events missing"
assert "X" in phases, "complete events missing"
layers = {e["name"].split(".")[0] for e in events if e["ph"] == "X"}
assert len(layers) >= 5, f"spans from >=5 pipeline layers expected, got {layers}"
EOF

# Folded stacks: every line is `frame(;frame)* <integer>`.
if grep -vqE '^[^ ]+ [0-9]+$' "$WORK/stacks.folded"; then
    echo "profile smoke: malformed folded line" >&2
    exit 1
fi
[ -s "$WORK/stacks.folded" ] \
    || { echo "profile smoke: folded output empty" >&2; exit 1; }

# Determinism: single-threaded count-weighted runs are byte-identical.
for i in 1 2; do
    "$BIN" profile examples/programs --threads 1 --deterministic \
        --folded-out "$WORK/run$i.folded" > /dev/null
done
cmp "$WORK/run1.folded" "$WORK/run2.folded" \
    || { echo "profile smoke: deterministic folded output diverged" >&2; exit 1; }

echo "profile smoke: OK"
