#!/usr/bin/env bash
# Service-observability smoke test: start `commcsl serve`, push a burst
# of daemon-mode verifies through it, assert `daemon top --once --json`
# reports a live per-op histogram with a nonzero p99, assert
# `daemon logs --json` event sequences are strictly increasing, shut
# down cleanly — then run a small self-contained loadgen burst (which
# boots its own daemon and enforces its own gates).
#
# Usage: scripts/load_smoke.sh [path-to-commcsl-binary] [path-to-loadgen-binary]
set -euo pipefail

BIN=${1:-./target/release/commcsl}
LOADGEN=${2:-./target/release/loadgen}
WORK=$(mktemp -d)
SOCK="$WORK/commcsl.sock"
CACHE="$WORK/cache"

cleanup() {
    kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}

"$BIN" serve --socket "$SOCK" --cache-dir "$CACHE" &
SERVE_PID=$!
trap cleanup EXIT

for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && break
    sleep 0.05
done
[ -S "$SOCK" ] || { echo "load smoke: daemon never bound $SOCK" >&2; exit 1; }

# The burst: two daemon-mode passes over the corpus (cold then cached)
# plus a status poll, so several ops land in the service histograms.
"$BIN" verify --daemon --no-start --socket "$SOCK" examples/programs > /dev/null
"$BIN" verify --daemon --no-start --socket "$SOCK" examples/programs > /dev/null
"$BIN" daemon status --socket "$SOCK" > /dev/null

TOP=$("$BIN" daemon top --once --json --socket "$SOCK")
echo "load smoke: top = $TOP"
python3 - "$TOP" <<'EOF'
import json, sys
t = json.loads(sys.argv[1])
assert t["unit"] == "ns", t
assert t["status"]["started_at_unix_ms"] > 0, t["status"]
hists = t["histograms"]
assert hists, "no op histograms after the burst"
# The CLI ships each daemon-mode verify pass as one verify_batch request.
vb = hists["verify_batch"]
assert vb["count"] == 2, vb
assert vb["p99"] > 0, "verify_batch p99 must be nonzero"
assert all(h["p99"] >= h["p50"] for h in hists.values()), hists
assert t["counters"]["daemon.request.decode_error"] == 0, t["counters"]
EOF

"$BIN" daemon logs --json --socket "$SOCK" > "$WORK/logs.ndjson"
python3 - "$WORK/logs.ndjson" <<'EOF'
import json, sys
events = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
assert events, "event log empty after the burst"
seqs = [e["seq"] for e in events]
assert all(b > a for a, b in zip(seqs, seqs[1:])), \
    f"sequences not strictly increasing: {seqs}"
assert all(e["request_id"] for e in events), events
assert all(e["outcome"] == "ok" for e in events), events
EOF
echo "load smoke: event log OK ($(wc -l < "$WORK/logs.ndjson") events, seqs strictly increasing)"

"$BIN" daemon stop --socket "$SOCK"
wait "$SERVE_PID"
[ ! -S "$SOCK" ] || { echo "load smoke: socket not removed" >&2; exit 1; }

# Sustained-load burst: loadgen boots its own daemon on a temp socket
# and enforces the request-id / sequence / p50-agreement / p99 gates
# itself; a relaxed throughput floor keeps this robust on slow runners.
"$LOADGEN" --clients 2 --requests 10 --min-rps 5

echo "load smoke: OK (clean shutdown)"
