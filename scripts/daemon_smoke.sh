#!/usr/bin/env bash
# Daemon smoke test: start `commcsl serve`, push the full corpus through
# the client twice (accepted and rejected sets), assert the second pass
# is served >=90% from cache via `daemon status`, and shut down cleanly.
#
# Usage: scripts/daemon_smoke.sh [path-to-commcsl-binary]
set -euo pipefail

BIN=${1:-./target/release/commcsl}
WORK=$(mktemp -d)
SOCK="$WORK/commcsl.sock"
CACHE="$WORK/cache"

cleanup() {
    kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}

"$BIN" serve --socket "$SOCK" --cache-dir "$CACHE" &
SERVE_PID=$!
trap cleanup EXIT

for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && break
    sleep 0.05
done
[ -S "$SOCK" ] || { echo "daemon smoke: daemon never bound $SOCK" >&2; exit 1; }

run_client() {
    "$BIN" verify --daemon --no-start --socket "$SOCK" "$@"
}

# Two passes over both corpora: pass 1 populates the cache, pass 2 must
# be answered from it. Verdict expectations are pinned either way.
run_client examples/programs
run_client examples/programs > "$WORK/second_pass.txt"
run_client --expect rejected examples/rejected
run_client --expect rejected examples/rejected

grep -q "cached" "$WORK/second_pass.txt" \
    || { echo "daemon smoke: second pass not served from cache" >&2; exit 1; }

STATUS=$("$BIN" daemon status --socket "$SOCK" --json)
echo "daemon smoke: status = $STATUS"
python3 - "$STATUS" <<'EOF'
import json, sys
s = json.loads(sys.argv[1])
hits = s["memory_hits"] + s["disk_hits"]
misses = s["misses"]
corpus = 23  # 18 accepted + 5 rejected programs per pass
assert misses == corpus, f"first pass should miss all {corpus}: {s}"
assert hits >= 0.9 * corpus, f"second pass must be >=90% cached: {s}"
assert s["programs"] == 2 * corpus, s
EOF

"$BIN" daemon stop --socket "$SOCK"
wait "$SERVE_PID"
[ ! -S "$SOCK" ] || { echo "daemon smoke: socket not removed" >&2; exit 1; }
echo "daemon smoke: OK (clean shutdown)"
