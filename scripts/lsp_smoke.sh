#!/usr/bin/env bash
# LSP smoke test: drive `commcsl lsp` over real stdio with Content-Length
# framed JSON-RPC. Opens a rejected fixture and asserts publishDiagnostics
# carries the pinned DiagnosticCode at the right range plus a minimized
# counterexample in hover, then edits the document into a valid program
# and asserts the diagnostics clear. Ends with shutdown/exit and asserts
# the server's exit status is 0 (the clean-shutdown contract).
#
# Usage: scripts/lsp_smoke.sh [path-to-commcsl-binary]
set -euo pipefail

BIN=${1:-./target/release/commcsl}

python3 - "$BIN" <<'EOF'
import json, subprocess, sys

BIN = sys.argv[1]

REJECTED = open("examples/rejected/unused_low_leak.csl").read()
VALID = 'program "good";\n\ninput a: Int low;\noutput a;\n'
URI = "file:///smoke/unused_low_leak.csl"
# 0-based line of the leaking statement in the rejected fixture.
LEAK_LINE = next(i for i, l in enumerate(REJECTED.splitlines()) if "output h" in l)
LEAK_COL = REJECTED.splitlines()[LEAK_LINE].index("output h")

def frame(msg):
    body = json.dumps(msg, separators=(",", ":")).encode()
    return b"Content-Length: %d\r\n\r\n" % len(body) + body

def req(id, method, params):
    return frame({"jsonrpc": "2.0", "id": id, "method": method, "params": params})

def note(method, params):
    return frame({"jsonrpc": "2.0", "method": method, "params": params})

stdin = b"".join([
    req(1, "initialize", {"capabilities": {}}),
    note("initialized", {}),
    note("textDocument/didOpen", {"textDocument": {
        "uri": URI, "languageId": "commcsl", "version": 1, "text": REJECTED}}),
    req(2, "textDocument/hover", {
        "textDocument": {"uri": URI},
        "position": {"line": LEAK_LINE, "character": LEAK_COL}}),
    note("textDocument/didChange", {
        "textDocument": {"uri": URI, "version": 2},
        "contentChanges": [{"text": VALID}]}),
    req(3, "shutdown", None),
    note("exit", {}),
])

proc = subprocess.run([BIN, "lsp", "--stdio"], input=stdin,
                      stdout=subprocess.PIPE, stderr=subprocess.PIPE, timeout=120)
assert proc.returncode == 0, (
    f"lsp smoke: server exited {proc.returncode}: {proc.stderr.decode()}")

# Decode every Content-Length frame the server produced.
out, msgs = proc.stdout, []
while out:
    header, _, rest = out.partition(b"\r\n\r\n")
    length = next(int(l.split(b":")[1]) for l in header.split(b"\r\n")
                  if l.lower().startswith(b"content-length"))
    msgs.append(json.loads(rest[:length]))
    out = rest[length:]

def response(id):
    found = [m for m in msgs if m.get("id") == id]
    assert len(found) == 1, f"lsp smoke: expected one response for id {id}"
    assert "error" not in found[0], f"lsp smoke: id {id} errored: {found[0]}"
    return found[0]["result"]

# 1. initialize: full-sync text documents and hover are advertised.
caps = response(1)["capabilities"]
assert caps["textDocumentSync"] == {"openClose": True, "change": 1}, caps
assert caps["hoverProvider"] is True, caps

# 2. The rejected fixture publishes a diagnostic with the pinned code at
#    the leaking statement's range (0-based LSP positions).
published = [m["params"] for m in msgs
             if m.get("method") == "textDocument/publishDiagnostics"
             and m["params"]["uri"] == URI]
assert len(published) == 2, f"lsp smoke: expected 2 publishes, got {len(published)}"
bad = published[0]["diagnostics"]
leak = [d for d in bad if d["code"] == "low-output"]
assert leak, f"lsp smoke: no low-output diagnostic: {bad}"
rng = leak[0]["range"]["start"]
assert rng == {"line": LEAK_LINE, "character": LEAK_COL}, (
    f"lsp smoke: wrong range {rng}, expected line {LEAK_LINE} col {LEAK_COL}")
assert leak[0]["severity"] == 1, leak[0]
assert "counterexample" in leak[0]["message"], leak[0]["message"]

# 3. Hover over the leak: failed obligation with a minimized witness that
#    binds only `h` — the unrelated low guards `a`/`b` were delta-debugged
#    away (strictly smaller than the 3-variable unminimized witness).
hover = response(2)["contents"]["value"]
assert "low-output" in hover and "(minimized)" in hover, hover
witness = [l.split("`")[1] for l in hover.splitlines() if l.startswith("| `")]
assert len(witness) == 1 and witness[0].endswith("h"), (
    f"lsp smoke: witness not minimized to just `h`: {witness}")

# 4. Editing the document into a valid program clears the diagnostics.
assert published[1]["diagnostics"] == [], published[1]

# 5. Progress streamed for both checks: begin/end pairs per revision.
progress = [m["params"]["value"]["kind"] for m in msgs if m.get("method") == "$/progress"]
assert progress.count("begin") == 2 and progress.count("end") == 2, progress

print(f"lsp smoke: OK ({len(msgs)} messages, clean shutdown)")
EOF
