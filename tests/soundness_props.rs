//! Property-based soundness tests: the executable counterparts of the
//! paper's Isabelle lemmas, checked on randomized instances.

use std::collections::BTreeSet;

use commcsl::logic::consistency::{
    interleaving_results, lemma_4_2_holds, records_pre_related, Record,
};
use commcsl::logic::matching::find_bijection;
use commcsl::prelude::*;
use proptest::prelude::*;

fn small_int() -> impl Strategy<Value = i64> {
    -4i64..=4
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 4.2 instance for the key-set map: any two PRE-related put
    /// records starting from equal abstractions end with equal
    /// abstractions on every interleaving.
    #[test]
    fn lemma_4_2_keyset_map(
        keys in proptest::collection::vec(small_int(), 0..5),
        vals1 in proptest::collection::vec(small_int(), 5),
        vals2 in proptest::collection::vec(small_int(), 5),
    ) {
        let spec = ResourceSpec::keyset_map();
        let args1: Vec<Value> = keys.iter().zip(&vals1)
            .map(|(k, v)| Value::pair(Value::Int(*k), Value::Int(*v)))
            .collect();
        // Same key multiset, independently chosen (high) values.
        let args2: Vec<Value> = keys.iter().zip(&vals2)
            .map(|(k, v)| Value::pair(Value::Int(*k), Value::Int(*v)))
            .collect();
        let r1 = Record::new().with_shared("Put", args1);
        let r2 = Record::new().with_shared("Put", args2);
        prop_assert!(records_pre_related(&spec, &r1, &r2));
        prop_assert!(lemma_4_2_holds(
            &spec, &Value::map_empty(), &r1, &Value::map_empty(), &r2
        ).unwrap());
    }

    /// Counter additions: every interleaving yields the same final value
    /// (plain commutativity), hence a single abstraction.
    #[test]
    fn counter_interleavings_unique(adds in proptest::collection::vec(small_int(), 0..6)) {
        let spec = ResourceSpec::counter_add();
        let record = Record::new().with_shared("Add", adds.iter().map(|&n| Value::Int(n)));
        let finals = interleaving_results(&spec, &Value::Int(0), &record).unwrap();
        prop_assert_eq!(finals.len(), 1);
        let expected: i64 = adds.iter().sum();
        prop_assert_eq!(finals.into_iter().next().unwrap(), Value::Int(expected));
    }

    /// The histogram's increments commute concretely: one final map.
    #[test]
    fn histogram_interleavings_unique(buckets in proptest::collection::vec(0i64..4, 0..6)) {
        let spec = ResourceSpec::histogram();
        let record = Record::new()
            .with_shared("IncBucket", buckets.iter().map(|&b| Value::Int(b)));
        let finals = interleaving_results(&spec, &Value::map_empty(), &record).unwrap();
        prop_assert_eq!(finals.len(), 1);
    }

    /// Bijection matching is symmetric and consistent with multiset
    /// equality under the equality precondition.
    #[test]
    fn bijection_matches_iff_multisets_equal(
        xs in proptest::collection::vec(small_int(), 0..6),
        ys in proptest::collection::vec(small_int(), 0..6),
    ) {
        let l: Multiset<Value> = xs.iter().map(|&n| Value::Int(n)).collect();
        let r: Multiset<Value> = ys.iter().map(|&n| Value::Int(n)).collect();
        let found = find_bijection(&l, &r, |a, b| a == b).is_some();
        prop_assert_eq!(found, l == r);
        let back = find_bijection(&r, &l, |a, b| a == b).is_some();
        prop_assert_eq!(found, back);
    }

    /// Normalization preserves ground semantics on randomly generated
    /// arithmetic/boolean terms (the rewriter is equality-preserving).
    #[test]
    fn rewriting_preserves_semantics(
        a in small_int(), b in small_int(), c in small_int(),
    ) {
        use commcsl::pure::rewrite::{normalize, SyntacticOracle};
        let env: commcsl::pure::term::Env = [
            ("a".into(), Value::Int(a)),
            ("b".into(), Value::Int(b)),
            ("c".into(), Value::Int(c)),
        ].into_iter().collect();
        let terms = [
            Term::add(Term::mul(Term::var("a"), Term::int(2)), Term::sub(Term::var("b"), Term::var("c"))),
            Term::eq(Term::add(Term::var("a"), Term::var("b")), Term::add(Term::var("b"), Term::var("a"))),
            Term::ite(
                Term::lt(Term::var("a"), Term::var("b")),
                Term::app(Func::Max, [Term::var("a"), Term::var("b")]),
                Term::app(Func::Max, [Term::var("b"), Term::var("a")]),
            ),
            Term::app(Func::Mod, [Term::add(Term::mul(Term::int(4), Term::var("a")), Term::var("b")), Term::int(2)]),
        ];
        for t in terms {
            let n = normalize(&t, &SyntacticOracle);
            prop_assert_eq!(t.eval(&env).unwrap(), n.eval(&env).unwrap(), "term {:?} vs {:?}", t, n);
        }
    }

    /// The solver never proves a falsifiable arithmetic entailment
    /// (soundness spot-check against brute force).
    #[test]
    fn solver_soundness_on_small_arithmetic(
        k in small_int(), m in small_int(),
    ) {
        let solver = Solver::new();
        let hyp = Term::le(Term::var("x"), Term::int(k));
        let goal = Term::le(Term::var("x"), Term::int(m));
        let verdict = solver.check_valid(&[hyp], &goal);
        // The entailment x ≤ k ⊨ x ≤ m holds iff k ≤ m.
        if verdict == Verdict::Proved {
            prop_assert!(k <= m, "unsound proof: x ≤ {} ⊭ x ≤ {}", k, m);
        } else {
            prop_assert!(k > m, "incompleteness on decidable fragment: {} ≤ {}", k, m);
        }
    }
}

#[test]
fn producer_consumer_lemma_4_2_with_debt_states() {
    // The App. D scenario: consumes outnumber produces, driving the queue
    // into debt; abstractions still agree across interleavings.
    let spec = ResourceSpec::producer_consumer(true);
    let empty = Value::pair(Value::right(Value::seq_empty()), Value::seq_empty());
    let r1 = Record::new()
        .with_shared("Prod", [Value::Int(5)])
        .with_shared("Cons", [Value::Unit, Value::Unit, Value::Unit]);
    let r2 = r1.clone();
    assert!(records_pre_related(&spec, &r1, &r2));
    assert!(lemma_4_2_holds(&spec, &empty, &r1, &empty, &r2).unwrap());
    // Sanity: interleavings do produce multiple concrete states...
    let finals = interleaving_results(&spec, &empty, &r1).unwrap();
    // ...but a single abstraction.
    let alphas: BTreeSet<Value> = finals
        .iter()
        .map(|v| spec.alpha_of(v).unwrap())
        .collect();
    assert_eq!(alphas.len(), 1);
}

#[test]
fn invalid_spec_breaks_lemma_4_2_and_is_rejected() {
    // The "first write wins vs last write wins" spec: identity abstraction
    // over raw sets — Lemma 4.2's conclusion fails AND validity checking
    // refutes it, demonstrating the two sides agree.
    use commcsl::logic::spec::ActionDef;
    let set = ActionDef::shared(
        "Set",
        Sort::Int,
        Term::var(ActionDef::ARG_VAR),
        Term::eq(
            Term::var(ActionDef::ARG1_VAR),
            Term::var(ActionDef::ARG2_VAR),
        ),
    );
    let spec = ResourceSpec::new(
        "raw-set",
        Sort::Int,
        Term::var(ResourceSpec::VALUE_VAR),
        [set],
    );
    let report = check_validity(&spec, &ValidityConfig::default());
    assert!(report.is_invalid());
    let record = Record::new().with_shared("Set", [Value::Int(3), Value::Int(4)]);
    assert!(!lemma_4_2_holds(&spec, &Value::Int(0), &record, &Value::Int(0), &record).unwrap());
}
