//! Frontend fidelity: the committed `.csl` corpus under
//! `examples/programs/` (and `examples/rejected/`) is equivalent to the
//! builder-based fixtures.
//!
//! For every file we check, against its builder twin (matched by program
//! name): *structural* equality of the compiled program, and *verdict*
//! equality — same `verified()`, same per-obligation statuses — so the
//! surface pipeline provably reproduces Table 1. The `commcsl` CLI is
//! also driven in-process over both corpora.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use commcsl::front::{cli, compile};
use commcsl::verifier::program::AnnotatedProgram;
use commcsl::verifier::report::ObligationStatus;
use commcsl::verifier::verify;
use commcsl::fixtures;

fn corpus_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(sub)
}

fn read_corpus(sub: &str) -> Vec<(PathBuf, AnnotatedProgram)> {
    let dir = corpus_dir(sub);
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "csl"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|file| {
            let src = fs::read_to_string(&file).expect("read .csl file");
            let program = compile(&src)
                .unwrap_or_else(|e| panic!("{}: {e}", file.display()));
            (file, program)
        })
        .collect()
}

fn statuses(program: &AnnotatedProgram) -> (bool, Vec<(String, bool)>) {
    let report = verify(program, &Default::default());
    let obligations = report
        .obligations
        .iter()
        .map(|o| {
            (
                o.description.clone(),
                o.status == ObligationStatus::Proved,
            )
        })
        .collect();
    (report.verified(), obligations)
}

#[test]
fn table1_corpus_matches_builder_fixtures() {
    let twins: BTreeMap<String, AnnotatedProgram> = fixtures::all()
        .into_iter()
        .map(|f| (f.program.name.clone(), f.program))
        .collect();
    assert_eq!(twins.len(), 18, "fixture program names must be unique");

    let corpus = read_corpus("examples/programs");
    assert_eq!(corpus.len(), 18, "all 18 Table 1 rows must exist as .csl");

    for (file, parsed) in corpus {
        let twin = twins.get(&parsed.name).unwrap_or_else(|| {
            panic!("{}: no builder fixture named `{}`", file.display(), parsed.name)
        });
        assert_eq!(
            &parsed, twin,
            "{}: parsed program differs structurally from its builder twin \
             (regenerate with `cargo run --example export_csl`)",
            file.display()
        );
        let (parsed_ok, parsed_obls) = statuses(&parsed);
        let (twin_ok, twin_obls) = statuses(twin);
        assert!(parsed_ok, "{}: must verify", file.display());
        assert_eq!(parsed_ok, twin_ok, "{}", file.display());
        assert_eq!(parsed_obls, twin_obls, "{}", file.display());
    }
}

#[test]
fn rejected_corpus_fails_with_named_obligations() {
    let twins: BTreeMap<String, AnnotatedProgram> = fixtures::rejected::all_programs()
        .into_iter()
        .map(|(_, p)| (p.name.clone(), p))
        .collect();

    let corpus = read_corpus("examples/rejected");
    assert_eq!(corpus.len(), twins.len());

    for (file, parsed) in corpus {
        let twin = twins.get(&parsed.name).unwrap_or_else(|| {
            panic!("{}: no rejected fixture named `{}`", file.display(), parsed.name)
        });
        assert_eq!(&parsed, twin, "{}", file.display());
        let report = verify(&parsed, &Default::default());
        assert!(!report.verified(), "{}: must be rejected", file.display());
        // The rejection names concrete obligations (or structural errors).
        let named_failures: Vec<String> = report
            .failures()
            .map(|o| o.description.clone())
            .chain(report.errors.iter().cloned())
            .collect();
        assert!(
            !named_failures.is_empty(),
            "{}: rejection must name obligations",
            file.display()
        );
        let (parsed_ok, parsed_obls) = statuses(&parsed);
        let (twin_ok, twin_obls) = statuses(twin);
        assert_eq!(parsed_ok, twin_ok, "{}", file.display());
        assert_eq!(parsed_obls, twin_obls, "{}", file.display());
    }
}

#[test]
fn cli_verifies_both_corpora_end_to_end() {
    let programs = corpus_dir("examples/programs").display().to_string();
    let mut out = String::new();
    let code = cli::run(
        &["verify".into(), "--threads".into(), "2".into(), programs.clone()],
        &mut out,
    );
    assert_eq!(code, 0, "CLI must verify the Table 1 corpus:\n{out}");
    assert!(out.contains("18/18 programs verified"), "{out}");

    let rejected = corpus_dir("examples/rejected").display().to_string();
    let mut out = String::new();
    let code = cli::run(
        &[
            "verify".into(),
            "--expect".into(),
            "rejected".into(),
            rejected,
        ],
        &mut out,
    );
    assert_eq!(code, 0, "CLI must reject the insecure corpus:\n{out}");
    assert!(out.contains("5/5 programs rejected as required"), "{out}");

    // Glob expansion + JSON mode over the same corpus.
    let glob = corpus_dir("examples/programs")
        .join("*.csl")
        .display()
        .to_string();
    let mut out = String::new();
    let code = cli::run(&["verify".into(), "--json".into(), glob], &mut out);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("\"as_expected\":18"), "{out}");
    assert!(out.contains("\"ok\":true"), "{out}");
}
