//! Integration tests for the persistent verification service: the
//! content-addressed verdict cache must return **byte-identical**
//! verdicts for every fixture and every rejected variant — warm from
//! memory, and across a daemon restart through the on-disk tier — and
//! the daemon must serve the `.csl` corpus from cache on a second pass.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use commcsl::fixtures;
use commcsl::server::client::{connect_or_start, Client};
use commcsl::server::daemon::{Server, ServerConfig};
use commcsl::server::protocol::VerifyItem;
use commcsl::verifier::batch::BatchConfig;
use commcsl::verifier::cache::{CacheConfig, CachedVerifier};
use commcsl::verifier::report::VerifierConfig;
use commcsl::verifier::{program_hash, verify, AnnotatedProgram};

/// Drops → `request_shutdown()`: keeps a panicking assertion inside a
/// `thread::scope` from hanging the test forever (scope joins the
/// `serve_unix` thread, which otherwise only exits on a shutdown
/// request the panicked path never sent).
struct StopOnDrop<'a>(&'a Server);

impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.0.request_shutdown();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "commcsl-root-server-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The full corpus: all 18 Table 1 programs plus the rejected variants.
fn corpus() -> Vec<AnnotatedProgram> {
    fixtures::all()
        .into_iter()
        .map(|f| f.program)
        .chain(fixtures::rejected::all_programs().into_iter().map(|(_, p)| p))
        .collect()
}

#[test]
fn cached_verdicts_are_byte_identical_across_tiers_and_restarts() {
    let cache_dir = temp_dir("tiers");
    let config = VerifierConfig::default();
    let programs = corpus();
    let refs: Vec<&AnnotatedProgram> = programs.iter().collect();

    // Ground truth: direct, uncached verification.
    let direct: Vec<String> = programs
        .iter()
        .map(|p| verify(p, &config).to_json())
        .collect();

    // Cold + warm within one verifier (memory tier).
    let cached = CachedVerifier::new(
        BatchConfig::with_threads(0),
        CacheConfig::persistent(&cache_dir),
    );
    let cold = cached.verify_batch(&refs);
    let warm = cached.verify_batch(&refs);
    for ((c, w), d) in cold.iter().zip(&warm).zip(&direct) {
        assert!(!c.cached && w.cached);
        assert_eq!(c.report.to_json(), *d);
        assert_eq!(w.report.to_json(), *d, "memory tier altered a verdict");
    }

    // "Daemon restart": a fresh verifier over the same directory — every
    // verdict must come from disk, still byte-identical.
    let restarted = CachedVerifier::new(
        BatchConfig::with_threads(0),
        CacheConfig::persistent(&cache_dir),
    );
    let after = restarted.verify_batch(&refs);
    for ((r, d), p) in after.iter().zip(&direct).zip(&programs) {
        assert!(r.cached, "disk tier must survive a restart for {}", p.name);
        assert_eq!(r.report.to_json(), *d, "disk tier altered a verdict for {}", p.name);
        assert_eq!(r.key, program_hash(p, &config));
    }
    let stats = restarted.stats();
    assert_eq!(stats.disk_hits as usize, programs.len());
    assert_eq!(stats.misses, 0);

    fs::remove_dir_all(&cache_dir).ok();
}

#[cfg(unix)]
#[test]
fn daemon_serves_the_csl_corpus_from_cache_on_the_second_pass() {
    let base = temp_dir("daemon");
    fs::create_dir_all(&base).unwrap();
    let socket = base.join("commcsl.sock");

    let items: Vec<VerifyItem> = {
        let mut paths: Vec<PathBuf> = fs::read_dir("examples/programs")
            .expect("run from the workspace root")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "csl"))
            .collect();
        paths.sort();
        paths
            .into_iter()
            .map(|p| VerifyItem {
                name: p.display().to_string(),
                source: fs::read_to_string(&p).unwrap(),
            })
            .collect()
    };
    assert_eq!(items.len(), 18);

    let server = Server::new(
        ServerConfig {
            threads: 0,
            cache: CacheConfig::persistent(base.join("cache")),
            verifier: VerifierConfig::default(),
            ..Default::default()
        },
        Box::new(|src| commcsl::front::compile(src).map_err(|e| e.to_string())),
    );
    std::thread::scope(|scope| {
        let _stop = StopOnDrop(&server);
        let daemon = scope.spawn(|| server.serve_unix(&socket));
        let mut client =
            connect_or_start(&socket, Duration::from_secs(5), || Ok(())).unwrap();

        let cold = client.verify_batch(items.clone()).unwrap();
        let warm = client.verify_batch(items.clone()).unwrap();
        for (c, w) in cold.iter().zip(&warm) {
            let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
            assert!(c.report.verified());
            assert!(w.cached);
            assert_eq!(c.report.to_json(), w.report.to_json());
        }
        let status = client.status().unwrap();
        assert_eq!(status.misses, 18);
        assert_eq!(status.memory_hits, 18);

        // A second session sees the same cache.
        let mut other = Client::connect(&socket).unwrap();
        let again = other.verify_batch(items.clone()).unwrap();
        assert!(again.iter().all(|o| o.as_ref().unwrap().cached));

        client.shutdown().unwrap();
        daemon.join().unwrap().unwrap();
    });
    assert!(!socket.exists());
    fs::remove_dir_all(&base).ok();
}
