//! Structured diagnostics, end to end: failed `Low` obligations carry a
//! falsifying per-execution assignment and a stable code (plus a source
//! span when compiled from `.csl`), and every serialization surface —
//! `VerifierReport::to_json`, the daemon's report codec, the on-disk
//! verdict cache, and the CLI renderings — round-trips them losslessly.

use commcsl::front::{cli, compile};
use commcsl::server::json::Json;
use commcsl::server::protocol::{report_from_json, report_to_json};
use commcsl::verifier::cache::{CacheConfig, VerdictCache};
use commcsl::verifier::hash::program_hash;
use commcsl::verifier::report::VerifierConfig;
use commcsl::verifier::{verify, DiagnosticCode, SourceSpan};

const LEAKY: &str = "program leaky;\n\
                     input h: Int high;\n\
                     output h;\n";

#[test]
fn failed_low_obligation_carries_counterexample_and_span() {
    let program = compile(LEAKY).expect("leaky program compiles");
    let report = verify(&program, &VerifierConfig::default());
    assert!(!report.verified());

    let failure = report.failures().next().expect("output obligation fails");
    assert_eq!(failure.code, DiagnosticCode::LowOutput);
    assert_eq!(failure.span, Some(SourceSpan::new(3, 1)));
    let cex = failure
        .failure()
        .expect("failed status")
        .counterexample
        .as_ref()
        .expect("the falsifier finds a witness for a direct leak");
    let h = cex
        .bindings
        .iter()
        .find(|b| b.var.contains("_h"))
        .expect("binding for the high input");
    assert_ne!(h.exec1, h.exec2, "witness separates the two executions");

    // The JSON shape exposes everything machine-readably.
    let json = report.to_json();
    assert!(json.contains("\"code\":\"low-output\""), "{json}");
    assert!(json.contains("\"span\":\"3:1\""), "{json}");
    assert!(json.contains("\"counterexample\":["), "{json}");
}

#[test]
fn counterexamples_round_trip_through_every_codec() {
    let program = compile(LEAKY).expect("compile");
    let config = VerifierConfig::default();
    let report = verify(&program, &config);
    let json = report.to_json();

    // Daemon protocol codec: writer matches `to_json` byte for byte, and
    // parsing back reproduces the full structure (codes, spans,
    // counterexample bindings included).
    assert_eq!(report_to_json(&report).to_string(), json);
    let recovered = report_from_json(&Json::parse(&json).expect("parses")).expect("decodes");
    assert_eq!(recovered.obligations, report.obligations);
    assert_eq!(recovered.to_json(), json);

    // On-disk verdict cache: a fresh cache over the same directory
    // replays the verdict byte-identically.
    let dir = std::env::temp_dir().join(format!(
        "commcsl-diagnostics-roundtrip-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let key = program_hash(&program, &config);
    {
        let mut cache = VerdictCache::new(CacheConfig::persistent(&dir));
        cache.put(key, &report);
    }
    let mut fresh = VerdictCache::new(CacheConfig::persistent(&dir));
    let loaded = fresh.get(key).expect("disk hit");
    assert_eq!(loaded.obligations, report.obligations);
    assert_eq!(loaded.to_json(), json);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_renders_codes_spans_and_counterexamples() {
    let dir = std::env::temp_dir().join(format!(
        "commcsl-diagnostics-cli-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let file = dir.join("leaky.csl");
    std::fs::write(&file, LEAKY).expect("write corpus");

    // Human output: code tag, source position, and the witness values.
    let mut out = String::new();
    let code = cli::run(&["verify".into(), file.display().to_string()], &mut out);
    assert_eq!(code, cli::EXIT_MISMATCH, "{out}");
    assert!(out.contains("failed [low-output] at 3:1"), "{out}");
    assert!(out.contains("where"), "{out}");
    assert!(out.contains(" vs "), "{out}");

    // JSON output embeds the same report verbatim.
    let mut out = String::new();
    let code = cli::run(
        &["verify".into(), "--json".into(), file.display().to_string()],
        &mut out,
    );
    assert_eq!(code, cli::EXIT_MISMATCH);
    assert!(out.contains("\"counterexample\":["), "{out}");
    assert!(out.contains("\"span\":\"3:1\""), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}
