//! Cross-crate integration tests: the verifier's verdicts must agree with
//! the ground truth established by the operational semantics.

use commcsl::fixtures::{self, rejected};
use commcsl::lang::nicheck::{check_non_interference, NiConfig};
use commcsl::prelude::*;

#[test]
fn table1_suite_verifies_end_to_end() {
    let config = VerifierConfig::default();
    for fixture in fixtures::all() {
        let report = verify(&fixture.program, &config);
        assert!(
            report.verified(),
            "Table 1 row `{}` must verify:\n{report}",
            fixture.name
        );
        assert!(report.proved_count() > 0, "{} proved nothing", fixture.name);
    }
}

#[test]
fn verifier_and_harness_agree_on_secure_fixtures() {
    let config = NiConfig {
        random_seeds: 4,
        fuel: 200_000,
    };
    for fixture in fixtures::all() {
        let Some(ni) = &fixture.ni else { continue };
        let report = check_non_interference(
            &ni.program,
            &ni.low_inputs,
            &ni.high_inputs,
            &ni.low_outputs,
            &config,
        );
        assert_eq!(report.aborted, 0, "{}: abort", fixture.name);
        assert!(
            report.holds(),
            "{}: verified program leaked empirically: {:?}",
            fixture.name,
            report.violation
        );
    }
}

#[test]
fn verifier_and_harness_agree_on_the_insecure_program() {
    // Rejected by the verifier…
    let annotated = rejected::figure1_assignments();
    assert!(!verify(&annotated, &VerifierConfig::default()).verified());
    // …and the leak is real.
    let (prog, low, high, outs) = rejected::figure1_assignments_executable();
    let report = check_non_interference(
        &prog,
        &low,
        &high,
        &outs,
        &NiConfig {
            random_seeds: 4,
            fuel: 100_000,
        },
    );
    assert!(!report.holds(), "Fig. 1's timing channel must be observable");
}

#[test]
fn all_rejected_variants_fail_with_reasons() {
    for (name, program) in rejected::all_programs() {
        let report = verify(&program, &VerifierConfig::default());
        assert!(!report.verified(), "{name} must fail");
        assert!(
            report.failures().count() > 0 || !report.errors.is_empty(),
            "{name}: failure must carry a reason"
        );
    }
}

#[test]
fn parsed_programs_execute_deterministically_per_schedule() {
    let prog = parse_program(
        "x := 0;
         par { atomic { x := x + 3 } } { atomic { x := x + 4 } };
         output(x)",
    )
    .unwrap();
    for seed in 0..8 {
        let mut sched = RandomSched::new(seed);
        match run(&prog, State::new(), &mut sched, 10_000) {
            RunOutcome::Done(state) => assert_eq!(state.outputs, vec![Value::Int(7)]),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}

#[test]
fn exhaustive_interleavings_confirm_commutativity_claims() {
    use commcsl::lang::interp::enumerate_interleavings;
    // Commuting adds: exactly one final output.
    let commuting = parse_program(
        "par { atomic { x := x + 3 } } { atomic { x := x + 4 } }; output(x)",
    )
    .unwrap();
    let ex = enumerate_interleavings(&commuting, &State::new(), 200, 100_000);
    assert!(!ex.truncated);
    let outs: std::collections::BTreeSet<_> =
        ex.final_states.iter().map(|s| s.outputs.clone()).collect();
    assert_eq!(outs.len(), 1);

    // Non-commuting assignments: two distinct outputs.
    let racy =
        parse_program("par { atomic { x := 3 } } { atomic { x := 4 } }; output(x)").unwrap();
    let ex = enumerate_interleavings(&racy, &State::new(), 200, 100_000);
    let outs: std::collections::BTreeSet<_> =
        ex.final_states.iter().map(|s| s.outputs.clone()).collect();
    assert_eq!(outs.len(), 2);
}

#[test]
fn spec_library_round_trips_through_validity() {
    // Every spec used by a fixture is valid; the deliberately broken ones
    // are not.
    for spec in [
        ResourceSpec::counter_add(),
        ResourceSpec::keyset_map(),
        ResourceSpec::opaque_int(),
        ResourceSpec::list_multiset(),
        ResourceSpec::list_length(),
        ResourceSpec::list_sum(),
        ResourceSpec::list_mean(),
        ResourceSpec::set_insert(),
        ResourceSpec::histogram(),
        ResourceSpec::map_add_value(),
        ResourceSpec::map_max_value(),
        ResourceSpec::disjoint_put_map(2),
        ResourceSpec::producer_consumer(true),
        ResourceSpec::producer_consumer(false),
    ] {
        let report = check_validity(&spec, &ValidityConfig::default());
        assert!(report.is_valid(), "{} must be valid: {report:?}", spec.name);
    }
    let report = check_validity(
        &ResourceSpec::list_mean_literal(),
        &ValidityConfig::default(),
    );
    assert!(report.is_invalid(), "literal mean must be refuted");
}
