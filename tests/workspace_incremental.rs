//! Workspace incremental re-verification: **byte-identity** of every
//! incrementally served report against cold whole-program verification,
//! across every corpus the repo has, plus reuse accounting for
//! single-statement edits.
//!
//! Pinned corpora:
//!
//! * the 18 Table 1 fixtures and the 5 rejected variants (builder form,
//!   failing reports with counterexamples included),
//! * the committed `.csl` corpus (span-carrying programs compiled by
//!   `commcsl-front`),
//! * random proptest edit *sequences* over generated annotated programs
//!   (every revision checked against a cold run),
//!
//! each under a shared workspace, so obligations cached by one program
//! are candidates for every later one.

use std::path::Path;

use commcsl::front::compile;
use commcsl::prelude::*;
use commcsl::verifier::cache::CacheConfig;
use commcsl::verifier::workspace::{Workspace, WorkspaceConfig};
use commcsl::verifier::DiagnosticCode;
use proptest::prelude::*;

fn workspace() -> Workspace {
    Workspace::new(WorkspaceConfig::default())
}

/// The generic single-statement edit that applies to *any* program:
/// append a provable `assert low` at the end of the body.
fn append_assert(program: &AnnotatedProgram) -> AnnotatedProgram {
    let mut edited = program.clone();
    edited.body.push(VStmt::AssertLow(Term::int(7)));
    edited
}

/// Obligations discharged retroactively at program end: their context
/// includes every earlier check boundary, so an edit *anywhere before
/// the end* legitimately dirties them.
fn retro_count(report: &commcsl::verifier::VerifierReport) -> usize {
    report
        .obligations
        .iter()
        .filter(|o| o.code == DiagnosticCode::ActionPreRetro)
        .count()
}

/// Opens `program`, pins byte-identity, applies the append edit, and
/// pins that the edit re-checked only its own cone (the new obligation
/// plus any retroactive ones).
fn assert_incremental(ws: &mut Workspace, doc: &str, program: &AnnotatedProgram) {
    let config = ws.config().clone();
    let cold = ws.open_document(doc, program);
    assert_eq!(
        cold.report.to_json(),
        commcsl::verifier::verify(program, &config).to_json(),
        "cold workspace report diverges on `{}`",
        program.name
    );

    let edited = append_assert(program);
    let outcome = ws.update_document(doc, &edited).expect("document open");
    assert_eq!(
        outcome.report.to_json(),
        commcsl::verifier::verify(&edited, &config).to_json(),
        "incremental report diverges on `{}`",
        program.name
    );
    assert_eq!(outcome.obligations.total, cold.obligations.total + 1);
    // The appended assert's goal (`7 = 7`) is claimed by the static
    // pre-pass, so the edit's cone is settled by checks *plus* static
    // discharges; everything else must come from the cache.
    let budget = 1 + retro_count(&outcome.report);
    let settled = outcome.obligations.checked + outcome.obligations.statically_proven;
    assert!(
        settled <= budget,
        "`{}`: {settled} re-settled, budget {budget}",
        program.name,
    );
    assert_eq!(outcome.obligations.reused, outcome.obligations.total - settled);
}

#[test]
fn fixture_corpus_is_byte_identical_and_edit_rechecks_only_the_cone() {
    let mut ws = workspace();
    for fixture in commcsl::fixtures::all() {
        assert_incremental(&mut ws, fixture.name, &fixture.program);
    }
    for (name, program) in commcsl::fixtures::rejected::all_programs() {
        // Failing programs too: failed statuses (counterexamples and all)
        // must replay byte-identically.
        assert_incremental(&mut ws, name, &program);
    }
}

#[test]
fn csl_corpus_is_byte_identical_through_the_workspace() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/programs");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("examples/programs exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "csl"))
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 18, "the Table 1 corpus has 18 programs");

    let mut ws = workspace();
    for path in entries {
        let source = std::fs::read_to_string(&path).expect("readable fixture");
        let program = compile(&source).expect("corpus compiles");
        // Span-carrying programs: positions flow into obligation reports
        // and must survive the incremental route byte-identically.
        assert_incremental(&mut ws, &path.display().to_string(), &program);
    }
}

#[test]
fn single_statement_modification_reuses_the_untouched_prefix() {
    // Two revisions of one `.csl` document differing in one statement.
    let before = "program doc;\n\
                  resource ctr: Int named \"counter-add\" {\n\
                  alpha(v) = v;\n\
                  shared action Add(arg: Int) = v + arg requires arg1 == arg2;\n\
                  }\n\
                  input a: Int low;\n\
                  share ctr = 0;\n\
                  par { with ctr performing Add(a); } || { with ctr performing Add(2); }\n\
                  unshare ctr into total;\n\
                  output total;\n";
    let after = before.replace("Add(2)", "Add(3)");
    let (p0, p1) = (compile(before).unwrap(), compile(&after).unwrap());

    let mut ws = workspace();
    let cold = ws.open_document("doc.csl", &p0);
    let edited = ws.update_document("doc.csl", &p1).expect("open");
    assert_eq!(
        edited.report.to_json(),
        commcsl::verifier::verify(&p1, ws.config()).to_json()
    );
    assert_eq!(edited.obligations.total, cold.obligations.total);
    // Spec validity, the low-init check, and worker 1's precondition are
    // untouched by editing worker 2's argument.
    assert!(
        edited.obligations.reused >= 3,
        "{:?}",
        edited.obligations
    );
}

#[test]
fn workspace_survives_disk_cache_reuse_across_documents() {
    let dir = std::env::temp_dir().join(format!(
        "commcsl-ws-incr-test-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = WorkspaceConfig {
        cache: CacheConfig::persistent(&dir),
        ..Default::default()
    };
    {
        let mut ws = Workspace::new(config.clone());
        for fixture in commcsl::fixtures::all().iter().take(4) {
            let _ = ws.open_document(fixture.name, &fixture.program);
        }
    }
    // A fresh workspace over the same disk tier: renamed variants miss
    // the program tier but replay every obligation from disk.
    let mut ws = Workspace::new(config);
    for fixture in commcsl::fixtures::all().iter().take(4) {
        let mut renamed = fixture.program.clone();
        renamed.name = format!("{}-renamed", fixture.program.name);
        let outcome = ws.open_document(fixture.name, &renamed);
        assert!(!outcome.report_cached);
        assert_eq!(outcome.obligations.checked, 0, "{}", fixture.name);
        assert_eq!(
            outcome.report.to_json(),
            commcsl::verifier::verify(&renamed, ws.config()).to_json()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------- proptest

fn arg_expr(ix: u8) -> Term {
    match ix {
        0 => Term::var("a"),
        1 => Term::var("b"),
        2 => Term::int(1),
        3 => Term::add(Term::var("a"), Term::int(1)),
        4 => Term::add(Term::var("a"), Term::var("b")),
        _ => Term::mul(Term::var("b"), Term::int(2)),
    }
}

fn out_expr(ix: u8) -> Term {
    match ix {
        0 => Term::var("c"),
        1 => Term::var("a"),
        2 => Term::var("b"),
        3 => Term::int(0),
        4 => Term::add(Term::var("c"), Term::var("a")),
        _ => Term::sub(Term::var("c"), Term::var("b")),
    }
}

/// One revision of the generated document, parameterized so that small
/// parameter changes are realistic edits (toggle an input's level,
/// change an action argument, change the output).
fn revision(low_a: bool, low_b: bool, a1_ix: u8, a2_ix: u8, out_ix: u8) -> AnnotatedProgram {
    AnnotatedProgram::new("prop-doc")
        .with_resource(ResourceSpec::counter_add())
        .with_body([
            VStmt::input("a", Sort::Int, low_a),
            VStmt::input("b", Sort::Int, low_b),
            VStmt::Share {
                resource: 0,
                init: Term::int(0),
            },
            VStmt::Par {
                workers: vec![
                    vec![VStmt::atomic(0, "Add", arg_expr(a1_ix))],
                    vec![VStmt::atomic(0, "Add", arg_expr(a2_ix))],
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: "c".into(),
            },
            VStmt::Output(out_expr(out_ix)),
        ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random edit sequences: every revision pushed through one
    /// workspace document reports byte-identically to a cold run —
    /// verifying and failing revisions alike, with counterexample search
    /// enabled, whatever mix of program-tier hits, obligation-tier hits,
    /// and fresh checks serves it.
    #[test]
    fn random_edit_sequences_stay_byte_identical(
        edits in proptest::collection::vec(
            (0u8..2, 0u8..2, 0u8..6, 0u8..6, 0u8..6),
            1..6,
        )
    ) {
        let mut ws = workspace();
        let config = ws.config().clone();
        let mut first = true;
        for (low_a, low_b, a1, a2, out) in edits {
            let program = revision(low_a == 1, low_b == 1, a1, a2, out);
            let outcome = if first {
                first = false;
                ws.open_document("doc", &program)
            } else {
                ws.update_document("doc", &program).expect("document open")
            };
            let direct = commcsl::verifier::verify(&program, &config);
            prop_assert_eq!(outcome.report.to_json(), direct.to_json());
        }
    }
}
