//! Counterexample-minimization properties.
//!
//! Two guarantees hold the minimizer to its contract:
//!
//! 1. **Minimized counterexamples still falsify.** The environment the
//!    ddmin loop returns is a genuine countermodel of the *kept* fact
//!    cone: every kept fact evaluates `true` under it and the goal
//!    evaluates `false` (checked through the same
//!    [`refutes`](commcsl::smt::falsify::refutes) acceptance test the
//!    falsifier itself uses).
//! 2. **Minimization never flips a verdict.** Verifying with
//!    `minimize_counterexamples` on and off yields the same per-obligation
//!    proved/failed statuses and failure reasons on the whole `.csl`
//!    corpus — the knob only shrinks witnesses, it never changes what is
//!    a witness of.
//!
//! Both are exercised on randomized fact/goal instances (proptest) and on
//! the checked-in corpus (`tests/*.csl`, `examples/programs`,
//! `examples/rejected`).

use std::collections::BTreeMap;
use std::path::PathBuf;

use commcsl::front::compile;
use commcsl::pure::{Sort, Symbol, Term};
use commcsl::smt::falsify::{find_counterexample, refutes, FalsifyConfig};
use commcsl::smt::{BackendKind, SolverConfig};
use commcsl::verifier::{minimize_counterexample, verify, ObligationStatus, VerifierConfig};
use proptest::prelude::*;

/// Every `.csl` file of the repository corpus.
fn corpus() -> Vec<PathBuf> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for dir in ["tests", "examples/programs", "examples/rejected"] {
        for entry in std::fs::read_dir(root.join(dir)).expect("corpus dir") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_some_and(|e| e == "csl") {
                files.push(path);
            }
        }
    }
    files.sort();
    assert!(!files.is_empty(), "corpus is empty");
    files
}

/// Corpus half of the contract: same verdicts with the knob on and off,
/// witnesses only ever shrink, and at least one program shrinks strictly.
#[test]
fn minimization_never_flips_corpus_verdicts_and_shrinks_a_witness() {
    let base = VerifierConfig::default();
    let minimizing = VerifierConfig {
        minimize_counterexamples: true,
        ..VerifierConfig::default()
    };
    let mut strictly_smaller = 0usize;
    let mut failures_seen = 0usize;
    for file in corpus() {
        let source = std::fs::read_to_string(&file).expect("read corpus file");
        let Ok(program) = compile(&source) else {
            continue; // not every corpus file is a valid program
        };
        let plain = verify(&program, &base);
        let small = verify(&program, &minimizing);
        assert_eq!(
            plain.obligations.len(),
            small.obligations.len(),
            "{}: obligation count changed",
            file.display()
        );
        for (p, s) in plain.obligations.iter().zip(&small.obligations) {
            match (&p.status, &s.status) {
                (ObligationStatus::Proved, ObligationStatus::Proved) => {}
                (ObligationStatus::Failed(pf), ObligationStatus::Failed(sf)) => {
                    failures_seen += 1;
                    assert_eq!(
                        pf.reason,
                        sf.reason,
                        "{}: minimization changed a failure reason",
                        file.display()
                    );
                    if let (Some(full), Some(min)) = (&pf.counterexample, &sf.counterexample) {
                        assert!(
                            min.bindings.len() <= full.bindings.len(),
                            "{}: minimized witness grew ({} -> {} bindings)",
                            file.display(),
                            full.bindings.len(),
                            min.bindings.len()
                        );
                        if min.bindings.len() < full.bindings.len() {
                            strictly_smaller += 1;
                        }
                    }
                }
                (p, s) => panic!(
                    "{}: verdict flipped under minimization: {p:?} vs {s:?}",
                    file.display()
                ),
            }
        }
    }
    assert!(failures_seen > 0, "corpus has no failing obligations to minimize");
    assert!(
        strictly_smaller > 0,
        "no corpus counterexample shrank strictly ({failures_seen} failures checked)"
    );
}

const VARS: [&str; 4] = ["x", "y", "z", "w"];

fn int_sorts() -> BTreeMap<Symbol, Sort> {
    VARS.iter().map(|v| (Symbol::new(*v), Sort::Int)).collect()
}

fn var_term() -> impl Strategy<Value = Term> {
    (0usize..VARS.len()).prop_map(|i| Term::var(VARS[i]))
}

/// One random hypothesis: a small linear atom over the variable pool.
fn fact() -> impl Strategy<Value = Term> {
    (var_term(), var_term(), -3i64..=3, 0usize..3).prop_map(|(a, b, c, kind)| match kind {
        0 => Term::le(a, Term::int(c)),
        1 => Term::le(Term::int(c), a),
        _ => Term::le(a, Term::add(b, Term::int(c))),
    })
}

/// A falsifiable-looking goal: equality or a bound between variables.
fn goal() -> impl Strategy<Value = Term> {
    (var_term(), var_term(), -3i64..=3, 0usize..2).prop_map(|(a, b, c, kind)| match kind {
        0 => Term::eq(a, b),
        _ => Term::le(a, Term::add(b, Term::int(c))),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized half of the contract: whenever the full cone falsifies,
    /// the minimized cone (a) is a subset, (b) still concretely refutes
    /// via the kept facts — which also means the verdict cannot have
    /// flipped to proved — and (c) never binds more variables.
    #[test]
    fn minimized_witness_still_refutes(
        facts in proptest::collection::vec(fact(), 0..6),
        goal in goal(),
    ) {
        let sorts = int_sorts();
        let falsify = FalsifyConfig::default();
        let Some(full) = find_counterexample(&facts, &goal, &sorts, &falsify) else {
            return Ok(()); // goal holds under these facts: nothing to minimize
        };
        prop_assert!(refutes(&facts, &goal, &full));

        let min = minimize_counterexample(
            &facts,
            &goal,
            &sorts,
            &falsify,
            BackendKind::default(),
            &SolverConfig::default(),
            full.clone(),
        );
        // (a) kept is a strictly ordered subset of the original indices.
        prop_assert!(min.kept.windows(2).all(|w| w[0] < w[1]), "{:?}", min.kept);
        prop_assert!(min.kept.iter().all(|&i| i < facts.len()), "{:?}", min.kept);
        // (b) the minimal cone still refutes — soundness and no-flip.
        let subset: Vec<Term> = min.kept.iter().map(|&i| facts[i].clone()).collect();
        prop_assert!(refutes(&subset, &goal, &min.env));
        // (c) the witness only ever shrinks.
        prop_assert!(min.env.len() <= full.len(), "{} > {}", min.env.len(), full.len());
    }

    /// Determinism: minimizing twice from the same initial environment
    /// yields the identical kept set and environment (the ddmin scan and
    /// the falsifier are both deterministic).
    #[test]
    fn minimization_is_deterministic(
        facts in proptest::collection::vec(fact(), 0..5),
        goal in goal(),
    ) {
        let sorts = int_sorts();
        let falsify = FalsifyConfig::default();
        let Some(full) = find_counterexample(&facts, &goal, &sorts, &falsify) else {
            return Ok(());
        };
        let run = || minimize_counterexample(
            &facts,
            &goal,
            &sorts,
            &falsify,
            BackendKind::default(),
            &SolverConfig::default(),
            full.clone(),
        );
        let (a, b) = (run(), run());
        prop_assert_eq!(a.kept, b.kept);
        prop_assert_eq!(a.env, b.env);
    }
}
