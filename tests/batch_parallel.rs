//! The parallel batch-verification pipeline must be a pure speedup: for
//! every Table 1 fixture and every rejected variant, batch verdicts are
//! identical to sequential `verify` verdicts regardless of thread count.

use commcsl::fixtures::{self, rejected};
use commcsl::verifier::batch::{verify_batch_ref, BatchConfig};
use commcsl::verifier::{verify, AnnotatedProgram, VerifierConfig, VerifierReport};

fn sequential(programs: &[&AnnotatedProgram]) -> Vec<VerifierReport> {
    let config = VerifierConfig::default();
    programs.iter().map(|p| verify(p, &config)).collect()
}

fn assert_reports_identical(batch: &VerifierReport, seq: &VerifierReport, context: &str) {
    assert_eq!(batch.program, seq.program, "{context}");
    assert_eq!(batch.verified(), seq.verified(), "{context}: verdict");
    assert_eq!(batch.errors, seq.errors, "{context}: errors");
    assert_eq!(
        batch.obligations.len(),
        seq.obligations.len(),
        "{context}: obligation count"
    );
    for (b, s) in batch.obligations.iter().zip(&seq.obligations) {
        assert_eq!(b.description, s.description, "{context}");
        assert_eq!(b.status, s.status, "{context}: {}", b.description);
    }
}

#[test]
fn batch_matches_sequential_on_all_fixtures_for_any_thread_count() {
    let fixtures = fixtures::all();
    assert_eq!(fixtures.len(), 18, "the full Table 1 suite");
    let programs: Vec<&AnnotatedProgram> = fixtures.iter().map(|f| &f.program).collect();
    let expected = sequential(&programs);

    for threads in [1, 2, 3, 7, 32] {
        let results = verify_batch_ref(&programs, &BatchConfig::with_threads(threads));
        assert_eq!(results.len(), expected.len());
        for (result, seq) in results.iter().zip(&expected) {
            let context = format!("{} (threads={threads})", result.program);
            assert_reports_identical(&result.report, seq, &context);
            assert!(result.report.verified(), "{context} must verify");
        }
    }
}

#[test]
fn batch_matches_sequential_on_rejected_programs() {
    let rejected: Vec<(&str, AnnotatedProgram)> = rejected::all_programs();
    let programs: Vec<&AnnotatedProgram> = rejected.iter().map(|(_, p)| p).collect();
    let expected = sequential(&programs);

    for threads in [2, 5] {
        let results = verify_batch_ref(&programs, &BatchConfig::with_threads(threads));
        for ((result, seq), (name, _)) in results.iter().zip(&expected).zip(&rejected) {
            let context = format!("{name} (threads={threads})");
            assert_reports_identical(&result.report, seq, &context);
            assert!(
                !result.report.verified(),
                "{context} must be rejected in batch mode too"
            );
        }
    }
}

#[test]
fn batch_preserves_input_order_under_contention() {
    // Many copies of the suite at once: order must still be input order.
    let fixtures = fixtures::all();
    let programs: Vec<&AnnotatedProgram> = fixtures
        .iter()
        .chain(fixtures.iter())
        .map(|f| &f.program)
        .collect();
    let results = verify_batch_ref(&programs, &BatchConfig::default());
    assert_eq!(results.len(), 2 * fixtures.len());
    for (i, result) in results.iter().enumerate() {
        assert_eq!(result.index, i);
        assert_eq!(result.program, fixtures[i % fixtures.len()].program.name);
    }
}
