//! Backend equivalence: the incremental solver backend produces reports
//! **byte-identical** to the stateless (`fresh`) backend and to the
//! legacy free-function path, across every route that can serve a
//! verdict.
//!
//! Pinned corpora:
//!
//! * the 18 Table 1 fixtures and the 5 rejected variants (builder form),
//! * the committed `.csl` corpus (span-carrying programs, so source
//!   positions in diagnostics are covered too),
//! * 64 random annotated programs from a proptest generator,
//! * every fixture's recorded solver-event stream, replayed through both
//!   backends (verdict-stream equality at the session seam).

use commcsl::front::compile;
use commcsl::logic::spec::ResourceSpec;
use commcsl::prelude::*;
use commcsl::verifier::{solver_trace, SolverEvent, Verifier};
use commcsl::verifier::cache::CacheConfig;
use proptest::prelude::*;

fn config_for(backend: BackendKind) -> VerifierConfig {
    let mut config = VerifierConfig {
        backend,
        ..Default::default()
    };
    config.validity.backend = backend;
    config
}

/// Asserts byte-identical reports for one program across: the legacy
/// free function under both backends, the unified `Verifier` under both
/// backends, and a cold+warm cached route.
fn assert_equivalent(program: &AnnotatedProgram) -> String {
    let fresh = verify(program, &config_for(BackendKind::Fresh)).to_json();
    let incremental = verify(program, &config_for(BackendKind::Incremental)).to_json();
    assert_eq!(fresh, incremental, "backends diverge on `{}`", program.name);

    for backend in BackendKind::ALL {
        let api = Verifier::new().with_backend(backend).with_threads(1);
        assert_eq!(
            api.verify(program).report.to_json(),
            fresh,
            "Verifier({backend}) diverges from the legacy path on `{}`",
            program.name
        );
    }

    let cached = Verifier::new()
        .with_threads(1)
        .with_cache(CacheConfig::memory_only(8));
    let cold = cached.verify(program);
    let warm = cached.verify(program);
    assert_eq!(cold.cached, Some(false));
    assert_eq!(warm.cached, Some(true));
    assert_eq!(cold.report.to_json(), fresh, "cold cache route diverges");
    assert_eq!(warm.report.to_json(), fresh, "warm cache route diverges");
    fresh
}

#[test]
fn fixture_corpus_is_byte_identical_across_backends_and_routes() {
    for fixture in commcsl::fixtures::all() {
        let json = assert_equivalent(&fixture.program);
        assert!(
            json.contains("\"verified\":true"),
            "{} must verify",
            fixture.name
        );
    }
    for (name, program) in commcsl::fixtures::rejected::all_programs() {
        let json = assert_equivalent(&program);
        assert!(
            json.contains("\"verified\":false"),
            "{name} must stay rejected"
        );
    }
}

#[test]
fn compiled_csl_corpus_with_spans_is_byte_identical() {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for sub in ["examples/programs", "examples/rejected"] {
        let mut files: Vec<_> = std::fs::read_dir(root.join(sub))
            .expect("corpus dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "csl"))
            .collect();
        files.sort();
        assert!(!files.is_empty(), "empty corpus {sub}");
        for file in files {
            let src = std::fs::read_to_string(&file).expect("read corpus file");
            let program = compile(&src).unwrap_or_else(|e| panic!("{}: {e}", file.display()));
            assert!(
                !program.spans.is_empty(),
                "compiled programs carry statement spans"
            );
            assert_equivalent(&program);
        }
    }
}

#[test]
fn solver_event_streams_replay_identically() {
    let config = VerifierConfig::default();
    for fixture in commcsl::fixtures::all() {
        let trace = solver_trace(&fixture.program, &config);
        assert!(
            trace.iter().any(|e| matches!(e, SolverEvent::Check { .. })),
            "{} records obligations",
            fixture.name
        );
        let replay = |kind: BackendKind| -> Vec<Verdict> {
            let mut session = kind.open_session(config.solver.clone());
            let mut verdicts = Vec::new();
            for event in &trace {
                match event {
                    SolverEvent::Push => session.push(),
                    SolverEvent::Pop => session.pop(),
                    SolverEvent::Assert(fact) => session.assert(fact.clone()),
                    SolverEvent::Check { assumptions, goal } => {
                        verdicts.push(session.check_assuming(assumptions.clone(), goal));
                    }
                }
            }
            verdicts
        };
        assert_eq!(
            replay(BackendKind::Fresh),
            replay(BackendKind::Incremental),
            "verdict streams diverge on {}",
            fixture.name
        );
    }
}

// ------------------------------------------------------ random programs

/// A small pool of action-argument expressions over the program inputs.
fn arg_expr(ix: u8) -> Term {
    match ix % 6 {
        0 => Term::var("a"),
        1 => Term::var("b"),
        2 => Term::add(Term::var("a"), Term::var("b")),
        3 => Term::mul(Term::var("a"), Term::int(2)),
        4 => Term::sub(Term::var("b"), Term::int(1)),
        _ => Term::int(3),
    }
}

/// Output expressions, additionally over the unshared counter `c`.
fn out_expr(ix: u8) -> Term {
    match ix % 6 {
        0 => Term::var("c"),
        1 => Term::add(Term::var("c"), Term::var("a")),
        2 => Term::var("a"),
        3 => Term::sub(Term::var("c"), Term::var("b")),
        4 => Term::mul(Term::var("c"), Term::int(2)),
        _ => Term::var("b"),
    }
}

fn gen_program() -> impl Strategy<Value = AnnotatedProgram> {
    (
        (0u8..2, 0u8..2, 0u8..2, 0u8..2),
        (0u8..6, 0u8..6, 0u8..6, 1i64..4),
    )
        .prop_map(|((low_a, low_b, use_loop, split), (out_ix, a1_ix, a2_ix, bound))| {
            let worker = |arg: Term| {
                if use_loop == 1 {
                    vec![VStmt::for_range(
                        "i",
                        Term::int(0),
                        Term::int(bound),
                        [VStmt::atomic(0, "Add", arg)],
                    )]
                } else {
                    vec![VStmt::atomic(0, "Add", arg)]
                }
            };
            let mut body = vec![
                VStmt::input("a", Sort::Int, low_a == 1),
                VStmt::input("b", Sort::Int, low_b == 1),
                VStmt::Share { resource: 0, init: Term::int(0) },
                VStmt::Par {
                    workers: vec![worker(arg_expr(a1_ix)), worker(arg_expr(a2_ix))],
                },
                VStmt::Unshare { resource: 0, into: "c".into() },
            ];
            if split == 1 {
                body.push(VStmt::If {
                    cond: Term::eq(Term::var("a"), Term::int(0)),
                    then_b: vec![VStmt::assign("d", Term::int(1))],
                    else_b: vec![VStmt::assign("d", Term::int(2))],
                });
                body.push(VStmt::AssertLow(Term::var("d")));
            }
            body.push(VStmt::Output(out_expr(out_ix)));
            AnnotatedProgram::new("prop-program")
                .with_resource(ResourceSpec::counter_add())
                .with_body(body)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random annotated programs — verifying and failing alike, with
    /// counterexample search enabled — produce byte-identical reports
    /// under both backends and the legacy path.
    #[test]
    fn random_programs_are_byte_identical_across_backends(program in gen_program()) {
        let fresh = verify(&program, &config_for(BackendKind::Fresh)).to_json();
        let incremental =
            verify(&program, &config_for(BackendKind::Incremental)).to_json();
        prop_assert_eq!(&fresh, &incremental);
        let api = Verifier::new()
            .with_backend(BackendKind::Incremental)
            .with_threads(1);
        prop_assert_eq!(&api.verify(&program).report.to_json(), &fresh);
    }
}
