//! Producer-consumer queues (paper, Sec. 2.7, App. D, Fig. 12): the
//! partial produce/consume operations are totalized with the
//! negative-length ghost encoding, `Prod`/`Cons` commute modulo the
//! produced-items abstraction, and the pipeline's precondition is checked
//! retroactively.
//!
//! Run with `cargo run --example producer_consumer`.

use commcsl::fixtures;
use commcsl::logic::consistency::{lemma_4_2_holds, records_pre_related, Record};
use commcsl::prelude::*;

fn main() {
    // 1. Verify all three queue-based fixtures.
    for fixture in [
        fixtures::rows::producer_consumer_1x1(),
        fixtures::rows::pipeline(),
        fixtures::rows::producers_consumers_2x2(),
    ] {
        let report = verify(&fixture.program, &VerifierConfig::default());
        println!("{report}");
        assert!(report.verified(), "{} failed", fixture.name);
    }

    // 2. Demonstrate the totalized Fig. 12 semantics: consuming from an
    //    empty queue goes into "debt", producing pays it back.
    let spec = ResourceSpec::producer_consumer(true);
    let cons = spec.action("Cons").unwrap();
    let prod = spec.action("Prod").unwrap();
    let empty = Value::pair(Value::right(Value::seq_empty()), Value::seq_empty());
    let v = cons.apply(&empty, &Value::Unit).unwrap();
    println!("consume on empty queue: {v}");
    let v = prod.apply(&v, &Value::Int(7)).unwrap();
    println!("produce 7 afterwards:  {v}");

    // 3. Executable Lemma 4.2 on the queue: PRE-related records from equal
    //    abstractions end with equal abstractions on *every* interleaving.
    let r1 = Record::new()
        .with_shared("Prod", [Value::Int(1), Value::Int(3)])
        .with_shared("Cons", [Value::Unit, Value::Unit]);
    let r2 = Record::new()
        .with_shared("Prod", [Value::Int(3), Value::Int(1)])
        .with_shared("Cons", [Value::Unit, Value::Unit]);
    assert!(records_pre_related(&spec, &r1, &r2));
    let ok = lemma_4_2_holds(&spec, &empty, &r1, &empty, &r2).unwrap();
    println!("Lemma 4.2 instance on the queue: {ok}");
    assert!(ok);
}
