//! Quickstart: specify, validate, verify, and empirically test the
//! paper's Fig. 2-style shared counter.
//!
//! Run with `cargo run --example quickstart`.

use commcsl::prelude::*;

fn main() {
    // 1. Resource specification: a shared counter with an `Add` action
    //    (identity abstraction; added amounts must be low).
    let spec = ResourceSpec::counter_add();
    let validity = check_validity(&spec, &ValidityConfig::default());
    println!("spec `{}` valid: {}", spec.name, validity.is_valid());

    // 2. The annotated program: two workers add low values.
    let program = AnnotatedProgram::new("quickstart")
        .with_resource(spec)
        .with_body([
            VStmt::input("a", Sort::Int, true),
            VStmt::input("b", Sort::Int, true),
            VStmt::Share {
                resource: 0,
                init: Term::int(0),
            },
            VStmt::Par {
                workers: vec![
                    vec![VStmt::atomic(0, "Add", Term::var("a"))],
                    vec![VStmt::atomic(0, "Add", Term::var("b"))],
                ],
            },
            VStmt::Unshare {
                resource: 0,
                into: "total".into(),
            },
            VStmt::Output(Term::var("total")),
        ]);
    let report = verify(&program, &VerifierConfig::default());
    println!("{report}");
    assert!(report.verified());

    // 3. Empirical cross-check: the executable counterpart with a
    //    secret-dependent spin loop shows no leak across schedulers.
    let exec = parse_program(
        "par {
             t := 0; while (t < h) { t := t + 1 };
             atomic { c := c + 3 }
         } {
             atomic { c := c + 4 }
         };
         output(c)",
    )
    .expect("program parses");
    let ni = check_non_interference(
        &exec,
        &[],
        &[
            vec![("h".into(), Value::Int(0))],
            vec![("h".into(), Value::Int(50))],
        ],
        &[],
        &NiConfig::default(),
    );
    println!(
        "empirical non-interference over {} executions: {}",
        ni.executions,
        if ni.holds() { "holds" } else { "VIOLATED" }
    );
    assert!(ni.holds());
}
