//! The negative control: the paper's Fig. 1. Two threads assign different
//! constants to a shared variable; the secret only influences *timing* —
//! yet the printed value leaks whether `h` exceeds the other thread's
//! workload. The verifier rejects the program, and the interpreter
//! exhibits the leak.
//!
//! Run with `cargo run --example leak_demo`.

use commcsl::fixtures::rejected;
use commcsl::prelude::*;

fn main() {
    // 1. Verification rejects the identity-abstraction assignment spec:
    //    `Set` does not commute.
    let program = rejected::figure1_assignments();
    let report = verify(&program, &VerifierConfig::default());
    println!("{report}");
    assert!(!report.verified());

    // 2. The leak is real: run the program under schedulers with the two
    //    high inputs and watch the output differ.
    let (prog, low, high, outs) = rejected::figure1_assignments_executable();
    let ni = check_non_interference(
        &prog,
        &low,
        &high,
        &outs,
        &NiConfig {
            random_seeds: 4,
            fuel: 100_000,
        },
    );
    match &ni.violation {
        Some(v) => {
            println!(
                "leak observed: h-index {} under {} printed {:?}, but h-index {} under {} printed {:?}",
                v.first.high_index,
                v.first.scheduler,
                v.first_obs.outputs,
                v.second.high_index,
                v.second.scheduler,
                v.second_obs.outputs,
            );
        }
        None => unreachable!("the Fig. 1 timing channel must be observable"),
    }

    // 3. The commuting repair (s += 3 / s += 4) is accepted and leak-free.
    let fixed = parse_program(
        "par {
             t1 := 0; while (t1 < 20) { t1 := t1 + 1 };
             atomic { s := s + 3 }
         } {
             t2 := 0; while (t2 < h) { t2 := t2 + 1 };
             atomic { s := s + 4 }
         };
         output(s)",
    )
    .expect("fixed program parses");
    let ni = check_non_interference(
        &fixed,
        &[],
        &[
            vec![("h".into(), Value::Int(0))],
            vec![("h".into(), Value::Int(200))],
        ],
        &[],
        &NiConfig::default(),
    );
    println!(
        "commuting repair: non-interference {} over {} executions",
        if ni.holds() { "holds" } else { "VIOLATED" },
        ni.executions
    );
    assert!(ni.holds());
}
