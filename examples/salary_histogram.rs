//! The Salary-Histogram example: concurrent threads increment per-bucket
//! counters in a shared map. Plain `put` does not commute, but
//! *increment-at-key* does — a precise action definition instead of an
//! abstraction (paper, Sec. 5, "Precise action definitions").
//!
//! Run with `cargo run --example salary_histogram`.

use commcsl::fixtures;
use commcsl::logic::consistency::{interleaving_results, Record};
use commcsl::prelude::*;

fn main() {
    let fixture = fixtures::rows::salary_histogram();
    let report = verify(&fixture.program, &VerifierConfig::default());
    println!("{report}");
    assert!(report.verified());

    // All interleavings of increments agree on the final histogram.
    let spec = ResourceSpec::histogram();
    let record = Record::new().with_shared(
        "IncBucket",
        [Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(1)],
    );
    let finals = interleaving_results(&spec, &Value::map_empty(), &record)
        .expect("actions are total");
    println!(
        "distinct final histograms over all interleavings: {}",
        finals.len()
    );
    for m in &finals {
        println!("  {m}");
    }
    assert_eq!(finals.len(), 1);

    // Empirical cross-check with timing-skewed schedulers.
    let ni = fixture.ni.expect("fixture has an executable setup");
    let report = check_non_interference(
        &ni.program,
        &ni.low_inputs,
        &ni.high_inputs,
        &ni.low_outputs,
        &NiConfig::default(),
    );
    println!(
        "empirical non-interference over {} executions: {}",
        report.executions,
        if report.holds() { "holds" } else { "VIOLATED" }
    );
    assert!(report.holds());
}
