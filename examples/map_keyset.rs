//! The paper's running example (Figs. 3–5): concurrent `put`s into a
//! shared map where keys are low and values are high. The key-set
//! abstraction makes the puts commute, so the sorted key list may be
//! published.
//!
//! Run with `cargo run --example map_keyset`.

use commcsl::fixtures;
use commcsl::prelude::*;

fn main() {
    // The fixture bundles the annotated program and an executable variant.
    let fixture = fixtures::rows::figure3();
    println!(
        "{} — {} / {}",
        fixture.name, fixture.data_structure, fixture.abstraction
    );

    // Verify (validity of the Fig. 4 spec + all program obligations).
    let report = verify(&fixture.program, &VerifierConfig::default());
    println!("{report}");
    assert!(report.verified());

    // Show abstract commutativity concretely: puts with a clashing key do
    // not commute on the map, but do commute on its key set.
    let spec = ResourceSpec::keyset_map();
    let put = spec.action("Put").expect("spec declares Put");
    let m0 = Value::map_empty();
    let a = Value::pair(Value::Int(1), Value::Int(10));
    let b = Value::pair(Value::Int(1), Value::Int(20));
    let ab = put.apply(&put.apply(&m0, &a).unwrap(), &b).unwrap();
    let ba = put.apply(&put.apply(&m0, &b).unwrap(), &a).unwrap();
    println!("put-put order 1: {ab}");
    println!("put-put order 2: {ba}");
    println!(
        "concrete maps equal: {}; key sets equal: {}",
        ab == ba,
        spec.alpha_of(&ab).unwrap() == spec.alpha_of(&ba).unwrap()
    );
    assert_ne!(ab, ba);
    assert_eq!(spec.alpha_of(&ab).unwrap(), spec.alpha_of(&ba).unwrap());

    // Empirical check on the executable program.
    let ni = fixture.ni.expect("figure3 has an executable setup");
    let report = check_non_interference(
        &ni.program,
        &ni.low_inputs,
        &ni.high_inputs,
        &ni.low_outputs,
        &NiConfig::default(),
    );
    println!(
        "empirical non-interference over {} executions: {}",
        report.executions,
        if report.holds() { "holds" } else { "VIOLATED" }
    );
    assert!(report.holds());
}
