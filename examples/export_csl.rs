//! Regenerates the `.csl` fixture corpus under `examples/programs/` (the
//! 18 Table 1 rows) and `examples/rejected/` (the known-insecure
//! variants) from the builder-based fixtures, via the frontend's
//! pretty-printer.
//!
//! Run from the workspace root after changing the builders:
//!
//! ```sh
//! cargo run --example export_csl
//! ```
//!
//! The files are committed; `tests/frontend_fidelity.rs` pins that each
//! one still compiles to a program *structurally equal* to its builder
//! twin, so a stale corpus fails CI rather than drifting silently.

use std::fs;
use std::path::Path;

use commcsl::fixtures;
use commcsl::front::pretty::pretty;

fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect()
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));

    let programs = root.join("examples/programs");
    fs::create_dir_all(&programs).expect("create examples/programs");
    for (i, fixture) in fixtures::all().iter().enumerate() {
        let file = programs.join(format!(
            "{:02}_{}.csl",
            i + 1,
            slug(&fixture.program.name)
        ));
        let header = format!(
            "// Table 1, row {}: {} — data structure: {}; abstraction: {}.\n\
             // Generated from the builder fixture by `cargo run --example export_csl`.\n\n",
            i + 1,
            fixture.name,
            fixture.data_structure,
            fixture.abstraction,
        );
        fs::write(&file, header + &pretty(&fixture.program)).expect("write .csl");
        println!("wrote {}", file.display());
    }

    let rejected = root.join("examples/rejected");
    fs::create_dir_all(&rejected).expect("create examples/rejected");
    for (name, program) in fixtures::rejected::all_programs() {
        let file = rejected.join(format!("{}.csl", slug(name)));
        let header = format!(
            "// Known-insecure variant `{name}`: the verifier must reject this\n\
             // program with named failing obligations.\n\
             // Generated from the builder fixture by `cargo run --example export_csl`.\n\n",
        );
        fs::write(&file, header + &pretty(&program)).expect("write .csl");
        println!("wrote {}", file.display());
    }
}
