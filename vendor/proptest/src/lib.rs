//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal property-testing harness that is
//! API-compatible with the subset of `proptest` 1.x the test suites use:
//! the [`proptest!`] macro, `prop_assert*`/[`prop_assume!`]/[`prop_oneof!`],
//! range and tuple strategies, [`strategy::Just`], the `prop_map` /
//! `prop_filter` / `prop_filter_map` combinators, and
//! [`collection::vec`] / [`collection::btree_map`].
//!
//! Differences from real proptest: generation is purely random (no
//! shrinking of failing cases) and the RNG seed is fixed, so runs are
//! deterministic. Failures report the generated inputs via the panic
//! message of the failing `prop_assert*`.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! The case runner: RNG, configuration, and rejection bookkeeping.

    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange, SeedableRng, Standard};

    /// Marker returned by [`crate::prop_assume!`] when a case is rejected.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// Run configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The RNG strategies draw from.
    #[derive(Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A fixed-seed RNG: every `cargo test` run sees the same cases.
        pub fn deterministic() -> Self {
            TestRng(StdRng::seed_from_u64(0xC0CC_5E1D_2023_0601))
        }

        /// Samples uniformly from `range`.
        pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            self.0.gen_range(range)
        }

        /// Samples from the standard distribution.
        pub fn gen<T: Standard>(&mut self) -> T {
            self.0.gen()
        }
    }
}

pub mod strategy {
    //! Strategies: composable random generators.

    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    ///
    /// `gen_value` returns `None` when the sample was locally rejected
    /// (by a filter); the runner then retries the whole case.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value, or `None` on a filtered-out sample.
        fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only samples satisfying `pred` (`_reason` is for
        /// diagnostics in real proptest; ignored here).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, pred }
        }

        /// Maps through a partial function, rejecting `None` samples.
        fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
            self,
            _reason: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.gen_value(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.gen_value(rng).filter(|v| (self.pred)(v))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.gen_value(rng).and_then(&self.f)
        }
    }

    /// Object-safe strategy view backing [`BoxedStrategy`].
    pub trait DynStrategy<V> {
        /// Generates one value (see [`Strategy::gen_value`]).
        fn gen_dyn(&self, rng: &mut TestRng) -> Option<V>;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.gen_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> Option<V> {
            self.0.gen_dyn(rng)
        }
    }

    /// Uniform choice between alternative strategies of one value type.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over non-empty `options`.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> Option<V> {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($s,)+) = self;
                    $(let $v = $s.gen_value(rng)?;)+
                    Some(($($v,)+))
                }
            }
        };
    }

    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
}

pub mod collection {
    //! Collection strategies.

    use std::collections::BTreeMap;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec`s of `size.into()` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s with up to `size.into()` entries (fewer
    /// when generated keys collide, as in real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    /// See [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.key.gen_value(rng)?, self.value.gen_value(rng)?);
            }
            Some(out)
        }
    }
}

pub mod prelude {
    //! Everything a property-test module typically imports.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property-test functions whose arguments are drawn from
/// strategies. Supports the `#![proptest_config(...)]` header and
/// `name in strategy` argument bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs $config; $($rest)*);
    };
    (@funcs $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).saturating_add(1000);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many rejected samples ({} accepted of {} wanted)",
                    accepted,
                    config.cases,
                );
                $(
                    let $arg = match $crate::strategy::Strategy::gen_value(&($strat), &mut rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => continue,
                    };
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ::core::default::Default::default(); $($rest)*);
    };
}

/// `assert!` that also works inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::core::assert!($($tt)*) };
}

/// `assert_eq!` that also works inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::core::assert_eq!($($tt)*) };
}

/// `assert_ne!` that also works inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::core::assert_ne!($($tt)*) };
}

/// Rejects the current case (it is regenerated and does not count).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -5i64..=5, y in 0usize..3) {
            prop_assert!((-5..=5).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vec_sizes_respected(xs in crate::collection::vec(0i64..10, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
        }

        #[test]
        fn exact_vec_size(xs in crate::collection::vec(0i64..10, 4)) {
            prop_assert_eq!(xs.len(), 4);
        }

        #[test]
        fn assume_rejects(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1i64), 5i64..8]) {
            prop_assert!(v == 1 || (5..8).contains(&v));
        }

        #[test]
        fn filter_map_works(
            p in (1i64..=4, 1i64..=4).prop_filter_map("nonzero", |(n, d)| {
                if d >= n { Some((n, d)) } else { None }
            }),
        ) {
            prop_assert!(p.1 >= p.0);
        }
    }

    #[test]
    fn btree_map_strategy_generates() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic();
        let s = crate::collection::btree_map(1i64..=3, 0i64..5, 0..3);
        for _ in 0..50 {
            let m = s.gen_value(&mut rng).unwrap();
            assert!(m.len() <= 2);
        }
    }
}
