//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` stub defines [`Serialize`]/[`Deserialize`] as
//! marker traits; these derives emit the corresponding marker impl. The
//! type name is located with a hand-rolled token scan (no `syn`/`quote`
//! available offline); generic types get an empty expansion, which still
//! type-checks because the traits have no required items and no impl is
//! ever demanded by the stub's API.

use proc_macro::{TokenStream, TokenTree};

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let mut tokens = input.into_iter().peekable();
    // Scan for the `struct` / `enum` / `union` keyword, skipping
    // attributes, doc comments, and visibility qualifiers.
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    // Generic types would need the parameter list echoed
                    // into the impl header; skip them (marker traits are
                    // never required by the stub).
                    let generic = matches!(
                        tokens.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    if !generic {
                        return format!("impl ::serde::{trait_name} for {name} {{}}")
                            .parse()
                            .expect("generated impl parses");
                    }
                }
                break;
            }
        }
    }
    TokenStream::new()
}
