//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal benchmark harness that is API-compatible
//! with the subset of criterion the `commcsl-bench` targets use:
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Behaviour: under `cargo bench` each benchmark closure is timed over
//! `sample_size` iterations and the mean wall-clock time is printed.
//! Under `cargo test` (bench targets default to `test = true`) each
//! closure runs exactly once, acting as a smoke test — mirroring real
//! criterion's `--test` mode.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// True when invoked by `cargo bench` (cargo passes `--bench`).
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{}/{}", name.into(), parameter) }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` for the configured number of iterations, timing
    /// the total.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count per benchmark (default 50).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Benchmarks `f` under `id` (any `Display`, e.g. a `&str` or a
    /// [`BenchmarkId`]).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(label, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with an explicit input (criterion's way of keeping
    /// setup out of the measurement).
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.full);
        run_one(label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: String, sample_size: u64, mut f: F) {
    let iterations = if bench_mode() { sample_size.max(1) } else { 1 };
    let mut b = Bencher { iterations, elapsed: Duration::ZERO };
    f(&mut b);
    if bench_mode() {
        let mean = b.elapsed.as_secs_f64() / iterations as f64;
        println!("{label:<60} {:>12.3} µs/iter ({iterations} iters)", mean * 1e6);
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 50 }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(id.to_string(), 50, f);
        self
    }
}

/// Bundles benchmark functions into a callable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut hits = 0u32;
        group.bench_function("f", |b| b.iter(|| hits += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        // Test mode: exactly one iteration per bench_function call.
        assert_eq!(hits, 1);
    }
}
