//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `rand` 0.8: the
//! [`Rng`]/[`SeedableRng`] traits, [`rngs::StdRng`], uniform range
//! sampling, and Bernoulli sampling. The generator is SplitMix64 — not
//! cryptographic, but deterministic per seed, which is all the schedulers
//! and value generators require (every observed behaviour must be
//! replayable from its seed).

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable "from the standard distribution" via [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// User-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of its type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            let y: usize = r.gen_range(0..3usize);
            assert!(y < 3);
            let z: u8 = r.gen_range(0..4u8);
            assert!(z < 4);
        }
    }

    #[test]
    fn gen_bool_respects_bias() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.9)).count();
        assert!(hits > 8500 && hits < 9500, "got {hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
