//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors marker versions of [`Serialize`] and
//! [`Deserialize`] together with their derive macros. This keeps
//! `#[derive(Serialize)]` annotations (and `T: Serialize` bounds)
//! compiling; actual serialization is provided by hand-written renderers
//! (e.g. `commcsl-bench::render_table`) until a real serde is available.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize {}

// The derive macros expand to `impl ::serde::Serialize for ...`, which
// only resolves from *dependent* crates; the Serialize derive is pinned
// by `serialize_derive_emits_marker_impl` in `commcsl-bench`. The
// Deserialize derive is currently unused and untested.
